//! Host-interface taxonomy (Table 1, after Steenkiste's IEEE Computer '94
//! taxonomy the paper summarizes in §6).
//!
//! Three parameters determine the minimum set of data-touching operations an
//! IO takes:
//!
//! * the **API semantics** — copy (sockets) or share (fbufs/iWarp),
//! * where the transport **checksum** lives — in the *header* (TCP/UDP) or a
//!   *trailer*,
//! * the **adaptor architecture** — data movement (PIO / DMA / DMA with a
//!   checksum engine) crossed with buffering (none / single-packet /
//!   outboard).
//!
//! [`transmit_ops`] derives the operation sequence for each of the 36 cells
//! from four first-principles rules, and [`classify`] reproduces the paper's
//! three efficiency classes: *single copy*, *copy + read* (the dotted box),
//! and the *extra memory-memory copy* class (the dashed box). The paper's
//! headline cell — copy-semantics API, header checksum, outboard buffering
//! with a checksumming DMA engine, i.e. sockets over the CAB — classifies as
//! **single copy**, which is the whole point of the system.

#![warn(missing_docs)]

use std::fmt;

/// API semantics offered to the application.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Api {
    /// The application keeps ownership of its buffer; the system must have
    /// logically copied the data before `write` returns (sockets).
    Copy,
    /// Buffers are shared between application and system (fbufs, iWarp).
    Shared,
}

/// Where the transport checksum is placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CsumLoc {
    /// In the packet header (TCP/UDP): it must be known before the header
    /// crosses the last buffering point toward the wire.
    Header,
    /// In a trailer: it can be appended after the data has streamed past.
    Trailer,
}

/// Adaptor buffering capability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Buffering {
    /// No adaptor buffering: the header hits the wire before the data.
    None,
    /// Single-packet buffering: the adaptor can patch the buffered header
    /// after the data has been transferred (checksum insertion).
    Packet,
    /// Full outboard buffering: packets are retained on the adaptor, which
    /// also satisfies copy-semantics retransmission without a host copy.
    Outboard,
}

/// Adaptor data-movement capability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mover {
    /// Programmed IO — the CPU touches every word, so it can checksum for
    /// free during the transfer.
    Pio,
    /// DMA without checksum support.
    Dma,
    /// DMA with a checksum engine in the transfer path (the CAB).
    DmaCsum,
}

/// One adaptor class (a column of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Adaptor {
    /// Buffering capability.
    pub buffering: Buffering,
    /// Data-movement capability.
    pub mover: Mover,
}

/// Data-touching operations (the table's cell entries).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Memory-memory copy.
    Copy,
    /// Memory-memory copy with checksum folded in.
    CopyC,
    /// Programmed IO transfer to the device.
    Pio,
    /// Programmed IO with checksum folded in.
    PioC,
    /// DMA transfer.
    Dma,
    /// DMA with the adaptor checksumming in the transfer path.
    DmaC,
    /// A separate CPU read pass purely to compute the checksum.
    ReadC,
}

impl Op {
    /// CPU memory accesses per data byte (reads + writes).
    pub fn cpu_accesses(self) -> u32 {
        match self {
            Op::Copy | Op::CopyC => 2,
            Op::Pio | Op::PioC | Op::ReadC => 1,
            Op::Dma | Op::DmaC => 0,
        }
    }

    /// IO-bus transfers per data byte.
    pub fn bus_transfers(self) -> u32 {
        match self {
            Op::Pio | Op::PioC | Op::Dma | Op::DmaC => 1,
            Op::Copy | Op::CopyC | Op::ReadC => 0,
        }
    }

    /// Memory-system touches per data byte (every op that streams the data
    /// through the memory system at least once).
    pub fn memory_touches(self) -> u32 {
        match self {
            Op::Copy | Op::CopyC => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Copy => "Copy",
            Op::CopyC => "Copy_C",
            Op::Pio => "PIO",
            Op::PioC => "PIO_C",
            Op::Dma => "DMA",
            Op::DmaC => "DMA_C",
            Op::ReadC => "Read_C",
        };
        f.write_str(s)
    }
}

/// Efficiency classes from the paper's discussion of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Class {
    /// One transfer, checksum merged: the ideal (solid box in the paper).
    SingleCopy,
    /// One transfer plus a separate checksum read (dotted box).
    CopyPlusRead,
    /// An extra memory-memory copy to implement copy semantics without
    /// outboard buffering (dashed box); checksum merged somewhere.
    TwoCopy,
    /// Both penalties: extra copy and a separate checksum read.
    TwoCopyPlusRead,
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Class::SingleCopy => "single-copy",
            Class::CopyPlusRead => "copy+read",
            Class::TwoCopy => "two-copy",
            Class::TwoCopyPlusRead => "two-copy+read",
        };
        f.write_str(s)
    }
}

/// Derive the minimum transmit operation sequence for one table cell.
///
/// The four rules:
/// 1. **Copy semantics without outboard buffering** force a memory-memory
///    copy (the system must retain the data for retransmission).
/// 2. **A header checksum must be known before the header passes the last
///    buffering point**: with no adaptor buffering it must be computed
///    before the device transfer; packet/outboard buffering lets the
///    adaptor insert it afterwards.
/// 3. **PIO can always fold the checksum into its transfer** (the CPU sees
///    every word); plain DMA never can; a DMA checksum engine can, but for
///    header checksums only when rule 2 is satisfied by buffering.
/// 4. Whatever checksum work cannot be merged into a copy or transfer
///    becomes a separate `Read_C` pass.
pub fn transmit_ops(api: Api, csum: CsumLoc, adaptor: Adaptor) -> Vec<Op> {
    let needs_host_copy = api == Api::Copy && adaptor.buffering != Buffering::Outboard;
    // Can the checksum be merged into the device transfer?
    let adaptor_insertable = csum == CsumLoc::Trailer || adaptor.buffering != Buffering::None;
    // PIO computes during the transfer; for a header checksum it (like the
    // DMA checksum engine) still needs somewhere to patch the header
    // afterwards, hence the `adaptor_insertable` condition on both.
    let merged_in_transfer = match adaptor.mover {
        Mover::Pio | Mover::DmaCsum => adaptor_insertable,
        Mover::Dma => false,
    };

    let mut ops = Vec::new();
    if needs_host_copy {
        // Merge the checksum into the copy when the transfer can't take it
        // (cheaper than a separate read pass).
        if !merged_in_transfer {
            ops.push(Op::CopyC);
        } else {
            ops.push(Op::Copy);
        }
    } else if !merged_in_transfer {
        // No host copy to fold the checksum into: separate read pass.
        ops.push(Op::ReadC);
    }
    ops.push(match (adaptor.mover, merged_in_transfer) {
        (Mover::Pio, true) => Op::PioC,
        (Mover::Pio, false) => Op::Pio,
        (Mover::Dma, _) => Op::Dma,
        (Mover::DmaCsum, true) => Op::DmaC,
        (Mover::DmaCsum, false) => Op::Dma,
    });
    ops
}

/// Classify an operation sequence into the paper's efficiency classes.
pub fn classify(ops: &[Op]) -> Class {
    let copies = ops
        .iter()
        .filter(|o| matches!(o, Op::Copy | Op::CopyC))
        .count();
    let reads = ops.iter().filter(|o| matches!(o, Op::ReadC)).count();
    match (copies, reads) {
        (0, 0) => Class::SingleCopy,
        (0, _) => Class::CopyPlusRead,
        (_, 0) => Class::TwoCopy,
        _ => Class::TwoCopyPlusRead,
    }
}

/// All adaptor classes in the table's column order.
pub fn adaptor_columns() -> Vec<Adaptor> {
    let mut v = Vec::new();
    for buffering in [Buffering::None, Buffering::Packet, Buffering::Outboard] {
        for mover in [Mover::Pio, Mover::Dma, Mover::DmaCsum] {
            v.push(Adaptor { buffering, mover });
        }
    }
    v
}

/// All API × checksum-location rows in the table's row order.
pub fn table_rows() -> Vec<(Api, CsumLoc)> {
    vec![
        (Api::Copy, CsumLoc::Header),
        (Api::Copy, CsumLoc::Trailer),
        (Api::Shared, CsumLoc::Header),
        (Api::Shared, CsumLoc::Trailer),
    ]
}

/// Render the full Table 1 as markdown.
pub fn render_table() -> String {
    let cols = adaptor_columns();
    let mut out = String::new();
    out.push_str("| API / checksum |");
    for a in &cols {
        let b = match a.buffering {
            Buffering::None => "NoBuf",
            Buffering::Packet => "PktBuf",
            Buffering::Outboard => "Outboard",
        };
        let m = match a.mover {
            Mover::Pio => "PIO",
            Mover::Dma => "DMA",
            Mover::DmaCsum => "DMA+C",
        };
        out.push_str(&format!(" {b}/{m} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &cols {
        out.push_str("---|");
    }
    out.push('\n');
    for (api, csum) in table_rows() {
        out.push_str(&format!("| {api:?}/{csum:?} |"));
        for a in &cols {
            let ops = transmit_ops(api, csum, *a);
            let cell: Vec<String> = ops.iter().map(|o| o.to_string()).collect();
            out.push_str(&format!(" {} |", cell.join(" ")));
        }
        out.push('\n');
    }
    out
}

/// Total CPU memory accesses per byte for a cell (the per-byte cost driver).
pub fn cell_cpu_accesses(api: Api, csum: CsumLoc, adaptor: Adaptor) -> u32 {
    transmit_ops(api, csum, adaptor)
        .iter()
        .map(|o| o.cpu_accesses())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAB: Adaptor = Adaptor {
        buffering: Buffering::Outboard,
        mover: Mover::DmaCsum,
    };

    #[test]
    fn the_papers_cell_is_single_copy() {
        // "The top entry in the last column has been the focus of this
        // paper": sockets (copy semantics), TCP/UDP (header checksum),
        // outboard buffering + checksumming DMA.
        let ops = transmit_ops(Api::Copy, CsumLoc::Header, CAB);
        assert_eq!(ops, vec![Op::DmaC]);
        assert_eq!(classify(&ops), Class::SingleCopy);
        assert_eq!(cell_cpu_accesses(Api::Copy, CsumLoc::Header, CAB), 0);
    }

    #[test]
    fn traditional_stack_is_two_copy() {
        // A conventional adaptor (no buffering, plain DMA) with sockets:
        // the unmodified-OSF/1 situation — copy with checksum, then DMA.
        let a = Adaptor {
            buffering: Buffering::None,
            mover: Mover::Dma,
        };
        let ops = transmit_ops(Api::Copy, CsumLoc::Header, a);
        assert_eq!(ops, vec![Op::CopyC, Op::Dma]);
        assert_eq!(classify(&ops), Class::TwoCopy);
        assert_eq!(cell_cpu_accesses(Api::Copy, CsumLoc::Header, a), 2);
    }

    #[test]
    fn dma_without_checksum_needs_a_read_pass() {
        // Outboard buffering but no checksum engine: the dotted-box class.
        let a = Adaptor {
            buffering: Buffering::Outboard,
            mover: Mover::Dma,
        };
        let ops = transmit_ops(Api::Copy, CsumLoc::Header, a);
        assert_eq!(ops, vec![Op::ReadC, Op::Dma]);
        assert_eq!(classify(&ops), Class::CopyPlusRead);
    }

    #[test]
    fn header_checksum_blocks_unbuffered_insertion() {
        // Shared API, header checksum, no buffering: even a checksumming
        // DMA engine cannot help because the header is already gone.
        for mover in [Mover::Dma, Mover::DmaCsum] {
            let a = Adaptor {
                buffering: Buffering::None,
                mover,
            };
            let ops = transmit_ops(Api::Shared, CsumLoc::Header, a);
            assert_eq!(ops, vec![Op::ReadC, Op::Dma], "{mover:?}");
        }
        // ... but a trailer checksum unblocks the checksum engine.
        let a = Adaptor {
            buffering: Buffering::None,
            mover: Mover::DmaCsum,
        };
        assert_eq!(
            transmit_ops(Api::Shared, CsumLoc::Trailer, a),
            vec![Op::DmaC]
        );
    }

    #[test]
    fn pio_folds_checksum_when_insertable() {
        // PIO with packet buffering: single copy even with a header csum.
        let a = Adaptor {
            buffering: Buffering::Packet,
            mover: Mover::Pio,
        };
        assert_eq!(
            transmit_ops(Api::Shared, CsumLoc::Header, a),
            vec![Op::PioC]
        );
        // With copy semantics the copy is still forced (no outboard).
        assert_eq!(
            transmit_ops(Api::Copy, CsumLoc::Header, a),
            vec![Op::Copy, Op::PioC]
        );
    }

    #[test]
    fn shared_api_over_outboard_is_always_single_copy_with_csum_engine() {
        for csum in [CsumLoc::Header, CsumLoc::Trailer] {
            let ops = transmit_ops(Api::Shared, csum, CAB);
            assert_eq!(classify(&ops), Class::SingleCopy);
        }
    }

    #[test]
    fn single_copy_cells_are_exactly_the_mergeable_ones() {
        // Exhaustive: a cell is single-copy iff no host copy is forced AND
        // the checksum merges into the transfer.
        for (api, csum) in table_rows() {
            for a in adaptor_columns() {
                let ops = transmit_ops(api, csum, a);
                let class = classify(&ops);
                let copy_forced = api == Api::Copy && a.buffering != Buffering::Outboard;
                let insertable = csum == CsumLoc::Trailer || a.buffering != Buffering::None;
                let mergeable = match a.mover {
                    Mover::Pio | Mover::DmaCsum => insertable,
                    Mover::Dma => false,
                };
                let expect_single = !copy_forced && mergeable;
                assert_eq!(
                    class == Class::SingleCopy,
                    expect_single,
                    "{api:?}/{csum:?}/{a:?}: {ops:?}"
                );
            }
        }
    }

    #[test]
    fn every_cell_moves_the_data_exactly_once_to_the_device() {
        for (api, csum) in table_rows() {
            for a in adaptor_columns() {
                let ops = transmit_ops(api, csum, a);
                let device_moves = ops.iter().filter(|o| o.bus_transfers() > 0).count();
                assert_eq!(device_moves, 1, "{api:?}/{csum:?}/{a:?}");
                // And the sequence never has more than 3 ops.
                assert!(ops.len() <= 3);
            }
        }
    }

    #[test]
    fn render_contains_all_rows_and_the_cab_cell() {
        let t = render_table();
        assert!(t.contains("Copy/Header"));
        assert!(t.contains("Shared/Trailer"));
        assert!(t.contains("DMA_C"));
        assert!(t.contains("Read_C"));
        assert_eq!(t.lines().count(), 2 + 4, "header + separator + 4 rows");
    }

    #[test]
    fn access_counts_order_the_classes() {
        // single-copy <= copy+read <= two-copy in CPU accesses.
        let single = cell_cpu_accesses(Api::Copy, CsumLoc::Header, CAB);
        let copy_read = cell_cpu_accesses(
            Api::Copy,
            CsumLoc::Header,
            Adaptor {
                buffering: Buffering::Outboard,
                mover: Mover::Dma,
            },
        );
        let two_copy = cell_cpu_accesses(
            Api::Copy,
            CsumLoc::Header,
            Adaptor {
                buffering: Buffering::None,
                mover: Mover::Dma,
            },
        );
        assert!(single < copy_read);
        assert!(copy_read < two_copy + 1);
    }
}
