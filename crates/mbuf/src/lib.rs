//! BSD mbuf framework with the paper's two new external mbuf types.
//!
//! §4.2 of the paper: with a single-stack implementation, data flows through
//! the stack in three formats, all represented as mbufs —
//!
//! 1. **kernel buffers** — traditional mbufs (small or cluster storage; we
//!    model both with cheap reference-counted [`bytes::Bytes`]),
//! 2. **data in user space** — `M_UIO` mbufs, descriptors pointing at a
//!    region of a (simulated) user address space; used on transmit before
//!    the data moves outboard, and on receive to describe a `read()` target,
//! 3. **data in outboard buffers** — `M_WCAB` mbufs, descriptors pointing at
//!    a packet in CAB network memory; these appear in the transmit stack as
//!    retransmittable sent data and in the receive stack for large packets.
//!
//! Packetization is performed *symbolically* on these descriptors — chains
//! are split, cloned and trimmed without touching payload bytes — which is
//! what collapses all data-touching work into the driver (§3).
//!
//! The crate is deliberately independent of the CAB and host models: `M_UIO`
//! and `M_WCAB` carry opaque ids (task ids, packet ids) that the stack crate
//! resolves. This mirrors the original design where mbufs carry pointers the
//! driver interprets.

#![warn(missing_docs)]

pub mod chain;
pub mod mbuf;

pub use chain::{Chain, PktHdr};
pub use mbuf::{CsumPlan, Mbuf, MbufData, Segment, UioDesc, UioRegion, WcabDesc};

/// Identifies a simulated task/process (owner of a user address space).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// Identifies an outstanding-DMA counter in the socket layer (§4.4.2: the
/// "UIO counter" that tracks how many per-packet DMAs are still in flight
/// before the process may be woken).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UioCounterId(pub u64);

/// Size of a small mbuf's internal data area, bytes (BSD `MLEN`-ish). The
/// socket layer copies writes smaller than a threshold into regular mbufs
/// instead of building `M_UIO` descriptors (§4.4.3).
pub const MLEN: usize = 128;

/// Cluster size, bytes (BSD `MCLBYTES`). Used by the traditional path and by
/// in-kernel applications with share semantics.
pub const MCLBYTES: usize = 2048;

/// Allocation statistics, kept by each kernel to expose mbuf-pool behaviour
/// in tests and experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MbufStats {
    /// Mbufs small enough for internal storage.
    pub small_allocs: u64,
    /// Cluster-backed mbufs (payload larger than `MLEN`).
    pub cluster_allocs: u64,
    /// `M_UIO` descriptor mbufs created.
    pub uio_allocs: u64,
    /// `M_WCAB` descriptor mbufs created.
    pub wcab_allocs: u64,
}

impl MbufStats {
    /// Attribute one allocation to the right bucket.
    pub fn count(&mut self, m: &Mbuf) {
        match m.data() {
            MbufData::Kernel(b) => {
                if b.len() > MLEN {
                    self.cluster_allocs += 1;
                } else {
                    self.small_allocs += 1;
                }
            }
            MbufData::Uio(_) => self.uio_allocs += 1,
            MbufData::Wcab(_) => self.wcab_allocs += 1,
        }
    }

    /// All allocations counted so far.
    pub fn total(&self) -> u64 {
        self.small_allocs + self.cluster_allocs + self.uio_allocs + self.wcab_allocs
    }
}
