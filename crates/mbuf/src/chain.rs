//! Mbuf chains and the packet header.
//!
//! A [`Chain`] is the unit that moves through the protocol stack: a sequence
//! of mbufs (possibly of mixed storage formats) plus an optional packet
//! header. The operations here are the BSD chain primitives the paper's
//! modified stack leans on — in particular [`Chain::copy_range`], the
//! "search the transmit queue for a block of data at a specific offset"
//! routine that replaced TCP's copy-into-fresh-mbufs logic (§4.2), which
//! must work across regular, `M_UIO`, and `M_WCAB` mbufs alike.

use crate::mbuf::{CsumPlan, Mbuf, MbufData};
use crate::{TaskId, UioCounterId};
use bytes::Bytes;
use std::collections::VecDeque;

/// Per-packet metadata (BSD `M_PKTHDR` plus the paper's `uiowCABhdr`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PktHdr {
    /// Outboard-checksum plan for the CAB driver, set by TCP/UDP output in
    /// place of a software checksum (§4.3).
    pub csum_plan: Option<CsumPlan>,
    /// Task to notify when the data-touching operation for this packet
    /// completes (§4.4.2).
    pub notify_task: Option<TaskId>,
    /// Socket-layer counter tracking this packet's outstanding DMA.
    pub uio_counter: Option<UioCounterId>,
    /// Receive path: interface index the packet arrived on.
    pub rcv_iface: Option<u32>,
    /// Receive path: hardware-computed body checksum delivered by the CAB
    /// with the auto-DMA header (§2.2), consumed by TCP/UDP input.
    pub rx_hw_csum: Option<u16>,
}

/// A chain of mbufs with a total length and optional packet header.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Chain {
    mbufs: VecDeque<Mbuf>,
    len: usize,
    /// Packet-level metadata (checksum plan, notification, receive info).
    pub hdr: PktHdr,
}

impl Chain {
    /// An empty chain.
    pub fn new() -> Chain {
        Chain::default()
    }

    /// A chain holding one kernel mbuf copied from `bytes`.
    pub fn from_slice(bytes: &[u8]) -> Chain {
        let mut c = Chain::new();
        c.append(Mbuf::kernel_copy(bytes));
        c
    }

    /// A chain holding one kernel mbuf over `bytes` (no copy).
    pub fn from_bytes(bytes: Bytes) -> Chain {
        let mut c = Chain::new();
        c.append(Mbuf::kernel(bytes));
        c
    }

    /// Total payload bytes across all mbufs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chain holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of mbufs in the chain.
    pub fn mbuf_count(&self) -> usize {
        self.mbufs.len()
    }

    /// Iterate the mbufs front to back.
    pub fn iter(&self) -> impl Iterator<Item = &Mbuf> {
        self.mbufs.iter()
    }

    /// True if every mbuf is a traditional kernel mbuf (safe to hand to a
    /// legacy driver or in-kernel application without conversion, §5).
    pub fn all_kernel(&self) -> bool {
        self.mbufs.iter().all(|m| m.is_kernel())
    }

    /// True if any mbuf is an `M_UIO` descriptor.
    pub fn has_uio(&self) -> bool {
        self.mbufs.iter().any(|m| m.is_uio())
    }

    /// True if any mbuf is an `M_WCAB` descriptor.
    pub fn has_wcab(&self) -> bool {
        self.mbufs.iter().any(|m| m.is_wcab())
    }

    /// Append one mbuf (empty mbufs are dropped, as BSD frees zero-length
    /// mbufs during compaction).
    pub fn append(&mut self, m: Mbuf) {
        if m.is_empty() {
            return;
        }
        self.len += m.len();
        self.mbufs.push_back(m);
    }

    /// Append all of `other`'s mbufs (BSD `m_cat`). `other`'s packet header
    /// is discarded; the receiver keeps its own.
    pub fn concat(&mut self, other: Chain) {
        for m in other.mbufs {
            self.append(m);
        }
    }

    /// Prepend kernel bytes (header prepend, BSD `M_PREPEND`).
    pub fn prepend(&mut self, bytes: Bytes) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        self.mbufs.push_front(Mbuf::kernel(bytes));
    }

    /// Remove and return the first `n` bytes as a new chain (keeps `self`'s
    /// packet header on the *returned* front — BSD `m_split` semantics for
    /// packetization). The remainder keeps a cleared header.
    pub fn split_front(&mut self, n: usize) -> Chain {
        assert!(
            n <= self.len,
            "split_front({n}) beyond chain len {}",
            self.len
        );
        let mut front = Chain {
            hdr: std::mem::take(&mut self.hdr),
            ..Chain::new()
        };
        let mut remaining = n;
        while remaining > 0 {
            // `len` counts exactly the bytes in `mbufs`, so the assert above
            // guarantees a front mbuf exists while `remaining > 0`.
            let Some(mut m) = self.mbufs.pop_front() else {
                break;
            };
            if m.len() <= remaining {
                self.len -= m.len();
                remaining -= m.len();
                front.append(m);
            } else {
                let part = m.split_front(remaining);
                self.len -= part.len();
                remaining = 0;
                front.append(part);
                self.mbufs.push_front(m);
            }
        }
        front
    }

    /// Drop the first `n` bytes (socket-buffer `sbdrop`, used when TCP ACKs
    /// data or the socket layer consumes a read).
    pub fn drop_front(&mut self, n: usize) {
        // split_front moves the packet header to the (discarded) front
        // chain; dropping data must not lose the header, so take it back.
        let front = self.split_front(n);
        self.hdr = front.hdr;
    }

    /// Keep only the first `n` bytes (BSD `m_adj(-x)`).
    pub fn truncate(&mut self, n: usize) {
        assert!(n <= self.len);
        let mut to_cut = self.len - n;
        while to_cut > 0 {
            // `len` counts exactly the bytes in `mbufs`, so the assert above
            // guarantees a back mbuf exists while `to_cut > 0`.
            let Some(mut last) = self.mbufs.pop_back() else {
                break;
            };
            if last.len() <= to_cut {
                to_cut -= last.len();
                self.len -= last.len();
            } else {
                let keep = last.len() - to_cut;
                last.truncate(keep);
                self.len -= to_cut;
                to_cut = 0;
                self.mbufs.push_back(last);
            }
        }
    }

    /// Descriptor-level copy of `[off, off+len)` (BSD `m_copym`).
    ///
    /// This is the transmit-queue *search routine* from §4.2: TCP calls it
    /// with the retransmit offset to assemble a packet's worth of data from
    /// a queue that may contain regular, `M_UIO`, and `M_WCAB` mbufs.
    pub fn copy_range(&self, off: usize, len: usize) -> Chain {
        assert!(
            off + len <= self.len,
            "copy_range({off},{len}) beyond chain len {}",
            self.len
        );
        let mut out = Chain::new();
        let mut skip = off;
        let mut want = len;
        for m in &self.mbufs {
            if want == 0 {
                break;
            }
            let mlen = m.len();
            if skip >= mlen {
                skip -= mlen;
                continue;
            }
            let take = (mlen - skip).min(want);
            out.append(m.copy_range(skip, take));
            skip = 0;
            want -= take;
        }
        debug_assert_eq!(out.len(), len);
        out
    }

    /// Gather kernel-resident payload into one flat buffer. Returns `None`
    /// if the chain contains any external descriptor (whose bytes live
    /// elsewhere) — callers needing those must go through the driver.
    pub fn flatten_kernel(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(self.len);
        for m in &self.mbufs {
            match m.data() {
                MbufData::Kernel(b) => out.extend_from_slice(b),
                _ => return None,
            }
        }
        Some(out)
    }

    /// Read `len` kernel-resident bytes at `off` into `dst`. Panics if the
    /// range touches a non-kernel mbuf (protocol headers are always kernel
    /// resident, which is what input paths rely on).
    pub fn copy_kernel_out(&self, off: usize, dst: &mut [u8]) {
        assert!(
            off + dst.len() <= self.len,
            "copy_kernel_out({off},{}) beyond chain len {}",
            dst.len(),
            self.len
        );
        // Walk segments directly: no intermediate descriptor chain, no
        // flattened Vec — one copy straight into the caller's buffer.
        let mut skip = off;
        let mut filled = 0usize;
        for m in &self.mbufs {
            if filled == dst.len() {
                break;
            }
            let mlen = m.len();
            if skip >= mlen {
                skip -= mlen;
                continue;
            }
            let take = (mlen - skip).min(dst.len() - filled);
            match m.data() {
                MbufData::Kernel(b) => {
                    dst[filled..filled + take].copy_from_slice(&b[skip..skip + take])
                }
                // lint: allow(panic-hot-path, caller contract - input paths only call this over header bytes, which are always kernel resident)
                _ => panic!("copy_kernel_out over non-kernel data"),
            }
            filled += take;
            skip = 0;
        }
    }

    /// Take all mbufs out of the chain (driver hand-off).
    pub fn into_mbufs(self) -> VecDeque<Mbuf> {
        self.mbufs
    }
}

impl FromIterator<Mbuf> for Chain {
    fn from_iter<T: IntoIterator<Item = Mbuf>>(iter: T) -> Chain {
        let mut c = Chain::new();
        for m in iter {
            c.append(m);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbuf::{UioDesc, UioRegion, WcabDesc};

    fn mixed_chain() -> Chain {
        // 10 bytes kernel header + 100 bytes UIO + 50 bytes WCAB.
        let mut c = Chain::new();
        c.append(Mbuf::kernel_copy(&[0xAA; 10]));
        c.append(Mbuf::uio(UioDesc {
            region: UioRegion {
                task: TaskId(3),
                base: 0x4000,
            },
            off: 0,
            len: 100,
            counter: None,
        }));
        c.append(Mbuf::wcab(WcabDesc {
            cab: 0,
            packet: 7,
            off: 0,
            len: 50,
            hw_csum: 0,
            valid_len: 50,
        }));
        c
    }

    #[test]
    fn length_tracks_appends() {
        let c = mixed_chain();
        assert_eq!(c.len(), 160);
        assert_eq!(c.mbuf_count(), 3);
        assert!(c.has_uio() && c.has_wcab() && !c.all_kernel());
    }

    #[test]
    fn split_front_across_boundaries() {
        let mut c = mixed_chain();
        let front = c.split_front(60);
        assert_eq!(front.len(), 60);
        assert_eq!(c.len(), 100);
        // front = 10 kernel + 50 of the UIO desc
        assert_eq!(front.mbuf_count(), 2);
        let descs: Vec<_> = front.iter().collect();
        assert!(descs[0].is_kernel());
        match descs[1].data() {
            MbufData::Uio(d) => {
                assert_eq!(d.off, 0);
                assert_eq!(d.len, 50);
            }
            _ => panic!(),
        }
        // remainder starts 50 bytes into the UIO region
        let first = c.iter().next().unwrap().clone();
        match first.data() {
            MbufData::Uio(d) => {
                assert_eq!(d.off, 50);
                assert_eq!(d.len, 50);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn copy_range_mixed_types() {
        let c = mixed_chain();
        // Range spanning the UIO/WCAB boundary.
        let r = c.copy_range(100, 30);
        assert_eq!(r.len(), 30);
        let parts: Vec<_> = r.iter().collect();
        assert_eq!(parts.len(), 2);
        match parts[0].data() {
            MbufData::Uio(d) => {
                assert_eq!(d.off, 90);
                assert_eq!(d.len, 10);
            }
            _ => panic!(),
        }
        match parts[1].data() {
            MbufData::Wcab(d) => {
                assert_eq!(d.off, 0);
                assert_eq!(d.len, 20);
            }
            _ => panic!(),
        }
        // Source untouched.
        assert_eq!(c.len(), 160);
    }

    #[test]
    fn truncate_from_back() {
        let mut c = mixed_chain();
        c.truncate(105);
        assert_eq!(c.len(), 105);
        assert_eq!(c.mbuf_count(), 2, "WCAB mbuf cut entirely");
        c.truncate(5);
        assert_eq!(c.mbuf_count(), 1);
        assert!(c.iter().next().unwrap().is_kernel());
    }

    #[test]
    fn drop_front_models_ack() {
        let mut c = mixed_chain();
        c.drop_front(110);
        assert_eq!(c.len(), 50);
        assert!(c.iter().next().unwrap().is_wcab());
    }

    #[test]
    fn prepend_header() {
        let mut c = mixed_chain();
        c.prepend(Bytes::copy_from_slice(&[1, 2, 3, 4]));
        assert_eq!(c.len(), 164);
        assert_eq!(
            c.iter().next().unwrap().kernel_bytes().unwrap().as_ref(),
            &[1, 2, 3, 4]
        );
    }

    #[test]
    fn flatten_kernel_only_for_kernel_chains() {
        let mut c = Chain::from_slice(&[1, 2, 3]);
        c.append(Mbuf::kernel_copy(&[4, 5]));
        assert_eq!(c.flatten_kernel().unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(mixed_chain().flatten_kernel(), None);
    }

    #[test]
    fn copy_kernel_out_reads_headers() {
        let mut c = Chain::from_slice(&[1, 2, 3, 4, 5, 6]);
        c.append(Mbuf::kernel_copy(&[7, 8]));
        let mut buf = [0u8; 4];
        c.copy_kernel_out(3, &mut buf);
        assert_eq!(buf, [4, 5, 6, 7]);
    }

    #[test]
    fn concat_preserves_own_header() {
        let mut a = Chain::from_slice(&[1]);
        a.hdr.rx_hw_csum = Some(0xBEEF);
        let mut b = Chain::from_slice(&[2]);
        b.hdr.rx_hw_csum = Some(0xDEAD);
        a.concat(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.hdr.rx_hw_csum, Some(0xBEEF));
    }

    #[test]
    fn split_front_moves_pkthdr_to_front() {
        let mut c = mixed_chain();
        c.hdr.rx_hw_csum = Some(0x1111);
        let front = c.split_front(10);
        assert_eq!(front.hdr.rx_hw_csum, Some(0x1111));
        assert_eq!(c.hdr.rx_hw_csum, None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::mbuf::{UioDesc, UioRegion};
    use proptest::prelude::*;

    /// Build a random mixed chain; return it with a reference model: a vec
    /// tagging each byte with (format, identity) so descriptor arithmetic
    /// can be checked byte-for-byte.
    fn arb_chain() -> impl Strategy<Value = (Chain, Vec<(u8, u64)>)> {
        proptest::collection::vec((0u8..3, 1usize..64), 1..12).prop_map(|specs| {
            let mut chain = Chain::new();
            let mut model = Vec::new();
            let mut uio_cursor = 0u64;
            let mut kern_tag = 0u64;
            for (kind, len) in specs {
                match kind {
                    0 => {
                        let data: Vec<u8> = (0..len).map(|i| (kern_tag + i as u64) as u8).collect();
                        for (i, _) in data.iter().enumerate() {
                            model.push((0, kern_tag + i as u64));
                        }
                        kern_tag += len as u64;
                        chain.append(Mbuf::kernel_copy(&data));
                    }
                    1 => {
                        chain.append(Mbuf::uio(UioDesc {
                            region: UioRegion {
                                task: TaskId(1),
                                base: 0,
                            },
                            off: uio_cursor,
                            len,
                            counter: None,
                        }));
                        for i in 0..len {
                            model.push((1, uio_cursor + i as u64));
                        }
                        uio_cursor += len as u64;
                    }
                    _ => {
                        chain.append(Mbuf::wcab(crate::mbuf::WcabDesc {
                            cab: 0,
                            packet: 9,
                            off: uio_cursor as usize,
                            len,
                            hw_csum: 0,
                            valid_len: usize::MAX,
                        }));
                        for i in 0..len {
                            model.push((2, uio_cursor + i as u64));
                        }
                        uio_cursor += len as u64;
                    }
                }
            }
            (chain, model)
        })
    }

    /// Flatten a chain into the same (format, identity) tagging as the model.
    fn tags(chain: &Chain) -> Vec<(u8, u64)> {
        let mut out = Vec::new();
        for m in chain.iter() {
            match m.data() {
                MbufData::Kernel(b) => {
                    for &byte in b.iter() {
                        // kernel identity = the byte value we wrote (mod 256
                        // collisions are fine: positions align by order)
                        out.push((0, byte as u64));
                    }
                }
                MbufData::Uio(d) => {
                    for i in 0..d.len {
                        out.push((1, d.off + i as u64));
                    }
                }
                MbufData::Wcab(d) => {
                    for i in 0..d.len {
                        out.push((2, (d.off + i) as u64));
                    }
                }
            }
        }
        out
    }

    proptest! {
        /// split_front partitions the chain without altering the byte map.
        #[test]
        fn split_partitions((chain, model) in arb_chain(), at_frac in 0.0f64..=1.0) {
            let at = (chain.len() as f64 * at_frac) as usize;
            let mut rest = chain;
            let front = rest.split_front(at);
            prop_assert_eq!(front.len(), at);
            prop_assert_eq!(front.len() + rest.len(), model.len());
            let mut combined = tags(&front);
            combined.extend(tags(&rest));
            // Kernel identities wrap at 256; compare format + low byte.
            let model_cmp: Vec<(u8,u64)> = model.iter()
                .map(|&(f, id)| if f == 0 { (f, id & 0xFF) } else { (f, id) }).collect();
            prop_assert_eq!(combined, model_cmp);
        }

        /// copy_range extracts exactly the modeled byte range.
        #[test]
        fn copy_range_matches_model((chain, model) in arb_chain(),
                                    a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let (lo, hi) = {
                let x = (chain.len() as f64 * a) as usize;
                let y = (chain.len() as f64 * b) as usize;
                (x.min(y), x.max(y))
            };
            let copied = chain.copy_range(lo, hi - lo);
            prop_assert_eq!(copied.len(), hi - lo);
            let model_cmp: Vec<(u8,u64)> = model[lo..hi].iter()
                .map(|&(f, id)| if f == 0 { (f, id & 0xFF) } else { (f, id) }).collect();
            prop_assert_eq!(tags(&copied), model_cmp);
            // Source unchanged.
            prop_assert_eq!(chain.len(), model.len());
        }

        /// drop_front then truncate leaves the modeled middle window.
        #[test]
        fn window_operations((chain, model) in arb_chain(),
                             a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let (lo, hi) = {
                let x = (chain.len() as f64 * a) as usize;
                let y = (chain.len() as f64 * b) as usize;
                (x.min(y), x.max(y))
            };
            let mut c = chain;
            c.drop_front(lo);
            c.truncate(hi - lo);
            let model_cmp: Vec<(u8,u64)> = model[lo..hi].iter()
                .map(|&(f, id)| if f == 0 { (f, id & 0xFF) } else { (f, id) }).collect();
            prop_assert_eq!(tags(&c), model_cmp);
        }
    }
}
