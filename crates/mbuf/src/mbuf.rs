//! Individual mbufs and their three storage formats.

use crate::TaskId;
use bytes::Bytes;

/// A region of a simulated user address space: the buffer named by a
/// `read(2)`/`write(2)` call. `base` is the virtual address of the start of
/// the user buffer; descriptors reference offsets within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UioRegion {
    /// The task whose address space holds the buffer.
    pub task: TaskId,
    /// User virtual address of the buffer start.
    pub base: u64,
}

/// An `M_UIO` descriptor: `len` bytes of user data starting `off` bytes into
/// `region`. This is the paper's UIO mbuf — it carries a `uio` structure
/// describing the read/write memory area in the user's address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UioDesc {
    /// The user buffer this descriptor points into.
    pub region: UioRegion,
    /// Byte offset of this descriptor's data within the region.
    pub off: u64,
    /// Length of this descriptor's data in bytes.
    pub len: usize,
    /// The socket-layer UIO counter of the `write` this data belongs to
    /// (§4.4.2); decremented as the bytes move outboard so the blocked
    /// writer can be woken at the right moment.
    pub counter: Option<crate::UioCounterId>,
}

impl UioDesc {
    /// Absolute user virtual address of the first byte.
    pub fn vaddr(&self) -> u64 {
        self.region.base + self.off
    }
}

/// An `M_WCAB` descriptor: `len` bytes starting at `off` within packet
/// `packet` in the network memory of CAB `cab`. Mirrors the paper's `wCAB`
/// structure: packet identifier, packet checksum, and how much of the
/// outboard data is valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WcabDesc {
    /// Which CAB's network memory holds the packet (interface index).
    pub cab: u32,
    /// Opaque packet id assigned by that CAB (see `outboard_cab::PacketId`).
    pub packet: u64,
    /// Offset of this descriptor's data within the packet.
    pub off: usize,
    /// Length of this descriptor's data in bytes.
    pub len: usize,
    /// Hardware-computed checksum of the packet body (receive side).
    pub hw_csum: u16,
    /// Bytes of the packet that have arrived in network memory so far.
    pub valid_len: usize,
}

/// Checksum plan carried from the transport layer to the CAB driver
/// (paper §4.3): instead of computing the Internet checksum in software, the
/// checksum routine records *where* the checksum goes, *how many* leading
/// words the hardware must skip, and the *seed* covering the host-owned
/// header fields. The driver copies this into the SDMA request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsumPlan {
    /// Byte offset of the 16-bit checksum field from the start of the packet
    /// (the full framed packet as it sits in network memory).
    pub csum_offset: usize,
    /// Leading 32-bit words the hardware checksum engine skips.
    pub skip_words: usize,
    /// Partial ones-complement sum over the skipped words the host is
    /// responsible for (transport header + pseudo-header).
    pub seed: u16,
}

/// The three storage formats (§4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MbufData {
    /// Traditional mbuf: data in kernel memory (small or cluster storage).
    Kernel(Bytes),
    /// `M_UIO`: data still in (or destined for) a user address space.
    Uio(UioDesc),
    /// `M_WCAB`: data in CAB network memory.
    Wcab(WcabDesc),
}

/// A borrowed view of an mbuf's payload, for data-touching consumers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment<'a> {
    /// Kernel-resident payload bytes.
    Kernel(&'a [u8]),
    /// Data in a user address space (`M_UIO`).
    Uio(&'a UioDesc),
    /// Data in CAB network memory (`M_WCAB`).
    Wcab(&'a WcabDesc),
}

/// One mbuf.
///
/// BSD mbufs carry `(m_data, m_len)` into shared storage; here `Kernel`
/// storage is a `Bytes` slice (already offset+length), and the external
/// types carry explicit offsets. All the symbolic-packetization operations
/// (`split_at`, `advance`, `truncate`) work uniformly across the formats.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mbuf {
    data: MbufData,
}

impl Mbuf {
    /// A traditional mbuf over kernel bytes.
    pub fn kernel(bytes: Bytes) -> Mbuf {
        Mbuf {
            data: MbufData::Kernel(bytes),
        }
    }

    /// A traditional mbuf copied from a slice.
    pub fn kernel_copy(bytes: &[u8]) -> Mbuf {
        Mbuf::kernel(Bytes::copy_from_slice(bytes))
    }

    /// An `M_UIO` mbuf describing user data.
    pub fn uio(desc: UioDesc) -> Mbuf {
        Mbuf {
            data: MbufData::Uio(desc),
        }
    }

    /// An `M_WCAB` mbuf describing outboard data.
    pub fn wcab(desc: WcabDesc) -> Mbuf {
        Mbuf {
            data: MbufData::Wcab(desc),
        }
    }

    /// The storage variant.
    pub fn data(&self) -> &MbufData {
        &self.data
    }

    /// A borrowed view suitable for data-touching consumers.
    pub fn segment(&self) -> Segment<'_> {
        match &self.data {
            MbufData::Kernel(b) => Segment::Kernel(b),
            MbufData::Uio(d) => Segment::Uio(d),
            MbufData::Wcab(d) => Segment::Wcab(d),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match &self.data {
            MbufData::Kernel(b) => b.len(),
            MbufData::Uio(d) => d.len,
            MbufData::Wcab(d) => d.len,
        }
    }

    /// True for a zero-length mbuf.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for traditional kernel-resident storage.
    pub fn is_kernel(&self) -> bool {
        matches!(self.data, MbufData::Kernel(_))
    }

    /// True for an `M_UIO` descriptor.
    pub fn is_uio(&self) -> bool {
        matches!(self.data, MbufData::Uio(_))
    }

    /// True for an `M_WCAB` descriptor.
    pub fn is_wcab(&self) -> bool {
        matches!(self.data, MbufData::Wcab(_))
    }

    /// Kernel payload bytes, if this is a traditional mbuf.
    pub fn kernel_bytes(&self) -> Option<&Bytes> {
        match &self.data {
            MbufData::Kernel(b) => Some(b),
            _ => None,
        }
    }

    /// Split into `[0, at)` (returned) and `[at, len)` (self). Purely
    /// symbolic: no payload bytes move for any storage format.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_front(&mut self, at: usize) -> Mbuf {
        assert!(
            at <= self.len(),
            "split_front({at}) beyond len {}",
            self.len()
        );
        match &mut self.data {
            MbufData::Kernel(b) => Mbuf::kernel(b.split_to(at)),
            MbufData::Uio(d) => {
                let front = UioDesc {
                    region: d.region,
                    off: d.off,
                    len: at,
                    counter: d.counter,
                };
                d.off += at as u64;
                d.len -= at;
                Mbuf::uio(front)
            }
            MbufData::Wcab(d) => {
                let front = WcabDesc {
                    off: d.off,
                    len: at,
                    ..*d
                };
                d.off += at;
                d.len -= at;
                Mbuf::wcab(front)
            }
        }
    }

    /// Drop the first `n` bytes (BSD `m_adj` with a positive count).
    pub fn advance(&mut self, n: usize) {
        let _ = self.split_front(n);
    }

    /// Keep only the first `n` bytes (BSD `m_adj` with a negative count).
    pub fn truncate(&mut self, n: usize) {
        assert!(n <= self.len(), "truncate({n}) beyond len {}", self.len());
        match &mut self.data {
            MbufData::Kernel(b) => b.truncate(n),
            MbufData::Uio(d) => d.len = n,
            MbufData::Wcab(d) => d.len = n,
        }
    }

    /// A descriptor-level clone of byte range `[off, off+len)` (BSD
    /// `m_copym`: reference-counted for kernel data, plain descriptor
    /// arithmetic for the external types).
    pub fn copy_range(&self, off: usize, len: usize) -> Mbuf {
        assert!(off + len <= self.len());
        match &self.data {
            MbufData::Kernel(b) => Mbuf::kernel(b.slice(off..off + len)),
            MbufData::Uio(d) => Mbuf::uio(UioDesc {
                region: d.region,
                off: d.off + off as u64,
                len,
                counter: d.counter,
            }),
            MbufData::Wcab(d) => Mbuf::wcab(WcabDesc {
                off: d.off + off,
                len,
                ..*d
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uio_mbuf() -> Mbuf {
        Mbuf::uio(UioDesc {
            region: UioRegion {
                task: TaskId(1),
                base: 0x10000,
            },
            off: 100,
            len: 1000,
            counter: None,
        })
    }

    fn wcab_mbuf() -> Mbuf {
        Mbuf::wcab(WcabDesc {
            cab: 0,
            packet: 42,
            off: 40,
            len: 2000,
            hw_csum: 0x1234,
            valid_len: 2040,
        })
    }

    #[test]
    fn kernel_split_front() {
        let mut m = Mbuf::kernel_copy(&[1, 2, 3, 4, 5]);
        let front = m.split_front(2);
        assert_eq!(front.kernel_bytes().unwrap().as_ref(), &[1, 2]);
        assert_eq!(m.kernel_bytes().unwrap().as_ref(), &[3, 4, 5]);
    }

    #[test]
    fn uio_split_is_descriptor_arithmetic() {
        let mut m = uio_mbuf();
        let front = m.split_front(300);
        match (front.data(), m.data()) {
            (MbufData::Uio(f), MbufData::Uio(rest)) => {
                assert_eq!(f.off, 100);
                assert_eq!(f.len, 300);
                assert_eq!(rest.off, 400);
                assert_eq!(rest.len, 700);
                assert_eq!(f.vaddr(), 0x10000 + 100);
            }
            _ => panic!("wrong formats"),
        }
    }

    #[test]
    fn wcab_split_and_truncate() {
        let mut m = wcab_mbuf();
        m.advance(100);
        m.truncate(500);
        match m.data() {
            MbufData::Wcab(d) => {
                assert_eq!(d.off, 140);
                assert_eq!(d.len, 500);
                assert_eq!(d.packet, 42, "packet identity preserved");
                assert_eq!(d.hw_csum, 0x1234, "checksum info preserved");
            }
            _ => panic!("wrong format"),
        }
    }

    #[test]
    fn copy_range_does_not_mutate_source() {
        let m = uio_mbuf();
        let c = m.copy_range(10, 20);
        assert_eq!(m.len(), 1000);
        match c.data() {
            MbufData::Uio(d) => {
                assert_eq!(d.off, 110);
                assert_eq!(d.len, 20);
            }
            _ => panic!(),
        }
        let k = Mbuf::kernel_copy(&[9, 8, 7, 6]);
        let kc = k.copy_range(1, 2);
        assert_eq!(kc.kernel_bytes().unwrap().as_ref(), &[8, 7]);
        assert_eq!(k.len(), 4);
    }

    #[test]
    fn predicates() {
        assert!(Mbuf::kernel_copy(&[0]).is_kernel());
        assert!(uio_mbuf().is_uio());
        assert!(wcab_mbuf().is_wcab());
        assert!(Mbuf::kernel(Bytes::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "split_front")]
    fn split_beyond_len_panics() {
        uio_mbuf().split_front(1001);
    }
}
