//! Network model: links with serialization/latency and fault injection.
//!
//! The testbed connects two hosts back-to-back through a HIPPI fabric (the
//! CAB's MDMA engines pace the media, so the HIPPI link is modelled as pure
//! propagation latency) and optionally through a conventional 10 Mbit/s
//! Ethernet (whose link does its own serialization). The [`FaultInjector`]
//! lets tests and examples exercise loss, corruption, reordering and
//! duplication — corrupting a frame is how we prove the outboard receive
//! checksum actually rejects bad data end to end.

#![warn(missing_docs)]

pub mod capture;
pub mod fault;
pub mod link;

pub use capture::{Capture, CapturedFrame, Framing};
pub use fault::{Fate, FaultConfigError, FaultInjector, FaultStats};
pub use link::{Deliveries, Delivery, Link};

use bytes::Bytes;

/// A frame in flight between two adaptors.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Fabric address of the sender.
    pub src: u32,
    /// Fabric address of the destination.
    pub dst: u32,
    /// Logical channel tag (HIPPI MAC, §2.1); 0 for Ethernet.
    pub channel: u16,
    /// Frame contents (framing header + IP datagram).
    pub payload: Bytes,
}

impl Frame {
    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True for a zero-length frame.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}
