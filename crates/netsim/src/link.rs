//! Point-to-point links.
//!
//! A [`Link`] optionally serializes frames at a configured bandwidth (the
//! Ethernet case — the device driver dumps a frame and the wire paces it)
//! or passes them through with latency only (the HIPPI case — the CAB's
//! MDMA engine is the pacer, so re-serializing here would double-count).

use crate::fault::{Fate, FaultInjector};
use bytes::Bytes;
use outboard_sim::obs::Scope;
use outboard_sim::{BufPool, Dur, Time};
use std::sync::Arc;

/// A scheduled arrival at the far end of a link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Arrival time at the far end.
    pub at: Time,
    /// The delivered frame.
    pub payload: Bytes,
}

/// The outcome of offering one frame to a link: zero, one, or (duplication)
/// two deliveries — a fixed-size enum instead of a per-frame `Vec`, so the
/// fabric hot path never allocates just to say "delivered once".
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Deliveries {
    /// Dropped (down link or fault).
    #[default]
    None,
    /// Delivered once.
    One(Delivery),
    /// Delivered twice (duplication fault); the second arrives later.
    Two(Delivery, Delivery),
}

impl Deliveries {
    /// True when the frame was not delivered at all.
    pub fn is_empty(&self) -> bool {
        matches!(self, Deliveries::None)
    }

    /// Number of deliveries (0, 1, or 2).
    pub fn len(&self) -> usize {
        match self {
            Deliveries::None => 0,
            Deliveries::One(_) => 1,
            Deliveries::Two(..) => 2,
        }
    }

    /// Iterate over the deliveries without consuming them.
    pub fn iter(
        &self,
    ) -> std::iter::Chain<std::option::IntoIter<&Delivery>, std::option::IntoIter<&Delivery>> {
        let (a, b) = match self {
            Deliveries::None => (None, None),
            Deliveries::One(d) => (Some(d), None),
            Deliveries::Two(d, e) => (Some(d), Some(e)),
        };
        a.into_iter().chain(b)
    }
}

impl std::ops::Index<usize> for Deliveries {
    type Output = Delivery;
    fn index(&self, i: usize) -> &Delivery {
        match (self, i) {
            (Deliveries::One(d), 0) | (Deliveries::Two(d, _), 0) | (Deliveries::Two(_, d), 1) => d,
            // lint: allow(panic-hot-path, std::ops::Index contract - out-of-bounds must panic, mirroring slice indexing)
            _ => panic!("delivery index {i} out of bounds (len {})", self.len()),
        }
    }
}

impl IntoIterator for Deliveries {
    type Item = Delivery;
    type IntoIter =
        std::iter::Chain<std::option::IntoIter<Delivery>, std::option::IntoIter<Delivery>>;
    fn into_iter(self) -> Self::IntoIter {
        let (a, b) = match self {
            Deliveries::None => (None, None),
            Deliveries::One(d) => (Some(d), None),
            Deliveries::Two(d, e) => (Some(d), Some(e)),
        };
        a.into_iter().chain(b)
    }
}

impl<'a> IntoIterator for &'a Deliveries {
    type Item = &'a Delivery;
    type IntoIter =
        std::iter::Chain<std::option::IntoIter<&'a Delivery>, std::option::IntoIter<&'a Delivery>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// One direction of a point-to-point link.
#[derive(Debug)]
pub struct Link {
    /// Serialization bandwidth in bit/s; `None` for pre-paced media.
    pub bandwidth_bps: Option<f64>,
    /// Propagation latency.
    pub latency: Dur,
    busy_until: Time,
    /// Administrative state: a down link drops every frame on the floor
    /// (chaos outage windows and full partitions).
    pub up: bool,
    /// Additional propagation latency while a chaos delay spike is active.
    pub extra_latency: Dur,
    /// Frames offered while the link was down.
    pub down_drops: u64,
    /// Fault injection applied to every frame.
    pub faults: FaultInjector,
    /// Frames offered to this link.
    pub frames_in: u64,
    /// Payload bytes offered to this link (before faults).
    pub bytes_in: u64,
    /// Frames that reached the far end (incl. duplicates).
    pub frames_delivered: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
}

impl Link {
    /// A HIPPI-style link: pure latency, sender paces.
    pub fn hippi(latency: Dur, seed: u64) -> Link {
        Link {
            bandwidth_bps: None,
            latency,
            busy_until: Time::ZERO,
            up: true,
            extra_latency: Dur::ZERO,
            down_drops: 0,
            faults: FaultInjector::none(seed),
            frames_in: 0,
            bytes_in: 0,
            frames_delivered: 0,
            bytes_delivered: 0,
        }
    }

    /// A serializing link (e.g. 10 Mbit/s Ethernet).
    pub fn serializing(bandwidth_bps: f64, latency: Dur, seed: u64) -> Link {
        Link {
            bandwidth_bps: Some(bandwidth_bps),
            latency,
            busy_until: Time::ZERO,
            up: true,
            extra_latency: Dur::ZERO,
            down_drops: 0,
            faults: FaultInjector::none(seed),
            frames_in: 0,
            bytes_in: 0,
            frames_delivered: 0,
            bytes_delivered: 0,
        }
    }

    /// Share a buffer pool with this link's fault injector (corruption
    /// copies recycle frame storage instead of allocating).
    pub fn set_pool(&mut self, pool: Arc<BufPool>) {
        self.faults.set_pool(pool);
    }

    /// Offer a frame at `now`; returns zero, one, or (duplication) two
    /// deliveries for the far end.
    pub fn transmit(&mut self, payload: Bytes, now: Time) -> Deliveries {
        self.frames_in += 1;
        self.bytes_in += payload.len() as u64;
        if !self.up {
            // A down link never presents the frame to the fault injector, so
            // the probabilistic fault stream is unaffected by outage windows.
            self.down_drops += 1;
            return Deliveries::None;
        }
        let fate = self.faults.fate(payload);
        let Fate::Deliver {
            payload,
            extra_delay,
            duplicate,
        } = fate
        else {
            return Deliveries::None;
        };
        let serialized_at = match self.bandwidth_bps {
            Some(bps) => {
                let start = now.max(self.busy_until);
                let done = start + Dur::for_bytes_at_bps(payload.len() as u64, bps);
                self.busy_until = done;
                done
            }
            None => now,
        };
        let at = serialized_at + self.latency + self.extra_latency + extra_delay;
        self.frames_delivered += 1;
        self.bytes_delivered += payload.len() as u64;
        if duplicate {
            self.frames_delivered += 1;
            Deliveries::Two(
                Delivery {
                    at,
                    payload: payload.clone(),
                },
                Delivery {
                    at: at + Dur::micros(1),
                    payload,
                },
            )
        } else {
            Deliveries::One(Delivery { at, payload })
        }
    }

    /// Publish link traffic and fault-injection counters into a registry
    /// scope.
    pub fn publish_metrics(&self, s: &mut Scope<'_>) {
        s.counter("frames_in", self.frames_in);
        s.counter("bytes_in", self.bytes_in);
        s.counter("frames_delivered", self.frames_delivered);
        s.counter("bytes_delivered", self.bytes_delivered);
        s.counter("down_drops", self.down_drops);
        let f = &self.faults.stats;
        s.counter("faults.offered", f.offered);
        s.counter("faults.dropped", f.dropped);
        s.counter("faults.corrupted", f.corrupted);
        s.counter("faults.reordered", f.reordered);
        s.counter("faults.duplicated", f.duplicated);
        s.counter("faults.stealth_corrupted", f.stealth_corrupted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_only_link() {
        let mut l = Link::hippi(Dur::micros(10), 1);
        let d = l.transmit(Bytes::from_static(b"abc"), Time(1_000));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, Time(1_000) + Dur::micros(10));
    }

    #[test]
    fn serializing_link_paces_back_to_back_frames() {
        // 10 Mbit/s: 1250 bytes = 1 ms on the wire.
        let mut l = Link::serializing(10e6, Dur::ZERO, 1);
        let d1 = l.transmit(Bytes::from(vec![0u8; 1250]), Time::ZERO);
        let d2 = l.transmit(Bytes::from(vec![0u8; 1250]), Time::ZERO);
        assert_eq!(d1[0].at, Time::ZERO + Dur::millis(1));
        assert_eq!(d2[0].at, Time::ZERO + Dur::millis(2));
    }

    #[test]
    fn dropped_frames_produce_no_delivery() {
        let mut l = Link::hippi(Dur::ZERO, 1);
        l.faults.force_drop_next(1);
        assert!(l.transmit(Bytes::from_static(b"x"), Time::ZERO).is_empty());
        assert_eq!(l.frames_in, 1);
        assert_eq!(l.frames_delivered, 0);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let mut l = Link::hippi(Dur::ZERO, 2);
        l.faults.dup_p = 1.0;
        let d = l.transmit(Bytes::from_static(b"x"), Time::ZERO);
        assert_eq!(d.len(), 2);
        assert!(d[1].at > d[0].at);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = Link::serializing(10e6, Dur::ZERO, 3);
        l.transmit(Bytes::from(vec![0u8; 100]), Time::ZERO);
        l.transmit(Bytes::from(vec![0u8; 200]), Time::ZERO);
        assert_eq!(l.frames_delivered, 2);
        assert_eq!(l.bytes_delivered, 300);
        assert_eq!(l.bytes_in, 300);
    }

    #[test]
    fn down_link_drops_without_touching_fault_stream() {
        let mut l = Link::hippi(Dur::ZERO, 7);
        l.up = false;
        assert!(l.transmit(Bytes::from_static(b"x"), Time::ZERO).is_empty());
        assert_eq!(l.down_drops, 1);
        assert_eq!(l.frames_in, 1);
        assert_eq!(l.faults.stats.offered, 0, "injector never sees the frame");
        l.up = true;
        assert_eq!(l.transmit(Bytes::from_static(b"y"), Time::ZERO).len(), 1);
        assert_eq!(l.faults.stats.offered, 1);
    }

    #[test]
    fn extra_latency_delays_deliveries() {
        let mut l = Link::hippi(Dur::micros(10), 8);
        l.extra_latency = Dur::micros(500);
        let d = l.transmit(Bytes::from_static(b"x"), Time(1_000));
        assert_eq!(d[0].at, Time(1_000) + Dur::micros(510));
        l.extra_latency = Dur::ZERO;
        let d = l.transmit(Bytes::from_static(b"x"), Time(2_000));
        assert_eq!(d[0].at, Time(2_000) + Dur::micros(10));
    }

    #[test]
    fn bytes_in_counts_dropped_frames_too() {
        let mut l = Link::hippi(Dur::ZERO, 1);
        l.faults.force_drop_next(1);
        l.transmit(Bytes::from(vec![0u8; 64]), Time::ZERO);
        l.transmit(Bytes::from(vec![0u8; 36]), Time::ZERO);
        assert_eq!(l.bytes_in, 100);
        assert_eq!(l.bytes_delivered, 36);
    }
}
