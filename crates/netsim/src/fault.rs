//! Fault injection.
//!
//! Modeled on the knobs the smoltcp examples expose (`--drop-chance`,
//! `--corrupt-chance`, ...): every frame presented to a faulty link draws a
//! fate from a seeded RNG. Tests can also force deterministic faults
//! (`force_drop_next`) to hit exact protocol states — e.g. "drop precisely
//! the third data segment and watch TCP retransmit it from outboard memory
//! without re-DMAing the body".

use bytes::Bytes;
use outboard_sim::{BufPool, Dur, Pcg32};
use std::collections::VecDeque;
use std::sync::Arc;

pub use outboard_sim::rng::{check_probability, FaultConfigError};

/// What happened to each frame, cumulatively.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames presented to the injector.
    pub offered: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames with a bit flipped.
    pub corrupted: u64,
    /// Frames delayed behind later traffic.
    pub reordered: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames corrupted in a checksum-preserving way (test-only planted bug).
    pub stealth_corrupted: u64,
}

/// The fate drawn for one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Deliver the (possibly corrupted) payload after an extra delay, and
    /// optionally deliver it twice.
    Deliver {
        /// The (possibly corrupted) frame contents.
        payload: Bytes,
        /// Additional delay beyond the link's latency.
        extra_delay: Dur,
        /// Deliver a second copy shortly after the first.
        duplicate: bool,
    },
    /// Silently dropped.
    Drop,
}

/// A fate forced by a test, queued ahead of the probabilistic draws.
/// Resolved against the real payload when the frame arrives at `fate`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ForcedFault {
    Drop,
    Corrupt,
    Reorder,
    Duplicate,
    StealthCorrupt,
}

/// Configurable fault injector with a deterministic stream.
#[derive(Debug)]
pub struct FaultInjector {
    /// Probability a frame is dropped.
    pub drop_p: f64,
    /// Probability one bit of a frame is flipped.
    pub corrupt_p: f64,
    /// Probability a frame is delayed (arrives late).
    pub reorder_p: f64,
    /// Extra delay applied to "reordered" frames (they arrive late, after
    /// frames sent behind them).
    pub reorder_delay: Dur,
    /// Probability a frame is delivered twice.
    pub dup_p: f64,
    rng: Pcg32,
    forced: VecDeque<ForcedFault>,
    /// Cumulative fate counts.
    pub stats: FaultStats,
    /// Optional buffer pool for corruption copies (the only fates that
    /// rewrite a frame); without one they fall back to plain allocation.
    pool: Option<Arc<BufPool>>,
}

impl FaultInjector {
    /// A transparent injector (no faults).
    pub fn none(seed: u64) -> FaultInjector {
        FaultInjector {
            drop_p: 0.0,
            corrupt_p: 0.0,
            reorder_p: 0.0,
            reorder_delay: Dur::millis(1),
            dup_p: 0.0,
            rng: Pcg32::new(seed),
            forced: VecDeque::new(),
            stats: FaultStats::default(),
            pool: None,
        }
    }

    /// Recycle corruption-copy storage through `pool`.
    pub fn set_pool(&mut self, pool: Arc<BufPool>) {
        self.pool = Some(pool);
    }

    /// Copy `payload` into a mutable buffer (pooled when a pool is shared)
    /// and freeze the edited bytes back into a frame.
    fn edited_copy(&self, payload: &Bytes, edit: impl FnOnce(&mut [u8])) -> Bytes {
        match &self.pool {
            Some(p) => {
                let (mut buf, ticket) = p.acquire(payload.len());
                buf.copy_from_slice(payload);
                edit(&mut buf);
                p.freeze(buf, ticket)
            }
            None => {
                // lint: allow(payload-alloc, pool-less fallback for standalone injectors; worlds always share a pool)
                let mut buf = payload.to_vec();
                edit(&mut buf);
                Bytes::from(buf)
            }
        }
    }

    /// An injector with the given drop/corrupt probabilities.
    ///
    /// Rejects probabilities outside `[0, 1]` — a misconfigured knob would
    /// otherwise only trip a `debug_assert!` deep in the RNG, silently
    /// misbehaving in release builds.
    pub fn lossy(
        seed: u64,
        drop_p: f64,
        corrupt_p: f64,
    ) -> Result<FaultInjector, FaultConfigError> {
        check_probability("drop_p", drop_p)?;
        check_probability("corrupt_p", corrupt_p)?;
        let mut f = FaultInjector::none(seed);
        f.drop_p = drop_p;
        f.corrupt_p = corrupt_p;
        Ok(f)
    }

    /// Validate every probability knob currently configured on this injector
    /// (the fields are public, so post-construction edits can still smuggle
    /// in a bad value; callers that accept external config should re-check).
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        check_probability("drop_p", self.drop_p)?;
        check_probability("corrupt_p", self.corrupt_p)?;
        check_probability("reorder_p", self.reorder_p)?;
        check_probability("dup_p", self.dup_p)?;
        Ok(())
    }

    /// Force the next frame(s) to be dropped regardless of probabilities.
    pub fn force_drop_next(&mut self, count: usize) {
        for _ in 0..count {
            self.forced.push_back(ForcedFault::Drop);
        }
    }

    /// Force the next frame to be corrupted (one bit flipped).
    pub fn force_corrupt_next(&mut self) {
        self.forced.push_back(ForcedFault::Corrupt);
    }

    /// Force the next frame to arrive late (delayed by `reorder_delay`).
    pub fn force_reorder_next(&mut self) {
        self.forced.push_back(ForcedFault::Reorder);
    }

    /// Force the next frame to be delivered twice.
    pub fn force_duplicate_next(&mut self) {
        self.forced.push_back(ForcedFault::Duplicate);
    }

    /// Force the next frame to be corrupted in a way that *preserves* the
    /// Internet checksum (the chaos engine's planted bug — the corruption
    /// must leak past the checksum layer so only an end-to-end oracle can
    /// catch it).
    pub fn force_stealth_corrupt_next(&mut self) {
        self.forced.push_back(ForcedFault::StealthCorrupt);
    }

    fn corrupt(&mut self, payload: &Bytes) -> Bytes {
        self.stats.corrupted += 1;
        if payload.is_empty() {
            return payload.clone();
        }
        let bit = self.rng.below((payload.len() * 8) as u32) as usize;
        self.edited_copy(payload, |buf| buf[bit / 8] ^= 1 << (bit % 8))
    }

    /// Corrupt `payload` without changing its Internet checksum.
    ///
    /// The checksum is a ones'-complement sum of big-endian 16-bit words, so
    /// flipping the same bit index in two bytes that sit at the same parity
    /// (both high-lane or both low-lane, i.e. an even offset apart) — one
    /// byte with the bit set, the other with it clear — shifts one word by
    /// `+d` and the other by `-d`, leaving the sum exactly unchanged. The
    /// search is restricted to the frame tail (past the link/IP/TCP headers)
    /// so the flips land in application payload, not in header fields whose
    /// semantics TCP would notice. If the payload has no such pair (e.g. a
    /// constant fill), it is delivered untouched.
    fn stealth_corrupt(&mut self, payload: &Bytes) -> Bytes {
        const HEADER_SKIP: usize = 128;
        if payload.len() < HEADER_SKIP + 4 {
            return payload.clone();
        }
        let start = HEADER_SKIP;
        let region = &payload[start..];
        for bit in 0..8u8 {
            for parity in 0..2usize {
                let mut set_at = None;
                let mut clear_at = None;
                for (i, &b) in region.iter().enumerate().skip(parity).step_by(2) {
                    if b & (1 << bit) != 0 {
                        if set_at.is_none() {
                            set_at = Some(i);
                        }
                    } else if clear_at.is_none() {
                        clear_at = Some(i);
                    }
                    if let (Some(set), Some(clear)) = (set_at, clear_at) {
                        self.stats.stealth_corrupted += 1;
                        return self.edited_copy(payload, |buf| {
                            buf[start + set] ^= 1 << bit;
                            buf[start + clear] ^= 1 << bit;
                        });
                    }
                }
            }
        }
        payload.clone()
    }

    /// Draw the fate of one frame.
    pub fn fate(&mut self, payload: Bytes) -> Fate {
        self.stats.offered += 1;
        if let Some(forced) = self.forced.pop_front() {
            return match forced {
                ForcedFault::Drop => {
                    self.stats.dropped += 1;
                    Fate::Drop
                }
                ForcedFault::Corrupt => Fate::Deliver {
                    payload: self.corrupt(&payload),
                    extra_delay: Dur::ZERO,
                    duplicate: false,
                },
                ForcedFault::Reorder => {
                    self.stats.reordered += 1;
                    Fate::Deliver {
                        payload,
                        extra_delay: self.reorder_delay,
                        duplicate: false,
                    }
                }
                ForcedFault::Duplicate => {
                    self.stats.duplicated += 1;
                    Fate::Deliver {
                        payload,
                        extra_delay: Dur::ZERO,
                        duplicate: true,
                    }
                }
                ForcedFault::StealthCorrupt => Fate::Deliver {
                    payload: self.stealth_corrupt(&payload),
                    extra_delay: Dur::ZERO,
                    duplicate: false,
                },
            };
        }
        if self.drop_p > 0.0 && self.rng.chance(self.drop_p) {
            self.stats.dropped += 1;
            return Fate::Drop;
        }
        let payload = if self.corrupt_p > 0.0 && self.rng.chance(self.corrupt_p) {
            self.corrupt(&payload)
        } else {
            payload
        };
        let extra_delay = if self.reorder_p > 0.0 && self.rng.chance(self.reorder_p) {
            self.stats.reordered += 1;
            self.reorder_delay
        } else {
            Dur::ZERO
        };
        let duplicate = self.dup_p > 0.0 && self.rng.chance(self.dup_p);
        if duplicate {
            self.stats.duplicated += 1;
        }
        Fate::Deliver {
            payload,
            extra_delay,
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_injector_delivers_verbatim() {
        let mut f = FaultInjector::none(1);
        let data = Bytes::from_static(b"hello");
        match f.fate(data.clone()) {
            Fate::Deliver {
                payload,
                extra_delay,
                duplicate,
            } => {
                assert_eq!(payload, data);
                assert_eq!(extra_delay, Dur::ZERO);
                assert!(!duplicate);
            }
            Fate::Drop => panic!("dropped without faults"),
        }
        assert_eq!(f.stats.offered, 1);
        assert_eq!(f.stats.dropped, 0);
    }

    #[test]
    fn drop_probability_is_roughly_honored() {
        let mut f = FaultInjector::lossy(2, 0.3, 0.0).unwrap();
        for _ in 0..10_000 {
            f.fate(Bytes::from_static(b"x"));
        }
        let rate = f.stats.dropped as f64 / f.stats.offered as f64;
        assert!((0.27..0.33).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut f = FaultInjector::lossy(3, 0.0, 1.0).unwrap();
        let data = Bytes::from(vec![0u8; 64]);
        match f.fate(data.clone()) {
            Fate::Deliver { payload, .. } => {
                let flipped: u32 = payload
                    .iter()
                    .zip(data.iter())
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(flipped, 1);
            }
            Fate::Drop => panic!(),
        }
    }

    #[test]
    fn forced_faults_win() {
        let mut f = FaultInjector::none(4);
        f.force_drop_next(2);
        f.force_corrupt_next();
        assert_eq!(f.fate(Bytes::from_static(b"a")), Fate::Drop);
        assert_eq!(f.fate(Bytes::from_static(b"b")), Fate::Drop);
        match f.fate(Bytes::from_static(b"cc")) {
            Fate::Deliver { payload, .. } => assert_ne!(payload, Bytes::from_static(b"cc")),
            Fate::Drop => panic!(),
        }
        // Back to transparent.
        match f.fate(Bytes::from_static(b"dd")) {
            Fate::Deliver { payload, .. } => assert_eq!(payload, Bytes::from_static(b"dd")),
            Fate::Drop => panic!(),
        }
    }

    #[test]
    fn forced_reorder_and_duplicate() {
        let mut f = FaultInjector::none(6);
        f.reorder_delay = Dur::micros(250);
        f.force_reorder_next();
        f.force_duplicate_next();
        match f.fate(Bytes::from_static(b"r")) {
            Fate::Deliver {
                payload,
                extra_delay,
                duplicate,
            } => {
                assert_eq!(payload, Bytes::from_static(b"r"), "payload untouched");
                assert_eq!(extra_delay, Dur::micros(250));
                assert!(!duplicate);
            }
            Fate::Drop => panic!(),
        }
        match f.fate(Bytes::from_static(b"d")) {
            Fate::Deliver {
                extra_delay,
                duplicate,
                ..
            } => {
                assert_eq!(extra_delay, Dur::ZERO);
                assert!(duplicate);
            }
            Fate::Drop => panic!(),
        }
        assert_eq!(f.stats.reordered, 1);
        assert_eq!(f.stats.duplicated, 1);
        // Back to transparent.
        match f.fate(Bytes::from_static(b"z")) {
            Fate::Deliver {
                extra_delay,
                duplicate,
                ..
            } => {
                assert_eq!(extra_delay, Dur::ZERO);
                assert!(!duplicate);
            }
            Fate::Drop => panic!(),
        }
    }

    #[test]
    fn reorder_and_duplicate() {
        let mut f = FaultInjector::none(5);
        f.reorder_p = 1.0;
        f.reorder_delay = Dur::micros(500);
        f.dup_p = 1.0;
        match f.fate(Bytes::from_static(b"z")) {
            Fate::Deliver {
                extra_delay,
                duplicate,
                ..
            } => {
                assert_eq!(extra_delay, Dur::micros(500));
                assert!(duplicate);
            }
            Fate::Drop => panic!(),
        }
        assert_eq!(f.stats.reordered, 1);
        assert_eq!(f.stats.duplicated, 1);
    }

    #[test]
    fn out_of_range_probabilities_are_rejected() {
        assert_eq!(
            FaultInjector::lossy(1, 1.5, 0.0).unwrap_err(),
            FaultConfigError {
                knob: "drop_p",
                value: 1.5
            }
        );
        assert_eq!(
            FaultInjector::lossy(1, 0.0, -0.1).unwrap_err(),
            FaultConfigError {
                knob: "corrupt_p",
                value: -0.1
            }
        );
        assert!(FaultInjector::lossy(1, 0.0, f64::NAN).is_err());
        let mut f = FaultInjector::none(1);
        f.reorder_p = 2.0;
        assert_eq!(f.validate().unwrap_err().knob, "reorder_p");
        f.reorder_p = 1.0;
        assert!(f.validate().is_ok());
    }

    /// The folded ones'-complement sum over the whole buffer — any checksum
    /// computed over any even-offset-aligned sub-range shifts by the same
    /// amount under the stealth flip, so preserving this global sum (plus
    /// both lane sums) proves the real TCP checksum is preserved.
    fn ones_sum(buf: &[u8]) -> u32 {
        let mut sum = 0u32;
        let mut i = 0;
        while i < buf.len() {
            let hi = buf[i] as u32;
            let lo = if i + 1 < buf.len() {
                buf[i + 1] as u32
            } else {
                0
            };
            sum += (hi << 8) | lo;
            i += 2;
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        sum
    }

    #[test]
    fn stealth_corruption_changes_bytes_but_not_checksum() {
        let mut f = FaultInjector::none(9);
        f.force_stealth_corrupt_next();
        // A varied payload like real application data.
        let data: Bytes = (0..1024u32)
            .map(|i| i.wrapping_mul(2654435761).to_le_bytes()[0])
            .collect::<Vec<u8>>()
            .into();
        match f.fate(data.clone()) {
            Fate::Deliver { payload, .. } => {
                assert_ne!(payload, data, "payload must actually change");
                let diff: usize = payload
                    .iter()
                    .zip(data.iter())
                    .filter(|(a, b)| a != b)
                    .count();
                assert_eq!(diff, 2, "exactly two bytes flipped");
                assert_eq!(ones_sum(&payload), ones_sum(&data), "checksum must survive");
                // Both lane sums individually, so any 16-bit alignment works.
                let lane = |buf: &[u8], p: usize| -> u64 {
                    buf.iter().skip(p).step_by(2).map(|&b| b as u64).sum()
                };
                assert_eq!(lane(&payload, 0), lane(&data, 0));
                assert_eq!(lane(&payload, 1), lane(&data, 1));
                // The header region is untouched.
                assert_eq!(&payload[..128], &data[..128]);
            }
            Fate::Drop => panic!(),
        }
        assert_eq!(f.stats.stealth_corrupted, 1);
    }

    #[test]
    fn stealth_corruption_leaves_uncorruptible_payloads_alone() {
        let mut f = FaultInjector::none(10);
        f.force_stealth_corrupt_next();
        let data = Bytes::from(vec![0u8; 512]); // constant fill: no set/clear pair
        match f.fate(data.clone()) {
            Fate::Deliver { payload, .. } => assert_eq!(payload, data),
            Fate::Drop => panic!(),
        }
        assert_eq!(f.stats.stealth_corrupted, 0);
    }

    #[test]
    fn deterministic_stream() {
        let run = |seed| {
            let mut f = FaultInjector::lossy(seed, 0.5, 0.0).unwrap();
            (0..64)
                .map(|_| matches!(f.fate(Bytes::from_static(b"p")), Fate::Drop))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(10), run(10));
        assert_ne!(run(10), run(11));
    }
}
