//! Frame capture: a tcpdump-style decoder for simulated traffic.
//!
//! Attach a [`Capture`] to the harness, feed it every frame that crosses a
//! link, and render a human-readable trace — the debugging workflow the
//! smoltcp examples provide with `--pcap`, adapted to this fabric's
//! HIPPI/Ethernet framing.

use bytes::Bytes;
use outboard_sim::Time;
use outboard_wire::ether::{EtherHeader, ETHER_HEADER_LEN};
use outboard_wire::hippi::{HippiHeader, HIPPI_HEADER_LEN};
use outboard_wire::ipv4::Ipv4Header;
use outboard_wire::proto;
use outboard_wire::tcp::TcpHeader;
use outboard_wire::udp::UdpHeader;

/// Which framing a captured frame uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Framing {
    /// HIPPI-FP (CAB fabric).
    Hippi,
    /// Ethernet II.
    Ether,
    /// Bare IP (loopback).
    RawIp,
}

/// One captured frame.
#[derive(Clone, Debug)]
pub struct CapturedFrame {
    /// When the frame entered the link.
    pub at: Time,
    /// A label for the link it crossed (e.g. `"a->b"`).
    pub link: String,
    /// The framing in use.
    pub framing: Framing,
    /// Raw frame bytes.
    pub bytes: Bytes,
}

impl CapturedFrame {
    /// Decode the frame into a one-line tcpdump-style summary. Decoding is
    /// total: malformed frames render as hex length markers, never panic.
    pub fn summary(&self) -> String {
        let ip_off = match self.framing {
            Framing::Hippi => HIPPI_HEADER_LEN,
            Framing::Ether => ETHER_HEADER_LEN,
            Framing::RawIp => 0,
        };
        let mut head = format!("{} {}", self.at, self.link);
        match self.framing {
            Framing::Hippi => {
                if let Ok(h) = HippiHeader::parse(&self.bytes) {
                    head.push_str(&format!(" HIPPI[{}->{} ch{}]", h.src, h.dst, h.channel));
                }
            }
            Framing::Ether => {
                if let Ok(h) = EtherHeader::parse(&self.bytes) {
                    head.push_str(&format!(" ETH[{}->{}]", h.src, h.dst));
                }
            }
            Framing::RawIp => head.push_str(" LO"),
        }
        if self.bytes.len() < ip_off {
            return format!("{head} short frame ({} B)", self.bytes.len());
        }
        let ip_bytes = &self.bytes[ip_off..];
        let Ok(ip) = Ipv4Header::parse_with_limit(ip_bytes, usize::MAX) else {
            return format!("{head} non-IP payload ({} B)", ip_bytes.len());
        };
        let mut line = format!("{head} {} > {}", ip.src, ip.dst);
        if ip.is_fragment() {
            line.push_str(&format!(
                " frag id={} off={}{}",
                ip.id,
                ip.frag_offset(),
                if ip.more_fragments() { "+" } else { "" }
            ));
            return format!("{line} len {}", ip.payload_len());
        }
        let tp = &ip_bytes[ip.header_len as usize..];
        match ip.protocol {
            proto::TCP => {
                if let Ok(t) = TcpHeader::parse(tp) {
                    let payload = ip.payload_len().saturating_sub(t.header_len as usize);
                    line.push_str(&format!(
                        " TCP {}->{} [{}] seq {} ack {} win {} len {}",
                        t.src_port, t.dst_port, t.flags, t.seq, t.ack, t.window, payload
                    ));
                } else {
                    line.push_str(" TCP <truncated>");
                }
            }
            proto::UDP => {
                if let Ok(u) = UdpHeader::parse_with_available(tp, usize::MAX) {
                    line.push_str(&format!(
                        " UDP {}->{} len {}",
                        u.src_port,
                        u.dst_port,
                        u.payload_len()
                    ));
                } else {
                    line.push_str(" UDP <truncated>");
                }
            }
            proto::ICMP => line.push_str(&format!(" ICMP len {}", ip.payload_len())),
            p => line.push_str(&format!(" proto {p} len {}", ip.payload_len())),
        }
        line
    }
}

/// A bounded capture buffer.
#[derive(Debug, Default)]
pub struct Capture {
    frames: Vec<CapturedFrame>,
    /// Maximum frames retained (0 = unbounded).
    pub limit: usize,
}

impl Capture {
    /// An unbounded capture.
    pub fn new() -> Capture {
        Capture::default()
    }

    /// Record one frame.
    pub fn record(&mut self, at: Time, link: impl Into<String>, framing: Framing, bytes: Bytes) {
        if self.limit > 0 && self.frames.len() >= self.limit {
            return;
        }
        self.frames.push(CapturedFrame {
            at,
            link: link.into(),
            framing,
            bytes,
        });
    }

    /// Frames captured so far.
    pub fn frames(&self) -> &[CapturedFrame] {
        &self.frames
    }

    /// Render the whole capture, one line per frame.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for f in &self.frames {
            out.push_str(&f.summary());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outboard_wire::tcp::TcpFlags;

    fn tcp_frame() -> Bytes {
        let mut t = TcpHeader::new(5001, 80, 1000, 2000, TcpFlags::ACK | TcpFlags::PSH);
        t.window = 512;
        let tb = t.build();
        let ip = Ipv4Header::new(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            proto::TCP,
            tb.len() + 100,
            7,
        );
        let hip = HippiHeader::new(1, 2, ip.total_len as usize, 3);
        let mut f = Vec::new();
        f.extend_from_slice(&hip.build());
        f.extend_from_slice(&ip.build());
        f.extend_from_slice(&tb);
        f.extend_from_slice(&[0u8; 100]);
        Bytes::from(f)
    }

    #[test]
    fn summarizes_tcp_over_hippi() {
        let mut cap = Capture::new();
        cap.record(Time(1_000_000), "a->b", Framing::Hippi, tcp_frame());
        let dump = cap.dump();
        assert!(dump.contains("HIPPI[1->2 ch3]"), "{dump}");
        assert!(dump.contains("10.0.0.1 > 10.0.0.2"), "{dump}");
        assert!(
            dump.contains("TCP 5001->80 [AP] seq 1000 ack 2000"),
            "{dump}"
        );
        assert!(dump.contains("len 100"), "{dump}");
    }

    #[test]
    fn decoding_is_total_on_garbage() {
        let mut cap = Capture::new();
        cap.record(Time(0), "x", Framing::Hippi, Bytes::from(vec![0xFF; 10]));
        cap.record(Time(0), "x", Framing::Ether, Bytes::from(vec![0x00; 3]));
        cap.record(Time(0), "x", Framing::RawIp, Bytes::new());
        let dump = cap.dump();
        assert_eq!(dump.lines().count(), 3);
    }

    #[test]
    fn limit_bounds_the_buffer() {
        let mut cap = Capture {
            limit: 2,
            ..Capture::new()
        };
        for _ in 0..5 {
            cap.record(Time(0), "x", Framing::RawIp, Bytes::new());
        }
        assert_eq!(cap.frames().len(), 2);
    }

    #[test]
    fn fragment_summary() {
        let mut ip = Ipv4Header::new(
            "1.1.1.1".parse().unwrap(),
            "2.2.2.2".parse().unwrap(),
            proto::UDP,
            64,
            42,
        );
        ip.flags_frag = outboard_wire::ipv4::IP_MF | 10; // offset 80
        let mut f = Vec::new();
        f.extend_from_slice(&ip.build());
        f.extend_from_slice(&[0u8; 64]);
        let mut cap = Capture::new();
        cap.record(Time(0), "y", Framing::RawIp, Bytes::from(f));
        let dump = cap.dump();
        assert!(dump.contains("frag id=42 off=80+"), "{dump}");
    }
}
