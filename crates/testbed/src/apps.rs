//! Applications: ttcp sender/receiver (user processes with copy-semantics
//! sockets) and an in-kernel file server with share semantics (§5).

use crate::world::{App, Step, SysCtx};
use bytes::Bytes;
use outboard_host::TaskId;
use outboard_mbuf::Chain;
use outboard_stack::{Proto, ReadResult, SockAddr, SockId, StackError, WriteResult};

/// Per-write user-mode loop overhead of ttcp (µs) — the tiny amount of
/// user time the paper's ttcp consumes per iteration.
const TTCP_LOOP_US: f64 = 3.0;

/// Sender states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TxState {
    Start,
    Connecting,
    Writing,
    Closing,
    Done,
}

/// A ttcp transmitter: connect, then `write(write_size)` until
/// `total_bytes` have been accepted, then close.
pub struct TtcpSender {
    task: TaskId,
    dst: SockAddr,
    /// Bytes per write(2) call (the figures' x-axis).
    pub write_size: usize,
    /// Total bytes to transmit.
    pub total_bytes: usize,
    /// Base virtual address of the (reused) user buffer.
    pub buf_vaddr: u64,
    sock: Option<SockId>,
    state: TxState,
    /// Bytes accepted by the socket so far.
    pub bytes_written: usize,
    /// write(2) calls completed.
    pub writes: u64,
    /// Deterministic payload function so the receiver can verify integrity.
    pub pattern: fn(usize) -> u8,
}

/// The byte every ttcp transfer places at stream offset `i`.
pub fn ttcp_pattern(i: usize) -> u8 {
    (i as u32).wrapping_mul(2654435761).to_le_bytes()[0]
}

impl TtcpSender {
    /// A sender that connects to `dst` and streams `total_bytes`.
    pub fn new(task: TaskId, dst: SockAddr, write_size: usize, total_bytes: usize) -> TtcpSender {
        TtcpSender {
            task,
            dst,
            write_size,
            total_bytes,
            buf_vaddr: 0x10_0000,
            sock: None,
            state: TxState::Start,
            bytes_written: 0,
            writes: 0,
            pattern: ttcp_pattern,
        }
    }

    /// The connected socket, once created.
    pub fn sock(&self) -> Option<SockId> {
        self.sock
    }

    fn fill_buffer(&self, ctx: &mut SysCtx<'_>) {
        // The user buffer holds the stream bytes for the *next* write; ttcp
        // reuses one buffer, so refill per write with the right offsets.
        let mut data = vec![0u8; self.write_size];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (self.pattern)(self.bytes_written + i);
        }
        use outboard_host::UserMemory;
        ctx.mem
            .write_user(self.task, self.buf_vaddr, &data)
            .expect("sender buffer");
    }
}

impl App for TtcpSender {
    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn finished(&self) -> bool {
        self.state == TxState::Done
    }

    fn step(&mut self, ctx: &mut SysCtx<'_>) -> Step {
        match self.state {
            TxState::Start => {
                ctx.mem
                    .create_region(self.task, self.buf_vaddr, self.write_size.max(4096));
                let sock = ctx.kernel.sys_socket(Proto::Tcp);
                self.sock = Some(sock);
                let fx = ctx
                    .kernel
                    .sys_connect(sock, self.task, self.dst, ctx.mem, ctx.now)
                    .expect("connect");
                ctx.absorb(fx);
                self.state = TxState::Connecting;
                Step::Wait
            }
            TxState::Connecting => {
                // Woken on ESTABLISHED.
                self.state = TxState::Writing;
                self.step_write(ctx)
            }
            TxState::Writing => self.step_write(ctx),
            TxState::Closing => {
                // Woken when the write drained; issue the close.
                let fx = ctx.kernel.sys_close(self.sock.unwrap(), ctx.mem, ctx.now);
                ctx.absorb(fx);
                self.state = TxState::Done;
                Step::Done
            }
            TxState::Done => Step::Done,
        }
    }
}

impl TtcpSender {
    fn step_write(&mut self, ctx: &mut SysCtx<'_>) -> Step {
        if self.bytes_written >= self.total_bytes {
            self.state = TxState::Closing;
            // Close immediately in this quantum.
            let fx = ctx.kernel.sys_close(self.sock.unwrap(), ctx.mem, ctx.now);
            ctx.absorb(fx);
            self.state = TxState::Done;
            return Step::Done;
        }
        ctx.user_cpu(TTCP_LOOP_US);
        let len = self.write_size.min(self.total_bytes - self.bytes_written);
        self.fill_buffer(ctx);
        let r = ctx.kernel.sys_write(
            self.sock.unwrap(),
            self.task,
            self.buf_vaddr,
            len,
            ctx.mem,
            ctx.now,
        );
        match r {
            Ok((WriteResult::Done { bytes }, fx)) => {
                ctx.absorb(fx);
                self.bytes_written += bytes;
                self.writes += 1;
                Step::Continue
            }
            Ok((WriteResult::Blocked { .. }, fx)) => {
                ctx.absorb(fx);
                // Copy semantics: when woken, the whole write is accepted.
                self.bytes_written += len;
                self.writes += 1;
                Step::Wait
            }
            Err(StackError::InvalidState(_)) => {
                // Spurious wake while a write is still pending.
                Step::Wait
            }
            Err(e) => panic!("ttcp write failed: {e}"),
        }
    }
}

/// Receiver states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RxState {
    Start,
    Accepting,
    Reading,
    Done,
}

/// A ttcp receiver: listen/accept, read to EOF, verify the pattern.
pub struct TtcpReceiver {
    task: TaskId,
    port: u16,
    /// Bytes requested per read(2) call.
    pub read_size: usize,
    listener: Option<SockId>,
    conn: Option<SockId>,
    state: RxState,
    /// Base virtual address of the receive buffer.
    pub buf_vaddr: u64,
    /// Bytes received so far.
    pub bytes_read: usize,
    /// read(2) calls that returned data.
    pub reads: u64,
    /// A read whose DMA completion we are waiting on.
    pending_dma: Option<usize>,
    /// Check every received byte against the pattern.
    pub verify: bool,
    /// Bytes that did not match the pattern.
    pub verify_errors: u64,
    /// Expected byte at each stream offset.
    pub pattern: fn(usize) -> u8,
}

impl TtcpReceiver {
    /// A receiver listening on `port`.
    pub fn new(task: TaskId, port: u16, read_size: usize) -> TtcpReceiver {
        TtcpReceiver {
            task,
            port,
            read_size,
            listener: None,
            conn: None,
            state: RxState::Start,
            buf_vaddr: 0x20_0000,
            bytes_read: 0,
            reads: 0,
            pending_dma: None,
            verify: true,
            verify_errors: 0,
            pattern: ttcp_pattern,
        }
    }

    /// The accepted connection, once established.
    pub fn conn(&self) -> Option<SockId> {
        self.conn
    }

    fn verify_buf(&mut self, ctx: &mut SysCtx<'_>, base_off: usize, len: usize) {
        if !self.verify {
            return;
        }
        use outboard_host::UserMemory;
        let mut data = vec![0u8; len];
        ctx.mem
            .read_user(self.task, self.buf_vaddr, &mut data)
            .expect("receiver buffer");
        for (i, &b) in data.iter().enumerate() {
            if b != (self.pattern)(base_off + i) {
                self.verify_errors += 1;
            }
        }
    }
}

impl App for TtcpReceiver {
    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn finished(&self) -> bool {
        self.state == RxState::Done
    }

    fn step(&mut self, ctx: &mut SysCtx<'_>) -> Step {
        match self.state {
            RxState::Start => {
                ctx.mem
                    .create_region(self.task, self.buf_vaddr, self.read_size.max(4096));
                let l = ctx.kernel.sys_socket(Proto::Tcp);
                ctx.kernel.sys_bind(l, self.port).expect("bind");
                ctx.kernel.sys_listen(l).expect("listen");
                self.listener = Some(l);
                self.state = RxState::Accepting;
                match ctx.kernel.sys_accept(l, self.task).expect("accept") {
                    Some(c) => {
                        self.conn = Some(c);
                        self.state = RxState::Reading;
                        self.step(ctx)
                    }
                    None => Step::Wait,
                }
            }
            RxState::Accepting => match ctx
                .kernel
                .sys_accept(self.listener.unwrap(), self.task)
                .expect("accept")
            {
                Some(c) => {
                    self.conn = Some(c);
                    self.state = RxState::Reading;
                    self.step(ctx)
                }
                None => Step::Wait,
            },
            RxState::Reading => {
                // A DMA-blocked read completes on this wake.
                if let Some(bytes) = self.pending_dma.take() {
                    self.verify_buf(ctx, self.bytes_read, bytes);
                    self.bytes_read += bytes;
                    self.reads += 1;
                }
                ctx.user_cpu(TTCP_LOOP_US);
                let r = ctx.kernel.sys_read(
                    self.conn.unwrap(),
                    self.task,
                    self.buf_vaddr,
                    self.read_size,
                    ctx.mem,
                    ctx.now,
                );
                match r {
                    Ok((ReadResult::Done { bytes }, fx)) => {
                        ctx.absorb(fx);
                        self.verify_buf(ctx, self.bytes_read, bytes);
                        self.bytes_read += bytes;
                        self.reads += 1;
                        Step::Continue
                    }
                    Ok((ReadResult::BlockedDma { bytes }, fx)) => {
                        ctx.absorb(fx);
                        self.pending_dma = Some(bytes);
                        Step::Wait
                    }
                    Ok((ReadResult::WouldBlock, fx)) => {
                        ctx.absorb(fx);
                        Step::Wait
                    }
                    Ok((ReadResult::Eof, fx)) => {
                        ctx.absorb(fx);
                        let fx = ctx.kernel.sys_close(self.conn.unwrap(), ctx.mem, ctx.now);
                        ctx.absorb(fx);
                        self.state = RxState::Done;
                        Step::Done
                    }
                    Err(StackError::InvalidState(_)) => Step::Wait,
                    Err(e) => panic!("ttcp read failed: {e}"),
                }
            }
            RxState::Done => Step::Done,
        }
    }
}

/// An in-kernel file server (§5): an NFS-like block service over UDP with
/// share semantics. Requests are 12 bytes — `"RD"`, block (u32), count
/// (u16), padding — and the response echoes the block number followed by
/// `count` bytes of that block's deterministic contents.
pub struct KernelFileServer {
    task: TaskId,
    /// The kernel socket, once created.
    pub sock: Option<SockId>,
    /// UDP port served.
    pub port: u16,
    /// Requests answered.
    pub requests_served: u64,
    /// Maximum bytes served per request.
    pub block_size: usize,
}

/// Deterministic "disk" contents for block `b`, offset `i`.
pub fn file_block_byte(block: u32, i: usize) -> u8 {
    ((block as usize)
        .wrapping_mul(31)
        .wrapping_add(i.wrapping_mul(7))) as u8
}

impl KernelFileServer {
    /// A server that will bind a kernel socket on `port`.
    pub fn new(task: TaskId, port: u16) -> KernelFileServer {
        KernelFileServer {
            task,
            sock: None,
            port,
            requests_served: 0,
            block_size: 8192,
        }
    }
}

impl App for KernelFileServer {
    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn finished(&self) -> bool {
        false // servers run forever
    }

    fn step(&mut self, ctx: &mut SysCtx<'_>) -> Step {
        if self.sock.is_none() {
            let s = ctx.kernel.kernel_socket(Proto::Udp);
            ctx.kernel.sys_bind(s, self.port).expect("bind");
            self.sock = Some(s);
        }
        Step::Wait
    }

    fn on_kernel_ready(&mut self, ctx: &mut SysCtx<'_>, sock: SockId) -> Step {
        // Drain every ready request in arrival order.
        while let Some((chain, from)) = ctx.kernel.kernel_recv(sock) {
            let flat = chain.flatten_kernel().expect("converted to regular mbufs");
            if flat.len() < 8 || &flat[..2] != b"RD" {
                continue;
            }
            let block = u32::from_be_bytes([flat[2], flat[3], flat[4], flat[5]]);
            let count = u16::from_be_bytes([flat[6], flat[7]]) as usize;
            let count = count.min(self.block_size);
            // Build the response as a shared kernel mbuf chain (share
            // semantics: no copy on the way down).
            let mut resp = Vec::with_capacity(4 + count);
            resp.extend_from_slice(&block.to_be_bytes());
            for i in 0..count {
                resp.push(file_block_byte(block, i));
            }
            let resp = Chain::from_bytes(Bytes::from(resp));
            let fx = ctx
                .kernel
                .kernel_sendto(sock, resp, from, ctx.mem, ctx.now)
                .expect("send response");
            ctx.absorb(fx);
            self.requests_served += 1;
        }
        Step::Wait
    }
}

/// A user-space client for the kernel file server: requests `blocks`
/// sequential blocks and verifies their contents.
pub struct FileClient {
    task: TaskId,
    server: SockAddr,
    /// Sequential blocks to request.
    pub blocks: u32,
    /// Bytes requested per block.
    pub count: usize,
    sock: Option<SockId>,
    state: u8, // 0=start, 1=waiting reply, 2=done
    next_block: u32,
    /// Base virtual address of the request/response buffer.
    pub buf_vaddr: u64,
    /// Reply bytes that failed verification.
    pub verify_errors: u64,
    /// Blocks received and checked.
    pub blocks_received: u32,
    pending_dma: Option<usize>,
}

impl FileClient {
    /// A client that requests `blocks` blocks of `count` bytes from `server`.
    pub fn new(task: TaskId, server: SockAddr, blocks: u32, count: usize) -> FileClient {
        FileClient {
            task,
            server,
            blocks,
            count,
            sock: None,
            state: 0,
            next_block: 0,
            buf_vaddr: 0x30_0000,
            verify_errors: 0,
            blocks_received: 0,
            pending_dma: None,
        }
    }

    fn send_request(&mut self, ctx: &mut SysCtx<'_>) {
        use outboard_host::UserMemory;
        let mut req = [0u8; 12];
        req[..2].copy_from_slice(b"RD");
        req[2..6].copy_from_slice(&self.next_block.to_be_bytes());
        req[6..8].copy_from_slice(&(self.count as u16).to_be_bytes());
        ctx.mem
            .write_user(self.task, self.buf_vaddr, &req)
            .expect("client buffer");
        match ctx.kernel.sys_write(
            self.sock.unwrap(),
            self.task,
            self.buf_vaddr,
            12,
            ctx.mem,
            ctx.now,
        ) {
            Ok((_, fx)) => ctx.absorb(fx),
            Err(e) => panic!("file client request: {e}"),
        }
    }

    fn check_reply(&mut self, ctx: &mut SysCtx<'_>, bytes: usize) {
        use outboard_host::UserMemory;
        let mut data = vec![0u8; bytes];
        ctx.mem
            .read_user(self.task, self.buf_vaddr, &mut data)
            .expect("client buffer");
        if bytes < 4 {
            self.verify_errors += 1;
        } else {
            let block = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
            if block != self.next_block {
                self.verify_errors += 1;
            }
            for (i, &b) in data[4..].iter().enumerate() {
                if b != file_block_byte(block, i) {
                    self.verify_errors += 1;
                }
            }
        }
        self.blocks_received += 1;
        self.next_block += 1;
    }
}

impl App for FileClient {
    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn finished(&self) -> bool {
        self.state == 2
    }

    fn step(&mut self, ctx: &mut SysCtx<'_>) -> Step {
        use outboard_stack::ReadResult;
        if self.state == 2 {
            return Step::Done;
        }
        if self.sock.is_none() {
            ctx.mem
                .create_region(self.task, self.buf_vaddr, self.count.max(4096) + 64);
            let s = ctx.kernel.sys_socket(Proto::Udp);
            ctx.kernel.sys_connect_udp(s, self.server).expect("connect");
            self.sock = Some(s);
            self.send_request(ctx);
            self.state = 1;
        }
        // Waiting for (or woken by) a reply.
        if let Some(bytes) = self.pending_dma.take() {
            self.check_reply(ctx, bytes);
            if self.next_block >= self.blocks {
                self.state = 2;
                return Step::Done;
            }
            self.send_request(ctx);
        }
        match ctx.kernel.sys_read(
            self.sock.unwrap(),
            self.task,
            self.buf_vaddr,
            self.count + 64,
            ctx.mem,
            ctx.now,
        ) {
            Ok((ReadResult::Done { bytes }, fx)) => {
                ctx.absorb(fx);
                self.check_reply(ctx, bytes);
                if self.next_block >= self.blocks {
                    self.state = 2;
                    return Step::Done;
                }
                self.send_request(ctx);
                Step::Continue
            }
            Ok((ReadResult::BlockedDma { bytes }, fx)) => {
                ctx.absorb(fx);
                self.pending_dma = Some(bytes);
                Step::Wait
            }
            Ok((ReadResult::WouldBlock, fx)) | Ok((ReadResult::Eof, fx)) => {
                ctx.absorb(fx);
                Step::Wait
            }
            Err(StackError::InvalidState(_)) => Step::Wait,
            Err(e) => panic!("file client read: {e}"),
        }
    }
}
