//! §7.3's analytic model: estimate each stack's efficiency from the
//! per-byte, per-page, and per-packet overheads, for comparison against the
//! simulated measurements (the `analysis` bench binary prints both).

use outboard_host::MachineConfig;

/// One analytic estimate.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisPoint {
    /// Total CPU time per packet, µs.
    pub per_packet_us: f64,
    /// The portion that scales with bytes/pages, µs.
    pub per_byte_us: f64,
    /// Estimated efficiency (Mbit/s of communication at 100 % CPU).
    pub efficiency_mbps: f64,
    /// Share of the budget spent on per-byte work (the paper: 80 % for the
    /// unmodified stack, 43 % for the single-copy stack at 32 KB).
    pub per_byte_share: f64,
}

/// The fixed per-packet protocol overhead the paper measured (~300 µs),
/// reconstructed from the machine's cost table the same way the kernel
/// charges it (with ~0.5 delayed ACKs per segment).
pub fn per_packet_overhead_us(m: &MachineConfig) -> f64 {
    m.cost_syscall_us
        + m.cost_socket_pkt_us
        + m.cost_tcp_output_us
        + m.cost_ip_us
        + m.cost_driver_pkt_us
        + m.cost_interrupt_us
        + 0.5 * (m.cost_interrupt_us + m.cost_ip_us + m.cost_tcp_input_us)
        + m.cost_wakeup_us
}

/// Unmodified stack: copy (no locality) + checksum read + per-packet.
pub fn unmodified_estimate(m: &MachineConfig, packet_bytes: usize) -> AnalysisPoint {
    let bits = packet_bytes as f64 * 8.0;
    let copy_us = bits / m.copy_bw_min_mbps;
    let read_us = bits / m.read_bw_min_mbps;
    let fixed = per_packet_overhead_us(m);
    let per_byte = copy_us + read_us;
    let total = per_byte + fixed;
    AnalysisPoint {
        per_packet_us: total,
        per_byte_us: per_byte,
        efficiency_mbps: bits / total,
        per_byte_share: per_byte / total,
    }
}

/// Single-copy stack: pin + unpin + map of the packet's pages + per-packet.
pub fn single_copy_estimate(m: &MachineConfig, packet_bytes: usize) -> AnalysisPoint {
    let bits = packet_bytes as f64 * 8.0;
    let pages = packet_bytes.div_ceil(m.page_size) as f64;
    let vm_us = (m.pin_base_us + m.pin_per_page_us * pages)
        + (m.unpin_base_us + m.unpin_per_page_us * pages)
        + (m.map_base_us + m.map_per_page_us * pages);
    let fixed = per_packet_overhead_us(m);
    let total = vm_us + fixed;
    AnalysisPoint {
        per_packet_us: total,
        per_byte_us: vm_us,
        efficiency_mbps: bits / total,
        per_byte_share: vm_us / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_732_numbers() {
        let m = MachineConfig::alpha_3000_400();
        // Paper: unmodified ≈ 180 Mbit/s ("somewhat high, but still
        // reasonably close to the measured efficiency").
        let un = unmodified_estimate(&m, 32 * 1024);
        assert!(
            (170.0..195.0).contains(&un.efficiency_mbps),
            "unmodified {}",
            un.efficiency_mbps
        );
        // Paper: single-copy ≈ 490 Mbit/s for 32 KB packets.
        let sc = single_copy_estimate(&m, 32 * 1024);
        assert!(
            (460.0..510.0).contains(&sc.efficiency_mbps),
            "single-copy {}",
            sc.efficiency_mbps
        );
        // Paper: per-byte share 80 % → 43 %.
        assert!(
            (0.75..0.85).contains(&un.per_byte_share),
            "{}",
            un.per_byte_share
        );
        assert!(
            (0.38..0.48).contains(&sc.per_byte_share),
            "{}",
            sc.per_byte_share
        );
        // "Almost three times more efficient."
        let ratio = sc.efficiency_mbps / un.efficiency_mbps;
        assert!((2.4..3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_packet_overhead_near_300us() {
        let m = MachineConfig::alpha_3000_400();
        let p = per_packet_overhead_us(&m);
        assert!((290.0..310.0).contains(&p), "{p}");
    }

    #[test]
    fn analytic_crossover_below_the_measured_one() {
        // On a per-*packet* basis the single-copy path wins from ~4 KB up.
        // The measured crossover (Figure 5c) sits higher, at 8-16 KB,
        // because the unmodified stack *coalesces* small writes into
        // MSS-sized segments (amortizing its per-packet overhead over many
        // writes) while the single-copy stack sends one packet per write —
        // an effect only the full simulation captures.
        let m = MachineConfig::alpha_3000_400();
        let at2 = (
            unmodified_estimate(&m, 2 * 1024).efficiency_mbps,
            single_copy_estimate(&m, 2 * 1024).efficiency_mbps,
        );
        let at8 = (
            unmodified_estimate(&m, 8 * 1024).efficiency_mbps,
            single_copy_estimate(&m, 8 * 1024).efficiency_mbps,
        );
        assert!(at2.1 < at2.0, "2 KB packets: traditional path cheaper");
        assert!(at8.1 > at8.0, "8 KB packets: single-copy cheaper");
    }

    #[test]
    fn lx_is_proportionally_slower() {
        let m4 = MachineConfig::alpha_3000_400();
        let mlx = MachineConfig::alpha_3000_300lx();
        let r = unmodified_estimate(&mlx, 32 * 1024).efficiency_mbps
            / unmodified_estimate(&m4, 32 * 1024).efficiency_mbps;
        assert!((0.45..0.55).contains(&r), "half-speed machine: {r}");
    }
}
