//! The simulated world: hosts, links, apps, and the event loop.
//!
//! Timing discipline: kernel entry points mutate protocol state at event
//! time and return effects. CPU effects serialize on the host's single CPU
//! (advancing a cursor used to schedule the application's next step), so
//! syscall rates and interrupt load throttle exactly as on a real machine.
//! Device events carry their own completion times from the engine models.

use bytes::Bytes;
use outboard_cab::{CabEvent, PacketId};
use outboard_host::{Charge, Cpu, HostMem, MachineConfig, TaskId};
use outboard_netsim::{Capture, Framing, Link};
use outboard_sim::chaos::{ChaosAction, ChaosSchedule};
use outboard_sim::span::{self, CriticalPath, Span, SpanSink, Stage};
use outboard_sim::timeline::{SeriesKind, Timeline};
use outboard_sim::{BufPool, Dur, EngineKind, EventEngine, MetricsRegistry, Time};
use outboard_stack::{Effect, IfaceId, Kernel, SockId, StackConfig, TimerKind};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// What a scheduled event does when it fires. (Field meanings follow the
/// kernel entry points they feed; see [`outboard_stack::Kernel`].)
#[allow(missing_docs)]
pub enum Event {
    /// Run (or resume) an application.
    AppStep { host: usize, task: TaskId },
    /// An in-kernel application's queue became ready.
    KernelReady { host: usize, sock: SockId },
    /// SDMA completion loops back into the kernel.
    SdmaDone {
        host: usize,
        iface: IfaceId,
        token: u64,
        interrupt: bool,
        data: Option<Bytes>,
    },
    /// CAB receive interrupt.
    RxInterrupt {
        host: usize,
        iface: IfaceId,
        packet: Option<PacketId>,
        autodma: Bytes,
        hw_csum: u16,
        frame_len: usize,
    },
    /// A frame leaves a host on a link (fabric ingress).
    FabricTx {
        host: usize,
        iface: IfaceId,
        dst_addr: u32,
        frame: Bytes,
    },
    /// A frame reaches a host's interface.
    FrameArrive {
        host: usize,
        iface: IfaceId,
        frame: Bytes,
    },
    /// TCP timer.
    Timer { host: usize, kind: TimerKind },
    /// A scheduled chaos action fires (`heal` closes a durable window).
    Chaos { idx: usize, heal: bool },
}

/// Application step outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Schedule the next step as soon as the CPU work completes.
    Continue,
    /// Block until a kernel `Wake`.
    Wait,
    /// The application finished.
    Done,
}

/// The syscall context handed to applications: one host's kernel + memory.
pub struct SysCtx<'a> {
    /// Current virtual time.
    pub now: Time,
    /// The calling process.
    pub task: TaskId,
    /// This host's kernel.
    pub kernel: &'a mut Kernel,
    /// This host's user memory.
    pub mem: &'a mut HostMem,
    pub(crate) effects: Vec<Effect>,
    pub(crate) user_us: f64,
}

impl SysCtx<'_> {
    /// Account app-level (user mode) CPU, e.g. the ttcp loop body.
    pub fn user_cpu(&mut self, us: f64) {
        self.user_us += us;
    }

    /// Collect effects returned by a kernel call for the harness to apply.
    pub fn absorb(&mut self, fx: Vec<Effect>) {
        self.effects.extend(fx);
    }
}

/// A simulated process (user application or in-kernel application driver).
pub trait App: std::any::Any {
    /// The process identity this app runs as.
    fn task(&self) -> TaskId;
    /// Downcasting support so harnesses can read app-specific counters.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Perform one scheduling quantum (at most one blocking syscall).
    fn step(&mut self, ctx: &mut SysCtx<'_>) -> Step;
    /// An owned in-kernel socket's queue became ready.
    fn on_kernel_ready(&mut self, _ctx: &mut SysCtx<'_>, _sock: SockId) -> Step {
        Step::Wait
    }
    /// True when the app has completed its work (for run-to-completion).
    fn finished(&self) -> bool;
}

/// One simulated host.
pub struct Host {
    /// The protocol stack.
    pub kernel: Kernel,
    /// User address spaces (real bytes).
    pub mem: HostMem,
    /// The single CPU and its accounting.
    pub cpu: Cpu,
    /// Applications (slots are `None` only while an app is being run).
    pub apps: Vec<Option<Box<dyn App>>>,
    /// The process whose syscalls count as `ttcp` in the accounting.
    pub measured_task: Option<TaskId>,
    finished_apps: usize,
}

impl Host {
    fn app_index(&self, task: TaskId) -> Option<usize> {
        self.apps
            .iter()
            .position(|a| a.as_ref().map(|a| a.task()) == Some(task))
    }
}

/// Cumulative chaos-injection counters, published as `world.chaos.*` when a
/// schedule is installed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosStats {
    /// Fault actions applied (window openings and one-shots).
    pub events_applied: u64,
    /// Durable windows closed (links back up, squeezes released, ...).
    pub heals_applied: u64,
    /// `link_down` windows opened.
    pub link_downs: u64,
    /// Full partitions opened.
    pub partitions: u64,
    /// Delay spikes opened.
    pub delay_spikes: u64,
    /// CAB engine wedges injected.
    pub cab_wedges: u64,
    /// CAB board crashes injected.
    pub board_crashes: u64,
    /// Netmem squeezes opened.
    pub netmem_squeezes: u64,
    /// Host pauses opened.
    pub host_pauses: u64,
    /// Stealth (checksum-preserving) corruptions armed.
    pub stealth_corrupts: u64,
    /// Events re-queued because their host was paused.
    pub deferred_events: u64,
}

/// Installed windowed sampler plus its boundary cursor. Boxed behind an
/// `Option` on [`World`]: the disabled path costs one `is_some` branch per
/// dispatched event and nothing else (zero-overhead-off, like spans).
struct TimelineState {
    tl: Timeline,
    /// Next window boundary to sample at. Sampling happens lazily when the
    /// event clock reaches or passes it, so the sample at boundary `b`
    /// reflects exactly the events with time `< b` (events dispatch in
    /// nondecreasing time order).
    next_boundary: Time,
}

/// Installed chaos schedule plus its runtime bookkeeping.
struct ChaosState {
    schedule: ChaosSchedule,
    stats: ChaosStats,
    /// Absolute time by which every durable window has closed.
    quiesce: Time,
    /// Active down-window count per link (overlapping outages stack).
    down_count: BTreeMap<(usize, IfaceId), u32>,
    /// Active squeeze-window count per host.
    squeeze_depth: BTreeMap<usize, u32>,
    /// CPU-side events of these hosts are deferred until the given time.
    paused_until: BTreeMap<usize, Time>,
}

/// The whole simulated system.
pub struct World {
    /// All simulated hosts.
    pub hosts: Vec<Host>,
    queue: EventEngine<Event>,
    /// Shared frame/cluster buffer pool (every host kernel, CAB, and link
    /// recycles storage through it; see `sim::pool`).
    pub pool: Arc<BufPool>,
    /// Directed links keyed by the sending (host, iface).
    pub links: BTreeMap<(usize, IfaceId), Link>,
    /// HIPPI fabric address → (host, iface).
    hippi_map: BTreeMap<u32, (usize, IfaceId)>,
    /// Ethernet segment: every Eth iface hears every EthTx (point-to-point
    /// in practice; the MAC filter is the receiver's problem).
    eth_peers: BTreeMap<(usize, IfaceId), (usize, IfaceId)>,
    /// In-kernel socket → owning (host, app index).
    kernel_socks: BTreeMap<(usize, SockId), usize>,
    next_hippi_addr: u32,
    /// Frames that entered any link (diagnostics).
    pub frames_on_fabric: u64,
    /// Bytes that entered any link (diagnostics; pairs with the per-link
    /// `bytes_in` counters for the conservation invariant).
    pub bytes_on_fabric: u64,
    /// Optional tcpdump-style capture of every frame entering a link.
    pub capture: Option<Capture>,
    /// Events dispatched by the engine (wall-clock work proxy for the
    /// perf harness's events/sec figure).
    pub events_dispatched: u64,
    /// Wire-transit spans (one sink for the whole fabric; disabled by
    /// default — see [`World::enable_span_tracing`]).
    pub wire_spans: SpanSink,
    /// Installed chaos schedule (None for fault-free / knob-only runs).
    chaos: Option<ChaosState>,
    /// Windowed time-series sampler (None unless enabled; see
    /// [`World::enable_timeline`]).
    timeline: Option<Box<TimelineState>>,
}

impl World {
    /// An empty world (add hosts, wire links, add apps, run) on the default
    /// (timing-wheel) event engine.
    pub fn new() -> World {
        World::new_with_engine(EngineKind::default())
    }

    /// An empty world scheduling through the given event engine. The heap
    /// engine is kept as a reference for differential testing; both produce
    /// byte-identical runs.
    pub fn new_with_engine(kind: EngineKind) -> World {
        World {
            hosts: Vec::new(),
            queue: EventEngine::new(kind),
            pool: Arc::new(BufPool::new()),
            links: BTreeMap::new(),
            hippi_map: BTreeMap::new(),
            eth_peers: BTreeMap::new(),
            kernel_socks: BTreeMap::new(),
            next_hippi_addr: 1,
            frames_on_fabric: 0,
            bytes_on_fabric: 0,
            capture: None,
            events_dispatched: 0,
            wire_spans: SpanSink::disabled(),
            chaos: None,
            timeline: None,
        }
    }

    /// Install a chaos schedule: every event (and, for durable actions, its
    /// heal) is pushed onto the sim-time event queue relative to the current
    /// virtual time. Injection is therefore part of the deterministic event
    /// stream — the same seed replays byte-identically. Call once, before
    /// running.
    pub fn install_chaos(&mut self, schedule: &ChaosSchedule) {
        let base = self.queue.now();
        for (idx, ev) in schedule.events.iter().enumerate() {
            self.queue
                .push(base + ev.at, Event::Chaos { idx, heal: false });
            if let Some(d) = ev.action.duration() {
                self.queue
                    .push(base + ev.at + d, Event::Chaos { idx, heal: true });
            }
        }
        self.chaos = Some(ChaosState {
            quiesce: base + schedule.quiesce_at(),
            schedule: schedule.clone(),
            stats: ChaosStats::default(),
            down_count: BTreeMap::new(),
            squeeze_depth: BTreeMap::new(),
            paused_until: BTreeMap::new(),
        });
    }

    /// True when a chaos schedule has been installed.
    pub fn chaos_installed(&self) -> bool {
        self.chaos.is_some()
    }

    /// Absolute time by which every durable chaos window has closed (the
    /// liveness oracle only counts stalls after this point). None without
    /// an installed schedule.
    pub fn chaos_quiesce_at(&self) -> Option<Time> {
        self.chaos.as_ref().map(|c| c.quiesce)
    }

    /// Snapshot of the chaos-injection counters.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(|c| c.stats)
    }

    /// The host whose pause state gates this event, if any. Fabric-side
    /// events (`FabricTx`: the frame already left the adaptor) and chaos
    /// injections themselves run even while the host is paused.
    fn cpu_host_of(ev: &Event) -> Option<usize> {
        match ev {
            Event::AppStep { host, .. }
            | Event::KernelReady { host, .. }
            | Event::SdmaDone { host, .. }
            | Event::RxInterrupt { host, .. }
            | Event::FrameArrive { host, .. }
            | Event::Timer { host, .. } => Some(*host),
            Event::FabricTx { .. } | Event::Chaos { .. } => None,
        }
    }

    /// Apply one chaos action (or heal its window).
    fn apply_chaos(&mut self, idx: usize, heal: bool, now: Time) {
        let Some(action) = self
            .chaos
            .as_ref()
            .and_then(|c| c.schedule.events.get(idx))
            .map(|e| e.action)
        else {
            return;
        };
        if let Some(ch) = self.chaos.as_mut() {
            if heal {
                ch.stats.heals_applied += 1;
            } else {
                ch.stats.events_applied += 1;
                match action {
                    ChaosAction::LinkDown { .. } => ch.stats.link_downs += 1,
                    ChaosAction::Partition { .. } => ch.stats.partitions += 1,
                    ChaosAction::DelaySpike { .. } => ch.stats.delay_spikes += 1,
                    ChaosAction::CabWedge { .. } => ch.stats.cab_wedges += 1,
                    ChaosAction::BoardCrash { .. } => ch.stats.board_crashes += 1,
                    ChaosAction::NetmemSqueeze { .. } => ch.stats.netmem_squeezes += 1,
                    ChaosAction::HostPause { .. } => ch.stats.host_pauses += 1,
                    ChaosAction::StealthCorrupt { .. } => ch.stats.stealth_corrupts += 1,
                }
            }
        }
        match action {
            ChaosAction::LinkDown { host, .. } => self.chaos_set_links(Some(host), heal),
            ChaosAction::Partition { .. } => self.chaos_set_links(None, heal),
            ChaosAction::DelaySpike { host, extra, .. } => {
                for (key, link) in self.links.iter_mut() {
                    if key.0 == host {
                        link.extra_latency = if heal {
                            link.extra_latency.saturating_sub(extra)
                        } else {
                            link.extra_latency + extra
                        };
                    }
                }
            }
            ChaosAction::CabWedge { host, mdma } => {
                if heal {
                    return;
                }
                if let Some(h) = self.hosts.get_mut(host) {
                    for iface in h.kernel.ifaces.iter_mut() {
                        if let Some(ci) = iface.cab() {
                            if mdma {
                                ci.cab.faults.force_mdma_wedge_next();
                            } else {
                                ci.cab.faults.force_sdma_wedge_next();
                            }
                            break;
                        }
                    }
                }
            }
            ChaosAction::BoardCrash { host } => {
                if heal {
                    return;
                }
                let target = self.hosts.get_mut(host).and_then(|h| {
                    h.kernel.ifaces.iter_mut().find_map(|i| {
                        let id = i.id;
                        i.cab().map(|_| id)
                    })
                });
                if let Some(iface_id) = target {
                    let fx = {
                        let h = &mut self.hosts[host];
                        h.kernel.cab_board_crash(iface_id, &mut h.mem, now)
                    };
                    self.apply_effects(host, fx, now);
                }
            }
            ChaosAction::NetmemSqueeze { host, permille, .. } => {
                let depth = match self.chaos.as_mut() {
                    Some(ch) => {
                        let d = ch.squeeze_depth.entry(host).or_insert(0);
                        if heal {
                            *d = d.saturating_sub(1);
                        } else {
                            *d += 1;
                        }
                        *d
                    }
                    None => 0,
                };
                if let Some(h) = self.hosts.get_mut(host) {
                    for iface in h.kernel.ifaces.iter_mut() {
                        if let Some(ci) = iface.cab() {
                            if heal {
                                if depth == 0 {
                                    ci.cab.squeeze_netmem(0);
                                }
                            } else {
                                let total = ci.cab.netmem().pages_total();
                                let reserved = (total as u64 * u64::from(permille) / 1000) as usize;
                                ci.cab.squeeze_netmem(reserved);
                            }
                        }
                    }
                }
            }
            ChaosAction::HostPause { host, dur } => {
                if heal {
                    return; // the pause expires by time comparison below
                }
                if let Some(ch) = self.chaos.as_mut() {
                    let until = now + dur;
                    let e = ch.paused_until.entry(host).or_insert(until);
                    if *e < until {
                        *e = until;
                    }
                }
            }
            ChaosAction::StealthCorrupt { host } => {
                if heal {
                    return;
                }
                for (key, link) in self.links.iter_mut() {
                    if key.0 == host {
                        link.faults.force_stealth_corrupt_next();
                        break;
                    }
                }
            }
        }
    }

    /// Open or close a down window on one host's outbound links (or, with
    /// `host == None`, on every link — a full partition). Overlapping
    /// windows stack: a link comes back up when its last window closes.
    fn chaos_set_links(&mut self, host: Option<usize>, heal: bool) {
        let Some(ch) = self.chaos.as_mut() else {
            return;
        };
        for (key, link) in self.links.iter_mut() {
            if host.is_none_or(|h| key.0 == h) {
                let c = ch.down_count.entry(*key).or_insert(0);
                if heal {
                    *c = c.saturating_sub(1);
                    if *c == 0 {
                        link.up = true;
                    }
                } else {
                    *c += 1;
                    link.up = false;
                }
            }
        }
    }

    /// Turn on per-packet causal tracing: every host kernel plus the
    /// fabric gets a bounded span ring of `capacity` entries. Call after
    /// hosts are added; hosts added later stay untraced.
    pub fn enable_span_tracing(&mut self, capacity: usize) {
        self.wire_spans.enable(capacity);
        for host in &mut self.hosts {
            host.kernel.spans.enable(capacity);
        }
    }

    /// True when span tracing is enabled anywhere in the world.
    pub fn span_tracing_on(&self) -> bool {
        self.wire_spans.on() || self.hosts.iter().any(|h| h.kernel.spans.on())
    }

    /// Force-close every span still open (run teardown): in-flight work at
    /// the end of a run is recorded as dropped, keeping the conservation
    /// identity `opened == closed + dropped` exact.
    pub fn finish_spans(&mut self, now: Time) {
        self.wire_spans.drop_all_open(now);
        for host in &mut self.hosts {
            host.kernel.spans.drop_all_open(now);
        }
    }

    /// Turn on windowed time-series telemetry: a fixed set of per-host and
    /// world-wide counters/gauges is sampled every `window` of virtual
    /// time into bounded rings of `capacity` windows. Call after hosts are
    /// added; hosts added later are not sampled. Sampling is lazy (driven
    /// by event dispatch crossing window boundaries), so disabled runs pay
    /// only one branch per event and stay byte-identical.
    pub fn enable_timeline(&mut self, window: Dur, capacity: usize) {
        let mut tl = Timeline::new(window, capacity);
        let world_pid = self.hosts.len() as u32;
        for (i, host) in self.hosts.iter().enumerate() {
            let pid = i as u32;
            tl.declare(
                &format!("host{i}.tx_bytes"),
                SeriesKind::Counter,
                "bytes",
                pid,
                host.kernel.stats.tx_bytes as i64,
            );
            tl.declare(
                &format!("host{i}.netmem_pages"),
                SeriesKind::Gauge,
                "pages",
                pid,
                Self::host_netmem_pages(host),
            );
            tl.declare(
                &format!("host{i}.retransmits"),
                SeriesKind::Counter,
                "segs",
                pid,
                host.kernel.stats.tcp_retransmit_segs as i64,
            );
            tl.declare(
                &format!("host{i}.engine_busy_ns"),
                SeriesKind::Counter,
                "ns",
                pid,
                Self::host_engine_busy_ns(host),
            );
        }
        let ps = self.pool.stats();
        tl.declare(
            "world.pool_in_use",
            SeriesKind::Gauge,
            "bufs",
            world_pid,
            ps.acquires as i64 - ps.releases as i64,
        );
        tl.declare(
            "world.faults",
            SeriesKind::Counter,
            "events",
            world_pid,
            self.fault_events_total(),
        );
        self.timeline = Some(Box::new(TimelineState {
            next_boundary: Time::ZERO + window,
            tl,
        }));
    }

    /// True when the windowed sampler is installed.
    pub fn timeline_on(&self) -> bool {
        self.timeline.is_some()
    }

    /// The recorded timeline, when sampling is enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref().map(|st| &st.tl)
    }

    /// Network-memory pages currently in use across a host's CAB ifaces.
    fn host_netmem_pages(host: &Host) -> i64 {
        let mut pages = 0i64;
        for iface in &host.kernel.ifaces {
            if let Some(ci) = iface.cab_ref() {
                let nm = ci.cab.netmem();
                pages += nm.pages_total() as i64 - nm.pages_free() as i64;
            }
        }
        pages
    }

    /// Cumulative DMA-engine busy nanoseconds across a host's CAB ifaces.
    fn host_engine_busy_ns(host: &Host) -> i64 {
        let mut ns = 0i64;
        for iface in &host.kernel.ifaces {
            if let Some(ci) = iface.cab_ref() {
                ns += ci.cab.engines_busy().as_nanos() as i64;
            }
        }
        ns
    }

    /// Total injected/suffered fault events across every link (the
    /// timeline's `world.faults` counter).
    fn fault_events_total(&self) -> i64 {
        let mut total = 0u64;
        for link in self.links.values() {
            let f = &link.faults.stats;
            total += f.dropped + f.corrupted + f.reordered + f.duplicated + f.stealth_corrupted;
            total += link.down_drops;
        }
        total as i64
    }

    /// Absolute values of every declared series, in declaration order.
    fn timeline_values(&self) -> Vec<i64> {
        let mut vals = Vec::with_capacity(self.hosts.len() * 4 + 2);
        for host in &self.hosts {
            vals.push(host.kernel.stats.tx_bytes as i64);
            vals.push(Self::host_netmem_pages(host));
            vals.push(host.kernel.stats.tcp_retransmit_segs as i64);
            vals.push(Self::host_engine_busy_ns(host));
        }
        let ps = self.pool.stats();
        vals.push(ps.acquires as i64 - ps.releases as i64);
        vals.push(self.fault_events_total());
        vals
    }

    /// Record every window boundary at or before `now`. Called from the
    /// dispatch loop when the clock crosses `next_boundary`; because events
    /// dispatch in nondecreasing time order, the sample at boundary `b`
    /// covers exactly the events with time `< b` on either engine.
    fn timeline_catch_up(&mut self, now: Time) {
        let Some(mut st) = self.timeline.take() else {
            return;
        };
        while now >= st.next_boundary {
            let vals = self.timeline_values();
            st.tl.record(&vals);
            st.next_boundary += st.tl.window();
        }
        self.timeline = Some(st);
    }

    /// Close out the timeline at run teardown: record any boundaries the
    /// event stream never reached, then one final partial window up to
    /// `now`, so the conservation identity (window-delta sums == final
    /// counter values) holds exactly over the whole run.
    pub fn finish_timeline(&mut self, now: Time) {
        let Some(mut st) = self.timeline.take() else {
            return;
        };
        while st.next_boundary <= now {
            let vals = self.timeline_values();
            st.tl.record(&vals);
            st.next_boundary += st.tl.window();
        }
        let window = st.tl.window();
        if now.nanos() + window.as_nanos() > st.next_boundary.nanos() {
            let vals = self.timeline_values();
            st.tl.record_partial(now.nanos(), &vals);
        }
        self.timeline = Some(st);
    }

    /// Every recorded span, merged across hosts and the fabric in stable
    /// (start-time, track, emission) order.
    pub fn merged_spans(&self) -> Vec<Span> {
        let mut all: Vec<(u64, u32, u64, Span)> = Vec::new();
        for (i, host) in self.hosts.iter().enumerate() {
            for s in host.kernel.spans.spans() {
                all.push((s.start.nanos(), i as u32, s.seq, *s));
            }
        }
        let fabric_pid = self.hosts.len() as u32;
        for s in self.wire_spans.spans() {
            all.push((s.start.nanos(), fabric_pid, s.seq, *s));
        }
        all.sort_by_key(|(start, pid, seq, _)| (*start, *pid, *seq));
        all.into_iter().map(|(_, _, _, s)| s).collect()
    }

    /// Export every recorded span as Chrome trace-event JSON (one process
    /// per host plus one for the fabric). `flow_limit` bounds how many
    /// flow groups get arrows. When the windowed sampler is enabled its
    /// counter tracks (`ph:"C"` events) are merged into the same file,
    /// sharing the span pid space, so spans and system curves line up on
    /// one Perfetto timeline.
    pub fn export_trace(&self, flow_limit: Option<usize>) -> String {
        let mut tracks: Vec<(u32, String, &SpanSink)> = Vec::new();
        for (i, host) in self.hosts.iter().enumerate() {
            tracks.push((i as u32, format!("host{i}"), &host.kernel.spans));
        }
        tracks.push((
            self.hosts.len() as u32,
            "fabric".to_string(),
            &self.wire_spans,
        ));
        let counters = self
            .timeline
            .as_ref()
            .map(|st| st.tl.chrome_counter_events())
            .unwrap_or_default();
        span::export_chrome_trace_with(&tracks, flow_limit, &counters)
    }

    /// Critical-path attribution for the busiest flow group (most spans;
    /// ties break toward the smallest group id). None when no group has
    /// at least two spans.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let spans = self.merged_spans();
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for s in &spans {
            if s.flow.group() != 0 {
                *counts.entry(s.flow.group()).or_insert(0) += 1;
            }
        }
        let group = counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(g, _)| *g)?;
        span::critical_path(spans.iter(), group)
    }

    /// Current virtual time (the last dispatched event's timestamp).
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Snapshot every counter in the world into one [`MetricsRegistry`].
    ///
    /// `elapsed` is the virtual interval the busy-fraction and share
    /// metrics are computed over (normally the measured transfer's
    /// duration). Hosts are published under `host{i}.*` (kernel, VM, and
    /// per-interface CAB stats, plus `host{i}.cpu.*` for the CPU
    /// accounting), links under `link.h{host}.if{iface}.*` in sorted key
    /// order, and fabric-wide totals under `world.*` — including
    /// `world.faults.*`, the per-link fault-injection counters summed over
    /// every link. Iteration orders are fixed, so two identical runs
    /// snapshot byte-identical registries.
    pub fn metrics(&self, elapsed: Dur) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new(elapsed);
        for (i, host) in self.hosts.iter().enumerate() {
            let name = format!("host{i}");
            host.kernel.publish_metrics(&mut reg.scope(&name));
            host.cpu
                .publish_metrics(&mut reg.scope(&format!("{name}.cpu")));
        }
        let mut faults = outboard_netsim::FaultStats::default();
        let mut down_drops = 0u64;
        // BTreeMap iterates in sorted key order, so the registry layout is
        // stable without an explicit sort.
        for (key, link) in &self.links {
            let mut s = reg.scope(&format!("link.h{}.if{}", key.0, key.1 .0));
            link.publish_metrics(&mut s);
            let f = &link.faults.stats;
            faults.offered += f.offered;
            faults.dropped += f.dropped;
            faults.corrupted += f.corrupted;
            faults.reordered += f.reordered;
            faults.duplicated += f.duplicated;
            faults.stealth_corrupted += f.stealth_corrupted;
            down_drops += link.down_drops;
        }
        let mut w = reg.scope("world");
        w.counter("events_dispatched", self.events_dispatched);
        w.counter("frames_on_fabric", self.frames_on_fabric);
        w.counter("bytes_on_fabric", self.bytes_on_fabric);
        w.counter("faults.offered", faults.offered);
        w.counter("faults.dropped", faults.dropped);
        w.counter("faults.corrupted", faults.corrupted);
        w.counter("faults.reordered", faults.reordered);
        w.counter("faults.duplicated", faults.duplicated);
        w.counter("faults.stealth_corrupted", faults.stealth_corrupted);
        // Chaos counters publish only when a schedule is installed, so
        // chaos-free runs keep byte-identical registries (the same gate the
        // span stats use).
        if let Some(ch) = &self.chaos {
            let st = &ch.stats;
            let mut c = w.sub("chaos");
            c.counter("events_scheduled", ch.schedule.events.len() as u64);
            c.counter("events_applied", st.events_applied);
            c.counter("heals_applied", st.heals_applied);
            c.counter("link_downs", st.link_downs);
            c.counter("partitions", st.partitions);
            c.counter("delay_spikes", st.delay_spikes);
            c.counter("cab_wedges", st.cab_wedges);
            c.counter("board_crashes", st.board_crashes);
            c.counter("netmem_squeezes", st.netmem_squeezes);
            c.counter("host_pauses", st.host_pauses);
            c.counter("stealth_corrupts", st.stealth_corrupts);
            c.counter("deferred_events", st.deferred_events);
            c.counter("down_drops", down_drops);
        }
        // Mechanism-trace eviction is always surfaced (satellite of the
        // bounded-ring fix): undercounting must be visible from artifacts,
        // not just stderr.
        let trace_evicted: u64 = self.hosts.iter().map(|h| h.kernel.trace.dropped()).sum();
        w.counter("trace.evicted", trace_evicted);
        // Pool counters publish only once the pool has been used, so worlds
        // that never touch it (unit fixtures) keep byte-identical registries
        // — the same gate the chaos and span stats use.
        let ps = self.pool.stats();
        if ps.acquires > 0 {
            let mut p = w.sub("pool");
            p.counter("acquires", ps.acquires);
            p.counter("releases", ps.releases);
            p.counter("hits", ps.hits);
            p.counter("misses", ps.misses);
            p.counter("discards", ps.discards);
            p.counter("high_water", ps.high_water);
            p.counter("ticket_errors", ps.ticket_errors);
        }
        // Timeline counters publish only while the windowed sampler is
        // installed, so unsampled runs keep byte-identical registries —
        // the same gate the chaos, pool, and span stats use.
        if let Some(st) = &self.timeline {
            let mut t = w.sub("timeline");
            t.counter("windows", st.tl.windows());
            t.counter("evicted", st.tl.evicted());
            t.counter("series", st.tl.series_len() as u64);
            t.counter("window_ns", st.tl.window().as_nanos());
        }
        // Span stats publish only while tracing is on, so untraced runs
        // keep byte-identical registries (parallel-sweep gate).
        if self.span_tracing_on() {
            let mut agg = SpanSink::disabled();
            for host in &self.hosts {
                agg.absorb_stats(&host.kernel.spans);
            }
            agg.absorb_stats(&self.wire_spans);
            let opened: u64 = self
                .hosts
                .iter()
                .map(|h| h.kernel.spans.opened())
                .sum::<u64>()
                + self.wire_spans.opened();
            let closed: u64 = self
                .hosts
                .iter()
                .map(|h| h.kernel.spans.closed())
                .sum::<u64>()
                + self.wire_spans.closed();
            let dropped: u64 = self
                .hosts
                .iter()
                .map(|h| h.kernel.spans.dropped())
                .sum::<u64>()
                + self.wire_spans.dropped();
            let evicted: u64 = self
                .hosts
                .iter()
                .map(|h| h.kernel.spans.evicted())
                .sum::<u64>()
                + self.wire_spans.evicted();
            let mut sp = w.sub("spans");
            sp.counter("opened", opened);
            sp.counter("closed", closed);
            sp.counter("dropped", dropped);
            sp.counter("evicted", evicted);
            for stage in Stage::ALL {
                let hist = agg.stage_hist(stage);
                if hist.count == 0 {
                    continue;
                }
                let mut ss = sp.sub(stage.name());
                ss.hist("ns", hist);
                ss.counter("p50_ns", hist.quantile(0.5));
                ss.counter("p99_ns", hist.quantile(0.99));
                ss.counter("max_ns", hist.max);
                ss.counter("bytes", agg.stage_bytes(stage));
            }
        }
        reg
    }

    /// The event engine this world schedules through.
    pub fn engine_kind(&self) -> EngineKind {
        self.queue.kind()
    }

    /// Add a host with the given machine and stack configuration.
    pub fn add_host(&mut self, name: &str, machine: MachineConfig, cfg: StackConfig) -> usize {
        let mut kernel = Kernel::new(name, machine.clone(), cfg);
        kernel.set_pool(Arc::clone(&self.pool));
        self.hosts.push(Host {
            kernel,
            mem: HostMem::new(),
            cpu: Cpu::new(machine),
            apps: Vec::new(),
            measured_task: None,
            finished_apps: 0,
        });
        self.hosts.len() - 1
    }

    /// Wire two hosts back-to-back through a HIPPI fabric (one CAB each).
    /// Returns the interface ids.
    pub fn connect_cab(
        &mut self,
        a: usize,
        ip_a: Ipv4Addr,
        b: usize,
        ip_b: Ipv4Addr,
        latency: Dur,
        seed: u64,
    ) -> (IfaceId, IfaceId) {
        let addr_a = self.next_hippi_addr;
        let addr_b = self.next_hippi_addr + 1;
        self.next_hippi_addr += 2;
        let mtu = 32 * 1024;

        let mut cab_a = outboard_cab::Cab::new(addr_a, self.hosts[a].kernel.cab_config());
        cab_a.set_pool(Arc::clone(&self.pool));
        let if_a = self.hosts[a].kernel.add_cab_iface(ip_a, cab_a, mtu);
        let mut cab_b = outboard_cab::Cab::new(addr_b, self.hosts[b].kernel.cab_config());
        cab_b.set_pool(Arc::clone(&self.pool));
        let if_b = self.hosts[b].kernel.add_cab_iface(ip_b, cab_b, mtu);

        self.hosts[a].kernel.add_route(ip_b, 32, if_a);
        self.hosts[b].kernel.add_route(ip_a, 32, if_b);
        self.hosts[a].kernel.add_arp_hippi(if_a, ip_b, addr_b);
        self.hosts[b].kernel.add_arp_hippi(if_b, ip_a, addr_a);

        self.hippi_map.insert(addr_a, (a, if_a));
        self.hippi_map.insert(addr_b, (b, if_b));
        let mut link_a = Link::hippi(latency, seed.wrapping_mul(2) + 1);
        link_a.set_pool(Arc::clone(&self.pool));
        let mut link_b = Link::hippi(latency, seed.wrapping_mul(2) + 2);
        link_b.set_pool(Arc::clone(&self.pool));
        self.links.insert((a, if_a), link_a);
        self.links.insert((b, if_b), link_b);
        (if_a, if_b)
    }

    /// Wire two hosts with a conventional Ethernet.
    pub fn connect_eth(
        &mut self,
        a: usize,
        ip_a: Ipv4Addr,
        b: usize,
        ip_b: Ipv4Addr,
        bandwidth_bps: f64,
        seed: u64,
    ) -> (IfaceId, IfaceId) {
        use outboard_wire::ether::MacAddr;
        let mac_a = MacAddr::local((a * 2 + 1) as u8);
        let mac_b = MacAddr::local((b * 2 + 2) as u8);
        let if_a = self.hosts[a].kernel.add_eth_iface(ip_a, mac_a, 1500);
        let if_b = self.hosts[b].kernel.add_eth_iface(ip_b, mac_b, 1500);
        self.hosts[a].kernel.add_route(ip_b, 32, if_a);
        self.hosts[b].kernel.add_route(ip_a, 32, if_b);
        self.hosts[a].kernel.add_arp_ether(if_a, ip_b, mac_b);
        self.hosts[b].kernel.add_arp_ether(if_b, ip_a, mac_a);
        self.eth_peers.insert((a, if_a), (b, if_b));
        self.eth_peers.insert((b, if_b), (a, if_a));
        let mut link_a =
            Link::serializing(bandwidth_bps, Dur::micros(50), seed.wrapping_mul(3) + 1);
        link_a.set_pool(Arc::clone(&self.pool));
        let mut link_b =
            Link::serializing(bandwidth_bps, Dur::micros(50), seed.wrapping_mul(3) + 2);
        link_b.set_pool(Arc::clone(&self.pool));
        self.links.insert((a, if_a), link_a);
        self.links.insert((b, if_b), link_b);
        (if_a, if_b)
    }

    /// Register an application on a host; it gets an initial step at t=now.
    pub fn add_app(&mut self, host: usize, app: Box<dyn App>, measured: bool) {
        let task = app.task();
        if measured {
            self.hosts[host].measured_task = Some(task);
        }
        self.hosts[host].apps.push(Some(app));
        self.queue
            .push(self.queue.now(), Event::AppStep { host, task });
    }

    /// Route in-kernel socket readiness to an app.
    pub fn register_kernel_sock(&mut self, host: usize, sock: SockId, app_task: TaskId) {
        let idx = self.hosts[host].app_index(app_task).expect("app exists");
        self.kernel_socks.insert((host, sock), idx);
    }

    /// Apply kernel effects produced on `host` at `now`; returns the time
    /// the effects' CPU work completes (the app-continuation time).
    fn apply_effects(&mut self, host: usize, effects: Vec<Effect>, now: Time) -> Time {
        let mut cursor = now;
        for e in effects {
            match e {
                Effect::Cpu { dur, charge } => {
                    cursor = self.hosts[host].cpu.run(cursor, dur, charge);
                }
                Effect::Cab { iface, event } => match event {
                    CabEvent::SdmaDone {
                        at,
                        token,
                        interrupt,
                        data,
                    } => {
                        self.queue.push(
                            at.max(now),
                            Event::SdmaDone {
                                host,
                                iface,
                                token,
                                interrupt,
                                data,
                            },
                        );
                    }
                    CabEvent::FrameOut {
                        at,
                        dst,
                        channel: _,
                        frame,
                    } => {
                        self.queue.push(
                            at.max(now),
                            Event::FabricTx {
                                host,
                                iface,
                                dst_addr: dst,
                                frame,
                            },
                        );
                    }
                    CabEvent::RxReady {
                        at,
                        packet,
                        autodma,
                        hw_csum,
                        frame_len,
                    } => {
                        self.queue.push(
                            at.max(now),
                            Event::RxInterrupt {
                                host,
                                iface,
                                packet,
                                autodma,
                                hw_csum,
                                frame_len,
                            },
                        );
                    }
                    CabEvent::RxDropped { .. } => {}
                },
                Effect::EthTx { iface, frame } => {
                    self.queue.push(
                        cursor,
                        Event::FabricTx {
                            host,
                            iface,
                            dst_addr: 0,
                            frame,
                        },
                    );
                }
                Effect::Loop { iface, frame } => {
                    self.queue.push(
                        cursor + Dur::micros(1),
                        Event::FrameArrive { host, iface, frame },
                    );
                }
                Effect::Wake { task, sock: _ } => {
                    self.queue.push(cursor, Event::AppStep { host, task });
                }
                Effect::Timer { after, kind } => {
                    self.queue.push(now + after, Event::Timer { host, kind });
                }
                Effect::KernelReady { sock } => {
                    self.queue.push(cursor, Event::KernelReady { host, sock });
                }
            }
        }
        cursor
    }

    /// Run one application quantum.
    fn run_app(&mut self, host: usize, task: TaskId, now: Time, ready_sock: Option<SockId>) {
        let Some(idx) = self.hosts[host].app_index(task) else {
            return;
        };
        let mut app = self.hosts[host].apps[idx].take().expect("app present");
        let measured = self.hosts[host].measured_task == Some(task);
        if measured {
            self.hosts[host].cpu.set_ttcp_on_cpu(true);
        }
        let (step, effects, user_us) = {
            let h = &mut self.hosts[host];
            let mut ctx = SysCtx {
                now,
                task,
                kernel: &mut h.kernel,
                mem: &mut h.mem,
                effects: Vec::new(),
                user_us: 0.0,
            };
            let step = match ready_sock {
                Some(sock) => app.on_kernel_ready(&mut ctx, sock),
                None => app.step(&mut ctx),
            };
            (step, ctx.effects, ctx.user_us)
        };
        let mut cursor = now;
        if user_us > 0.0 {
            let charge = if measured {
                Charge::TtcpUser
            } else {
                Charge::Syscall
            };
            cursor = self.hosts[host]
                .cpu
                .run(cursor, Dur::from_micros_f64(user_us), charge);
        }
        cursor = self.apply_effects(host, effects, cursor);
        match step {
            Step::Continue => {
                self.queue.push(cursor, Event::AppStep { host, task });
            }
            Step::Wait => {
                if measured {
                    self.hosts[host].cpu.set_ttcp_on_cpu(false);
                }
            }
            Step::Done => {
                if measured {
                    self.hosts[host].cpu.set_ttcp_on_cpu(false);
                }
                self.hosts[host].finished_apps += 1;
                self.hosts[host].apps[idx] = Some(app);
                return;
            }
        }
        self.hosts[host].apps[idx] = Some(app);
    }

    fn dispatch(&mut self, ev: Event, now: Time) {
        // Windowed telemetry samples lazily at boundary crossings, before
        // the crossing event mutates any counters. Disabled runs pay only
        // this one branch (zero-overhead-off, byte-identical outputs).
        if let Some(st) = &self.timeline {
            if now >= st.next_boundary {
                self.timeline_catch_up(now);
            }
        }
        // A paused host's CPU-side events are deferred (re-queued at the
        // resume time, preserving FIFO order among deferred events); the
        // fabric and the chaos injector itself keep running.
        if let Some(ch) = self.chaos.as_mut() {
            if let Some(h) = Self::cpu_host_of(&ev) {
                match ch.paused_until.get(&h).copied() {
                    Some(until) if now < until => {
                        ch.stats.deferred_events += 1;
                        self.queue.push(until, ev);
                        return;
                    }
                    Some(_) => {
                        ch.paused_until.remove(&h);
                    }
                    None => {}
                }
            }
        }
        self.events_dispatched += 1;
        match ev {
            Event::AppStep { host, task } => {
                let finished = self.hosts[host]
                    .app_index(task)
                    .and_then(|i| self.hosts[host].apps[i].as_ref())
                    .map(|a| a.finished())
                    .unwrap_or(true);
                if !finished {
                    self.run_app(host, task, now, None);
                }
            }
            Event::KernelReady { host, sock } => {
                if let Some(&idx) = self.kernel_socks.get(&(host, sock)) {
                    let task = self.hosts[host].apps[idx]
                        .as_ref()
                        .map(|a| a.task())
                        .expect("app present");
                    self.run_app(host, task, now, Some(sock));
                }
            }
            Event::SdmaDone {
                host,
                iface,
                token,
                interrupt,
                data,
            } => {
                let fx = {
                    let h = &mut self.hosts[host];
                    h.kernel
                        .sdma_done(iface, token, interrupt, data, &mut h.mem, now)
                };
                self.apply_effects(host, fx, now);
            }
            Event::RxInterrupt {
                host,
                iface,
                packet,
                autodma,
                hw_csum,
                frame_len,
            } => {
                let fx = {
                    let h = &mut self.hosts[host];
                    h.kernel
                        .rx_interrupt(iface, packet, autodma, hw_csum, frame_len, &mut h.mem, now)
                };
                self.apply_effects(host, fx, now);
            }
            Event::FabricTx {
                host,
                iface,
                dst_addr,
                frame,
            } => {
                self.frames_on_fabric += 1;
                self.bytes_on_fabric += frame.len() as u64;
                if let Some(cap) = &mut self.capture {
                    let framing = if dst_addr != 0 {
                        Framing::Hippi
                    } else {
                        Framing::Ether
                    };
                    cap.record(
                        now,
                        format!("h{host}/if{}", iface.0),
                        framing,
                        frame.clone(),
                    );
                }
                let dest = if dst_addr != 0 {
                    self.hippi_map.get(&dst_addr).copied()
                } else {
                    self.eth_peers.get(&(host, iface)).copied()
                };
                let Some((dst_host, dst_iface)) = dest else {
                    return;
                };
                let Some(link) = self.links.get_mut(&(host, iface)) else {
                    return;
                };
                let (flow, frame_len) = if self.wire_spans.on() {
                    let ip_off = if dst_addr != 0 {
                        outboard_wire::hippi::HIPPI_HEADER_LEN
                    } else {
                        outboard_wire::ether::ETHER_HEADER_LEN
                    };
                    (
                        outboard_stack::kernel::frame_flow(&frame, ip_off),
                        frame.len() as u64,
                    )
                } else {
                    (outboard_sim::span::FlowId::NONE, 0)
                };
                let deliveries = link.transmit(frame, now);
                if self.wire_spans.on() {
                    if deliveries.is_empty() {
                        // The link's fault model ate the frame: an opened-
                        // then-dropped span records the loss.
                        let key = ((host as u64) << 32) | iface.0 as u64;
                        self.wire_spans
                            .span_open(key, flow, Stage::Wire, now, frame_len);
                        self.wire_spans.span_drop(key, Stage::Wire, now);
                    } else {
                        for d in &deliveries {
                            self.wire_spans
                                .span(flow, Stage::Wire, now, d.at, frame_len);
                        }
                    }
                }
                for d in deliveries {
                    self.queue.push(
                        d.at,
                        Event::FrameArrive {
                            host: dst_host,
                            iface: dst_iface,
                            frame: d.payload,
                        },
                    );
                }
            }
            Event::FrameArrive { host, iface, frame } => {
                let fx = {
                    let h = &mut self.hosts[host];
                    h.kernel.frame_arrive(iface, frame, &mut h.mem, now)
                };
                self.apply_effects(host, fx, now);
            }
            Event::Timer { host, kind } => {
                let fx = {
                    let h = &mut self.hosts[host];
                    h.kernel.timer_fire(kind, &mut h.mem, now)
                };
                self.apply_effects(host, fx, now);
            }
            Event::Chaos { idx, heal } => {
                self.apply_chaos(idx, heal, now);
            }
        }
    }

    /// Run until the queue drains or `deadline` passes. Returns the final
    /// virtual time.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (now, ev) = self.queue.pop().unwrap();
            self.dispatch(ev, now);
        }
        self.queue.now()
    }

    /// Run until a predicate over the world holds (checked between events)
    /// or the deadline passes; returns true when the predicate held.
    pub fn run_while(
        &mut self,
        deadline: Time,
        mut keep_going: impl FnMut(&World) -> bool,
    ) -> bool {
        loop {
            if !keep_going(self) {
                return true;
            }
            let Some(t) = self.queue.peek_time() else {
                return !keep_going(self);
            };
            if t > deadline {
                return false;
            }
            let (now, ev) = self.queue.pop().unwrap();
            self.dispatch(ev, now);
        }
    }

    /// Apply effects produced by directly-driven kernel calls (tests that
    /// bypass the app machinery).
    pub fn apply_external_effects(&mut self, host: usize, effects: Vec<Effect>) {
        let now = self.queue.now();
        self.apply_effects(host, effects, now);
    }

    /// Kick an application (initial scheduling or test-driven wake).
    pub fn schedule_app(&mut self, host: usize, task: TaskId, at: Time) {
        self.queue.push(at, Event::AppStep { host, task });
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

impl Default for World {
    fn default() -> Self {
        World::new()
    }
}
