//! Whole-system testbed: simulated hosts wired through a HIPPI fabric (and
//! optionally an Ethernet segment), applications driving the socket API,
//! and the experiment harness that reproduces the paper's measurements.
//!
//! * [`world`] — the discrete-event `World`: hosts (kernel + CPU + user
//!   memory + apps), links, and the event dispatch loop that interprets
//!   kernel [`outboard_stack::Effect`]s,
//! * [`apps`] — `ttcp`-style sender/receiver processes and in-kernel
//!   applications (file server) with the share-semantics interface,
//! * [`experiment`] — the §7.1 methodology: run a transfer, account CPU per
//!   the ttcp/util formula, report throughput / utilization / efficiency;
//!   plus the raw-HIPPI bound and the §7.3 analytic model.

#![warn(missing_docs)]

pub mod analysis;
pub mod apps;
pub mod chaos;
pub mod experiment;
pub mod oracle;
pub mod world;

pub use chaos::{run_chaos, shrink_failure, ChaosOutcome, DEFAULT_LIVENESS_BUDGET};
pub use experiment::{raw_hippi_throughput, run_ttcp, ExperimentConfig, Metrics};
pub use world::{App, ChaosStats, Step, SysCtx, World};
