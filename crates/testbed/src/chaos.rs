//! Chaos runner: execute a ttcp transfer under a scripted fault schedule,
//! judge the run with the [`crate::oracle`], and delta-debug failing
//! schedules down to minimal replayable repros.
//!
//! The runner steps the world in fixed sim-time chunks with a progress
//! watchdog: once every scheduled fault has healed
//! ([`World::chaos_quiesce_at`]), a run that makes no application-level
//! progress for the liveness budget is declared livelocked; a drained event
//! queue with the transfer unfinished is a deadlock. Because the world is a
//! deterministic discrete-event simulation, the same config + schedule
//! always produces the same [`ChaosOutcome`], which is what makes
//! [`shrink_failure`] sound.

use crate::experiment::{build_ttcp_world, ExperimentConfig};
use crate::oracle;
use crate::world::{ChaosStats, World};
use outboard_sim::chaos::{shrink, ChaosSchedule, ShrinkResult};
use outboard_sim::{Dur, MetricsRegistry, Time};

/// Default sim-time progress budget after all faults heal. Must exceed TCP's
/// maximum retransmit backoff (64 s): a partition healed just after a fully
/// backed-off rexmt timer re-arms legitimately stays silent that long.
pub const DEFAULT_LIVENESS_BUDGET: Dur = Dur::secs(70);

/// Watchdog polling granularity for the chunked run loop.
const CHUNK: Dur = Dur::millis(10);

/// Sim-time allowance after quiesce for heal probes and watchdog resets to
/// land before the end-state oracle runs (probe period is 10 ms).
const SETTLE: Dur = Dur::millis(100);

/// The verdict on one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Oracle violations, run-phase (liveness) first; empty = clean run.
    pub violations: Vec<String>,
    /// The transfer finished and the receiver read every byte.
    pub completed: bool,
    /// Virtual time consumed.
    pub elapsed: Dur,
    /// Bytes the receiver read.
    pub bytes_read: usize,
    /// What the chaos driver actually applied.
    pub chaos: ChaosStats,
    /// Full metrics snapshot (byte-identical per seed — the determinism
    /// contract the repro files rely on).
    pub stats: MetricsRegistry,
    /// Flight-recorder dump (`outboard-flight-v1`): the last windows of the
    /// run's timeline plus the tail of the span ring, rendered only when
    /// the oracle found violations and the world had a timeline installed.
    /// Written beside the `repro_<seed>.json` so every shrunk repro ships
    /// with the telemetry of its own crash.
    pub flight_json: Option<String>,
}

impl ChaosOutcome {
    /// True when the oracle found nothing wrong.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Stable category token of the first violation (`"integrity"`,
    /// `"liveness"`, ...) — the shrinker's notion of "the same failure".
    pub fn category(&self) -> Option<String> {
        self.violations
            .first()
            .map(|v| oracle::violation_category(v).to_string())
    }
}

fn app_progress(w: &World) -> u64 {
    use crate::apps::{TtcpReceiver, TtcpSender};
    let sent = w.hosts[0].apps[0]
        .as_ref()
        .and_then(|a| a.as_any().downcast_ref::<TtcpSender>())
        .map(|s| s.bytes_written)
        .unwrap_or(0);
    let read = w.hosts[1].apps[0]
        .as_ref()
        .and_then(|a| a.as_any().downcast_ref::<TtcpReceiver>())
        .map(|r| r.bytes_read)
        .unwrap_or(0);
    (sent + read) as u64
}

fn apps_finished(w: &World) -> bool {
    w.hosts
        .iter()
        .all(|h| h.apps[0].as_ref().map(|a| a.finished()).unwrap_or(false))
}

/// Run one ttcp transfer under `schedule` and judge it with the oracle.
pub fn run_chaos(
    cfg: &ExperimentConfig,
    schedule: &ChaosSchedule,
    liveness_budget: Dur,
) -> ChaosOutcome {
    if let Err(e) = cfg.validate() {
        return ChaosOutcome {
            violations: vec![format!("config: {e}")],
            completed: false,
            elapsed: Dur::ZERO,
            bytes_read: 0,
            chaos: ChaosStats::default(),
            stats: MetricsRegistry::default(),
            flight_json: None,
        };
    }
    let mut w = build_ttcp_world(cfg);
    w.install_chaos(schedule);
    let quiesce = w.chaos_quiesce_at().unwrap_or(Time::ZERO);

    // Hard ceiling: a generous bandwidth floor or the schedule's active
    // window plus the liveness budget, whichever is later.
    let floor = Time::ZERO + Dur::from_secs_f64((cfg.total_bytes as f64 * 8.0 / 1e6).max(30.0));
    let deadline = floor.max(quiesce + liveness_budget) + Dur::secs(5);

    let mut violations: Vec<String> = Vec::new();
    // `target` is wall sim-time swept by the watchdog; `w.now()` can lag it
    // when the queue has no events in a chunk.
    let mut target = w.now();
    let mut last_progress = app_progress(&w);
    let mut last_progress_at = target;
    loop {
        if apps_finished(&w) {
            break;
        }
        if w.pending_events() == 0 {
            violations.push(format!(
                "liveness: event queue drained at {} with the transfer unfinished (deadlock)",
                w.now()
            ));
            break;
        }
        if target >= deadline {
            violations.push(format!(
                "liveness: transfer unfinished at deadline {deadline} (started stalling at {last_progress_at})"
            ));
            break;
        }
        target += CHUNK;
        w.run_until(target);
        let p = app_progress(&w);
        if p != last_progress {
            last_progress = p;
            last_progress_at = target;
        } else if target >= quiesce {
            // All faults healed: silence beyond the budget is a livelock.
            let anchor = last_progress_at.max(quiesce);
            if target.since(anchor) > liveness_budget {
                violations.push(format!(
                    "liveness: no progress since {anchor} with all faults healed (budget {liveness_budget})"
                ));
                break;
            }
        }
    }

    // Let remaining heals, probes, and watchdogs land before judging the
    // end state (all chaos events sit at or before `quiesce`).
    let settle = quiesce.max(w.now()) + SETTLE;
    w.run_until(settle);

    if w.span_tracing_on() {
        w.finish_spans(w.now());
    }
    if w.timeline_on() {
        w.finish_timeline(w.now());
    }
    let elapsed = w.now().since(Time::ZERO);
    let stats = w.metrics(elapsed);
    let bytes_read = {
        use crate::apps::TtcpReceiver;
        w.hosts[1].apps[0]
            .as_ref()
            .and_then(|a| a.as_any().downcast_ref::<TtcpReceiver>())
            .map(|r| r.bytes_read)
            .unwrap_or(0)
    };

    violations.extend(oracle::integrity_violations(&w, cfg.total_bytes));
    violations.extend(oracle::conservation_violations(&stats, w.hosts.len()));
    violations.extend(oracle::endstate_violations(&w));

    let flight_json = if violations.is_empty() {
        None
    } else {
        flight_json(&w, cfg.seed, &violations)
    };

    ChaosOutcome {
        completed: apps_finished(&w) && bytes_read >= cfg.total_bytes,
        elapsed,
        bytes_read,
        chaos: w.chaos_stats().unwrap_or_default(),
        stats,
        violations,
        flight_json,
    }
}

/// Windows of timeline history a flight dump retains.
const FLIGHT_WINDOWS: usize = 64;
/// Span-ring tail entries a flight dump retains.
const FLIGHT_SPANS: usize = 64;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the flight-recorder dump (`outboard-flight-v1`): the violation
/// list, the last [`FLIGHT_WINDOWS`] windows of the timeline (base-refolded
/// so conservation holds within the fragment), and the tail of the merged
/// span ring. `None` when the world has no timeline installed.
fn flight_json(w: &World, seed: u64, violations: &[String]) -> Option<String> {
    use std::fmt::Write as _;
    let tl = w.timeline()?;
    let mut out = String::from("{\n  \"schema\": \"outboard-flight-v1\",\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"end_ns\": {},", w.now().nanos());
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\"", json_escape(v));
    }
    out.push_str("\n  ],\n");
    // The timeline fragment is itself a complete `outboard-timeline-v1`
    // object; embed it verbatim (indentation is cosmetic only).
    let _ = write!(out, "  \"timeline\": {}", tl.tail_json(FLIGHT_WINDOWS));
    out.truncate(out.trim_end().len());
    out.push_str(",\n  \"spans\": {");
    let spans = w.merged_spans();
    let tail_from = spans.len().saturating_sub(FLIGHT_SPANS);
    let _ = write!(out, "\n    \"recorded\": {},", spans.len());
    let _ = write!(out, "\n    \"tail_from\": {tail_from},");
    out.push_str("\n    \"tail\": [");
    for (i, s) in spans[tail_from..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n      {{\"stage\": \"{}\", \"start_ns\": {}, \"end_ns\": {}, \
             \"bytes\": {}, \"flow\": \"{:08x}\", \"seq_lo\": {}, \"fate\": \"{}\"}}",
            s.stage.name(),
            s.start.nanos(),
            s.end.nanos(),
            s.bytes,
            s.flow.group(),
            s.flow.seq_lo(),
            if s.dropped { "dropped" } else { "ok" },
        );
    }
    out.push_str("\n    ]\n  }\n}\n");
    Some(out)
}

/// Delta-debug a failing schedule to local minimality, preserving the
/// failure *category* (so a shrunk liveness repro cannot silently morph
/// into, say, a conservation repro). Returns `None` when the schedule does
/// not actually fail under `cfg`.
pub fn shrink_failure(
    cfg: &ExperimentConfig,
    failing: &ChaosSchedule,
    liveness_budget: Dur,
) -> Option<ShrinkResult> {
    let baseline = run_chaos(cfg, failing, liveness_budget).category()?;
    Some(shrink(failing, |cand| {
        run_chaos(cfg, cand, liveness_budget).category().as_deref() == Some(baseline.as_str())
    }))
}
