//! The experiment harness: §7.1's measurement methodology.
//!
//! `run_ttcp` runs a user-process-to-user-process transfer between two
//! simulated hosts, then computes throughput (ttcp's view), CPU utilization
//! (the ttcp + util accounting with the unaccounted background share), and
//! efficiency = throughput / utilization — exactly the three panels of
//! Figures 5 and 6. `raw_hippi_throughput` reproduces the "raw HIPPI"
//! series: well-formed packets driven straight at the device.

use crate::apps::{TtcpReceiver, TtcpSender};
use crate::world::World;
use bytes::Bytes;
use outboard_cab::{Cab, CabEvent, SdmaDst, SdmaRx, SdmaTx, SgEntry};
use outboard_host::{HostMem, MachineConfig, TaskId};
use outboard_sim::{stats, Dur, EngineKind, MetricsRegistry, Time};
use outboard_stack::{SockAddr, StackConfig};
use std::net::Ipv4Addr;

/// Parameters of one ttcp run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Cost model of both hosts.
    pub machine: MachineConfig,
    /// Stack configuration of both hosts.
    pub stack: StackConfig,
    /// Read/write size (the x-axis of Figures 5 and 6).
    pub write_size: usize,
    /// Total bytes to move.
    pub total_bytes: usize,
    /// RNG seed (links, fault injection).
    pub seed: u64,
    /// Forward-link drop probability (fault-injection experiments).
    pub drop_p: f64,
    /// Forward-link single-bit corruption probability.
    pub corrupt_p: f64,
    /// Forward-link reordering (late-delivery) probability.
    pub reorder_p: f64,
    /// Forward-link duplication probability.
    pub dup_p: f64,
    /// CAB netmem allocation-failure probability (both hosts' adaptors).
    pub cab_alloc_fail_p: f64,
    /// CAB SDMA transfer-failure probability (both hosts' adaptors).
    pub cab_sdma_fail_p: f64,
    /// CAB MDMA transfer-failure probability (both hosts' adaptors).
    pub cab_mdma_fail_p: f64,
    /// Probability a failed CAB transfer wedges its engine.
    pub cab_wedge_p: f64,
    /// Probability the CAB miscomputes an outboard checksum.
    pub cab_csum_error_p: f64,
    /// Verify payload integrity at the receiver.
    pub verify: bool,
    /// Misalign the sender's buffer by this many bytes (§4.5 experiments).
    pub sender_misalign: u64,
    /// Enable per-packet causal span tracing (off by default; traced runs
    /// additionally publish `world.spans.*` and can export a timeline).
    pub trace_spans: bool,
    /// Span ring capacity per host (and for the fabric) when tracing.
    pub trace_capacity: usize,
    /// Cap on how many flows get Perfetto flow arrows (`None` = all).
    pub trace_flows: Option<usize>,
    /// Render the trace JSON and critical path after a traced run. Turning
    /// this off measures the pure recording cost of enabled-but-unused
    /// tracing (the perf harness's `trace_overhead` gate).
    pub trace_export: bool,
    /// Event-scheduler engine (wheel by default; `OUTBOARD_ENGINE=heap`
    /// re-runs on the reference heap for byte-identity checks).
    pub engine: EngineKind,
    /// Enable windowed time-series telemetry (off by default; sampled runs
    /// additionally publish `world.timeline.*` and can export timelines).
    pub timeline_enabled: bool,
    /// Sampling window of the timeline (virtual time).
    pub timeline_window: Dur,
    /// Retention capacity of the timeline rings, in windows.
    pub timeline_capacity: usize,
    /// Render timeline JSON/CSV/sparklines after a sampled run. Turning
    /// this off measures the pure recording cost of enabled-but-unexported
    /// sampling (the perf harness's `timeline_overhead` gate).
    pub timeline_export: bool,
}

impl ExperimentConfig {
    /// A default experiment: 8 MB transfer, no faults, verification on.
    pub fn new(machine: MachineConfig, stack: StackConfig, write_size: usize) -> ExperimentConfig {
        ExperimentConfig {
            machine,
            stack,
            write_size,
            total_bytes: 8 * 1024 * 1024,
            seed: 42,
            drop_p: 0.0,
            corrupt_p: 0.0,
            reorder_p: 0.0,
            dup_p: 0.0,
            cab_alloc_fail_p: 0.0,
            cab_sdma_fail_p: 0.0,
            cab_mdma_fail_p: 0.0,
            cab_wedge_p: 0.0,
            cab_csum_error_p: 0.0,
            verify: true,
            sender_misalign: 0,
            trace_spans: false,
            trace_capacity: 1 << 16,
            trace_flows: Some(64),
            trace_export: true,
            engine: EngineKind::from_env(),
            timeline_enabled: false,
            timeline_window: Dur::millis(1),
            timeline_capacity: 1 << 16,
            timeline_export: true,
        }
    }

    /// Validate every fault-probability knob (finite, in `[0, 1]`).
    ///
    /// `build_ttcp_world` calls this and refuses to build a world from a
    /// nonsense config; CLI front-ends call it directly to report the typed
    /// error instead of crashing mid-run.
    pub fn validate(&self) -> Result<(), outboard_sim::FaultConfigError> {
        use outboard_sim::check_probability as chk;
        chk("drop_p", self.drop_p)?;
        chk("corrupt_p", self.corrupt_p)?;
        chk("reorder_p", self.reorder_p)?;
        chk("dup_p", self.dup_p)?;
        chk("cab_alloc_fail_p", self.cab_alloc_fail_p)?;
        chk("cab_sdma_fail_p", self.cab_sdma_fail_p)?;
        chk("cab_mdma_fail_p", self.cab_mdma_fail_p)?;
        chk("cab_wedge_p", self.cab_wedge_p)?;
        chk("cab_csum_error_p", self.cab_csum_error_p)?;
        if self.timeline_enabled && self.timeline_window.is_zero() {
            return Err(outboard_sim::FaultConfigError {
                knob: "timeline_window",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// Results of one run.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Whole transfer delivered within the deadline.
    pub completed: bool,
    /// Virtual wall time of the run.
    pub elapsed: Dur,
    /// Bytes delivered to the receiving application.
    pub bytes: usize,
    /// User-process to user-process throughput, Mbit/s.
    pub throughput_mbps: f64,
    /// §7.1 utilization estimate on each host.
    pub sender_utilization: f64,
    /// Receiver-side utilization.
    pub receiver_utilization: f64,
    /// throughput / utilization, Mbit/s.
    pub sender_efficiency_mbps: f64,
    /// Receiver-side efficiency.
    pub receiver_efficiency_mbps: f64,
    /// TCP retransmissions (from the sender's trace).
    pub retransmits: u64,
    /// Received bytes that failed pattern verification.
    pub verify_errors: u64,
    /// write(2) calls the sender completed.
    pub writes: u64,
    /// Retransmissions that re-DMAed only a header (§4.3).
    pub header_only_retransmits: u64,
    /// Packets checksummed by the CAB.
    pub hw_checksums: u64,
    /// Packets checksummed in software.
    pub sw_checksums: u64,
    /// Simulation events the engine dispatched during the run (the perf
    /// harness divides by wall time for an events/sec figure).
    pub events_dispatched: u64,
    /// Full metrics snapshot of the world at the end of the run (hosts,
    /// links, fabric totals) over the run's elapsed virtual time.
    pub stats: MetricsRegistry,
    /// Chrome trace-event JSON of the run's spans (traced runs only; when
    /// the timeline is also enabled, its counter tracks are merged in).
    pub trace_json: Option<String>,
    /// Critical-path attribution for the busiest flow (traced runs only).
    pub critical_path: Option<outboard_sim::span::CriticalPath>,
    /// `outboard-timeline-v1` JSON of the run's windowed telemetry
    /// (timeline-enabled runs with `timeline_export` only).
    pub timeline_json: Option<String>,
    /// CSV rendering of the same windows.
    pub timeline_csv: Option<String>,
    /// ASCII sparkline summary of the same windows (`--stats` output).
    pub timeline_summary: Option<String>,
}

const SENDER_TASK: TaskId = TaskId(1);
const RECEIVER_TASK: TaskId = TaskId(2);
const PORT: u16 = 5001;

/// The sender host's CAB address in ttcp worlds.
pub const SENDER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
/// The receiver host's CAB address in ttcp worlds.
pub const RECEIVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Build the standard two-host CAB world for a ttcp experiment.
pub fn build_ttcp_world(cfg: &ExperimentConfig) -> World {
    if let Err(e) = cfg.validate() {
        panic!("invalid ExperimentConfig: {e}");
    }
    let mut w = World::new_with_engine(cfg.engine);
    let a = w.add_host("sender", cfg.machine.clone(), cfg.stack.clone());
    let b = w.add_host("receiver", cfg.machine.clone(), cfg.stack.clone());
    let (if_a, if_b) = w.connect_cab(a, SENDER_IP, b, RECEIVER_IP, Dur::micros(5), cfg.seed);
    {
        let f = &mut w.links.get_mut(&(a, if_a)).unwrap().faults;
        f.drop_p = cfg.drop_p;
        f.corrupt_p = cfg.corrupt_p;
        f.reorder_p = cfg.reorder_p;
        f.dup_p = cfg.dup_p;
    }
    let cab_faulty = cfg.cab_alloc_fail_p > 0.0
        || cfg.cab_sdma_fail_p > 0.0
        || cfg.cab_mdma_fail_p > 0.0
        || cfg.cab_csum_error_p > 0.0;
    if cab_faulty {
        for (host, iface) in [(a, if_a), (b, if_b)] {
            let ci = w.hosts[host].kernel.ifaces[iface.0 as usize]
                .cab()
                .expect("cab iface");
            // A fresh injector with a run-derived seed: the CAB's default
            // injector is seeded from its fabric address, which would make
            // every run with the same topology draw the same fate stream.
            let mut f = outboard_cab::CabFaultInjector::none(
                cfg.seed.wrapping_mul(7).wrapping_add(5 + host as u64),
            );
            f.alloc_fail_p = cfg.cab_alloc_fail_p;
            f.sdma_fail_p = cfg.cab_sdma_fail_p;
            f.mdma_fail_p = cfg.cab_mdma_fail_p;
            f.wedge_p = cfg.cab_wedge_p;
            f.csum_error_p = cfg.cab_csum_error_p;
            ci.cab.faults = f;
        }
    }
    // Receiver first so the listener exists before the SYN arrives.
    let mut rx = TtcpReceiver::new(RECEIVER_TASK, PORT, cfg.write_size);
    rx.verify = cfg.verify;
    w.add_app(b, Box::new(rx), true);
    let mut tx = TtcpSender::new(
        SENDER_TASK,
        SockAddr::new(RECEIVER_IP, PORT),
        cfg.write_size,
        cfg.total_bytes,
    );
    tx.buf_vaddr += cfg.sender_misalign;
    w.add_app(a, Box::new(tx), true);
    if cfg.trace_spans {
        w.enable_span_tracing(cfg.trace_capacity);
    }
    if cfg.timeline_enabled {
        w.enable_timeline(cfg.timeline_window, cfg.timeline_capacity);
    }
    w
}

/// Run one ttcp experiment to completion (or a generous virtual deadline).
pub fn run_ttcp(cfg: &ExperimentConfig) -> Metrics {
    let mut w = build_ttcp_world(cfg);
    // Generous deadline: even 1 Mbit/s would finish in time.
    let deadline = Time::ZERO + Dur::from_secs_f64((cfg.total_bytes as f64 * 8.0 / 1e6).max(30.0));
    let done = w.run_while(deadline, |w| {
        !(w.hosts[0].apps[0]
            .as_ref()
            .map(|a| a.finished())
            .unwrap_or(true)
            && w.hosts[1].apps[0]
                .as_ref()
                .map(|a| a.finished())
                .unwrap_or(true))
    });
    let elapsed = w.now() - Time::ZERO;

    // Dig the apps back out for their counters.
    let (writes, bytes_written) = {
        let app = w.hosts[0].apps[0].as_ref().unwrap();
        let tx = app
            .as_any()
            .downcast_ref::<TtcpSender>()
            .expect("sender app");
        (tx.writes, tx.bytes_written)
    };
    let (bytes_read, verify_errors) = {
        let app = w.hosts[1].apps[0].as_ref().unwrap();
        let rx = app
            .as_any()
            .downcast_ref::<TtcpReceiver>()
            .expect("receiver app");
        (rx.bytes_read, rx.verify_errors)
    };

    let bg = cfg.machine.background_share;
    let sender_util = w.hosts[0].cpu.acct.utilization(elapsed, bg);
    let receiver_util = w.hosts[1].cpu.acct.utilization(elapsed, bg);
    let throughput = stats::mbps(bytes_read as u64, elapsed);
    let retransmits = sum_retransmits(&w, 0);
    let header_only = w.hosts[0].kernel.stats.retransmit_header_only;
    let hw_checksums = w.hosts[0].kernel.stats.hw_checksums;
    let sw_checksums = w.hosts[0].kernel.stats.sw_checksums;
    // Eviction is surfaced in the registry (`world.trace.evicted`, always
    // published) so it is visible from --stats artifacts, not just stderr.
    if w.hosts[0].kernel.trace.dropped() > 0 {
        eprintln!(
            "warning: sender trace ring evicted {} events (see \
             world.trace.evicted in --stats); counters in Metrics come \
             from the registry and are unaffected",
            w.hosts[0].kernel.trace.dropped()
        );
    }
    // Close out in-flight spans before snapshotting so the conservation
    // identity (opened == closed + dropped) holds in the registry.
    let traced = w.span_tracing_on();
    if traced {
        w.finish_spans(w.now());
    }
    // Likewise flush the timeline (remaining boundaries plus a final
    // partial window) so window-delta sums equal the final counters.
    if w.timeline_on() {
        w.finish_timeline(w.now());
    }
    let stats = w.metrics(elapsed);
    let (trace_json, critical_path) = if traced && cfg.trace_export {
        (Some(w.export_trace(cfg.trace_flows)), w.critical_path())
    } else {
        (None, None)
    };
    let (timeline_json, timeline_csv, timeline_summary) = match w.timeline() {
        Some(tl) if cfg.timeline_export => {
            (Some(tl.to_json()), Some(tl.to_csv()), Some(tl.sparklines()))
        }
        _ => (None, None, None),
    };

    Metrics {
        completed: done && bytes_read >= cfg.total_bytes,
        elapsed,
        bytes: bytes_read.min(bytes_written.max(bytes_read)),
        throughput_mbps: throughput,
        sender_utilization: sender_util,
        receiver_utilization: receiver_util,
        sender_efficiency_mbps: if sender_util > 0.0 {
            throughput / sender_util
        } else {
            0.0
        },
        receiver_efficiency_mbps: if receiver_util > 0.0 {
            throughput / receiver_util
        } else {
            0.0
        },
        retransmits,
        verify_errors,
        writes,
        header_only_retransmits: header_only,
        hw_checksums,
        sw_checksums,
        events_dispatched: w.events_dispatched,
        stats,
        trace_json,
        critical_path,
        timeline_json,
        timeline_csv,
        timeline_summary,
    }
}

fn sum_retransmits(w: &World, host: usize) -> u64 {
    // Emission-site counter in the kernel, not the bounded trace ring: the
    // ring evicts old events on long runs and undercounts.
    w.hosts[host].kernel.stats.tcp_retransmit_segs
}

/// The "raw HIPPI" bound (Figure 5a): well-formed packets of `packet_size`
/// bytes driven straight at the CAB pair with minimal host involvement.
/// Returns Mbit/s.
pub fn raw_hippi_throughput(machine: &MachineConfig, packet_size: usize, packets: usize) -> f64 {
    let cab_cfg = outboard_cab::CabConfig {
        tc_speed_scale: machine.tc_speed_scale,
        ..outboard_cab::CabConfig::default()
    };
    let mut tx = Cab::new(1, cab_cfg.clone());
    let mut rx = Cab::new(2, cab_cfg);
    let mem = HostMem::new();
    let mut rx_mem = HostMem::new();
    rx_mem.create_region(TaskId(9), 0x1000, packet_size.max(4096));
    let latency = Dur::micros(5);
    // Host issue cost per packet on each side (raw test's tight loop),
    // scaled with the machine's speed like every other CPU cost.
    let issue = Dur::from_micros_f64(40.0 / machine.tc_speed_scale.max(0.25));

    let payload = Bytes::from(vec![0xA5u8; packet_size]);
    let mut tx_host_free = Time::ZERO;
    let mut rx_host_free = Time::ZERO;
    let mut last_done = Time::ZERO;
    for i in 0..packets {
        let t0 = tx_host_free;
        tx_host_free = t0 + issue;
        let pkt = tx.alloc_packet(packet_size).expect("netmem");
        let ev = tx
            .sdma_tx(
                SdmaTx {
                    packet: pkt,
                    sg: vec![SgEntry::Inline(payload.clone())],
                    csum: None,
                    reuse_body_csum: false,
                    interrupt_on_complete: false,
                    token: i as u64,
                },
                t0,
                &mem,
            )
            .expect("sdma");
        let sdma_done = ev.at();
        let ev = tx.mdma_tx(pkt, 2, 0, sdma_done, true).expect("mdma");
        let CabEvent::FrameOut { at, frame, .. } = ev else {
            unreachable!()
        };
        let arrival = at + latency;
        let rx_ev = rx.receive_frame(frame, arrival);
        let CabEvent::RxReady { at, packet, .. } = rx_ev else {
            continue; // dropped for lack of netmem: raw test overrun
        };
        // Copy out to the consumer.
        let t_rx = at.max(rx_host_free);
        rx_host_free = t_rx + issue;
        if let Some(p) = packet {
            let ev = rx
                .sdma_rx(
                    SdmaRx {
                        packet: p,
                        src_off: 0,
                        len: packet_size,
                        dst: SdmaDst::User {
                            task: TaskId(9),
                            vaddr: 0x1000,
                        },
                        free_packet: true,
                        interrupt_on_complete: false,
                        token: i as u64,
                    },
                    t_rx,
                    &mut rx_mem,
                )
                .expect("sdma rx");
            last_done = last_done.max(ev.at());
        } else {
            last_done = last_done.max(at);
        }
    }
    stats::mbps((packet_size * packets) as u64, last_done - Time::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(stack: StackConfig, write_size: usize, total: usize) -> Metrics {
        let mut stack = stack;
        if stack.mode == outboard_stack::StackMode::SingleCopy {
            stack.force_single_copy = true;
        }
        let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, write_size);
        cfg.total_bytes = total;
        run_ttcp(&cfg)
    }

    #[test]
    fn single_copy_transfer_completes_and_verifies() {
        let m = quick(StackConfig::single_copy(), 64 * 1024, 1024 * 1024);
        assert!(m.completed, "transfer stalled: {m:?}");
        assert_eq!(m.verify_errors, 0, "payload corrupted end-to-end");
        assert!(m.throughput_mbps > 10.0, "throughput {}", m.throughput_mbps);
        assert!(m.hw_checksums > 0, "outboard checksums unused");
    }

    #[test]
    fn unmodified_transfer_completes_and_verifies() {
        let m = quick(StackConfig::unmodified(), 64 * 1024, 1024 * 1024);
        assert!(m.completed, "transfer stalled: {m:?}");
        assert_eq!(m.verify_errors, 0);
        assert!(m.sw_checksums > 0, "software checksums unused");
        assert_eq!(m.hw_checksums, 0, "unmodified stack must not offload");
    }

    #[test]
    fn single_copy_is_more_efficient_at_large_writes() {
        let sc = quick(StackConfig::single_copy(), 256 * 1024, 4 * 1024 * 1024);
        let un = quick(StackConfig::unmodified(), 256 * 1024, 4 * 1024 * 1024);
        assert!(sc.completed && un.completed);
        assert!(
            sc.sender_efficiency_mbps > 2.0 * un.sender_efficiency_mbps,
            "single-copy {:.0} vs unmodified {:.0}",
            sc.sender_efficiency_mbps,
            un.sender_efficiency_mbps
        );
    }

    #[test]
    fn raw_hippi_bound_matches_microcode_limit() {
        let m = MachineConfig::alpha_3000_400();
        let t = raw_hippi_throughput(&m, 512 * 1024 / 16, 64);
        assert!((100.0..160.0).contains(&t), "raw hippi {t}");
        let lx = MachineConfig::alpha_3000_300lx();
        let t2 = raw_hippi_throughput(&lx, 512 * 1024 / 16, 64);
        // The LX's Turbochannel costs ~25-30 % of the SDMA bandwidth (the
        // microcode's per-transfer overhead dominates, not the clock).
        assert!(t2 < t * 0.85 && t2 > t * 0.55, "slower TC: {t2} vs {t}");
    }
}
