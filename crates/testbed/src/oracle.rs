//! End-to-end oracle: the invariants that must hold after *any* fault
//! schedule, chaotic or benign.
//!
//! Three families of checks, each returning human-readable violation strings
//! (empty = clean) so callers can assert, aggregate, or feed them to the
//! schedule shrinker:
//!
//! * **Stream integrity** — the receiver read exactly the bytes the sender
//!   wrote, in order, with the expected pattern: no holes, duplicates, or
//!   corruption leaking past the checksums.
//! * **Conservation** — the `world.*` accounting identities from the fault
//!   soak suite: every transport packet checksummed exactly once, per-link
//!   byte and fault-fate counters summing to the world aggregates.
//! * **Healed end-state** — once every scheduled fault has healed and the
//!   probes have run, no interface may still be degraded, wedged, or carrying
//!   an unbalanced degraded-entry/exit ledger (livelock/leak detector).
//!
//! Violation strings are prefixed with a stable category token
//! (`integrity:`, `conservation:`, `endstate:`, `liveness:`) so the shrinker
//! can check that a shrunk schedule reproduces the *same kind* of failure.

use crate::apps::{TtcpReceiver, TtcpSender};
use crate::world::World;
use outboard_sim::MetricsRegistry;

/// Fault fates that must aggregate exactly from per-link counters to the
/// `world.faults.*` totals.
pub const FAULT_FATES: [&str; 6] = [
    "offered",
    "dropped",
    "corrupted",
    "reordered",
    "duplicated",
    "stealth_corrupted",
];

/// Extract the stable category token from a violation string
/// (`"integrity: ..."` → `"integrity"`).
pub fn violation_category(v: &str) -> &str {
    v.split(':').next().unwrap_or(v)
}

/// Conservation identities over a published metrics snapshot.
///
/// `hosts` is the number of `host{h}.*` scopes to check (the ttcp worlds
/// have two). Returns one violation string per broken identity.
pub fn conservation_violations(r: &MetricsRegistry, hosts: usize) -> Vec<String> {
    let mut v = Vec::new();

    // Checksum conservation: every transport packet emitted was checksummed
    // exactly once, outboard or in software — even on retried, parked, or
    // degraded-path transmissions.
    for h in 0..hosts {
        let hw = r.counter_value(&format!("host{h}.csum.hw"));
        let sw = r.counter_value(&format!("host{h}.csum.sw"));
        let segs = r.counter_value(&format!("host{h}.tcp.segs_out"));
        let rsts = r.counter_value(&format!("host{h}.tcp.rst_sent"));
        let udp = r.counter_value(&format!("host{h}.udp.datagrams_out"));
        if hw + sw != segs + rsts + udp {
            v.push(format!(
                "conservation: host{h} checksums hw {hw} + sw {sw} != \
                 {segs} segs + {rsts} rsts + {udp} dgrams"
            ));
        }
    }

    // Fabric conservation: per-link admissions sum to the world totals.
    let link_bytes: u64 = r
        .iter()
        .filter(|(name, _)| name.starts_with("link.") && name.ends_with(".bytes_in"))
        .map(|(name, _)| r.counter_value(name))
        .sum();
    let world_bytes = r.counter_value("world.bytes_on_fabric");
    if link_bytes != world_bytes {
        v.push(format!(
            "conservation: link bytes_in sum {link_bytes} != world.bytes_on_fabric {world_bytes}"
        ));
    }

    // The aggregated fault counters must agree with the per-link ones.
    for fate in FAULT_FATES {
        let per_link: u64 = r
            .iter()
            .filter(|(name, _)| {
                name.starts_with("link.") && name.ends_with(&format!(".faults.{fate}"))
            })
            .map(|(name, _)| r.counter_value(name))
            .sum();
        let world = r.counter_value(&format!("world.faults.{fate}"));
        if per_link != world {
            v.push(format!(
                "conservation: world.faults.{fate} {world} != per-link sum {per_link}"
            ));
        }
    }

    v
}

/// Stream-integrity checks for a finished (or stalled) ttcp transfer:
/// the receiver must hold exactly `total_bytes` pattern-verified bytes and
/// the sender must have written them all.
pub fn integrity_violations(w: &World, total_bytes: usize) -> Vec<String> {
    let mut v = Vec::new();
    let recv = w.hosts[1].apps[0]
        .as_ref()
        .and_then(|a| a.as_any().downcast_ref::<TtcpReceiver>());
    match recv {
        Some(r) => {
            if r.verify_errors > 0 {
                v.push(format!(
                    "integrity: {} bytes failed pattern verification at the receiver",
                    r.verify_errors
                ));
            }
            if r.bytes_read != total_bytes {
                v.push(format!(
                    "integrity: receiver read {} of {total_bytes} bytes",
                    r.bytes_read
                ));
            }
        }
        None => v.push("integrity: no TtcpReceiver on host 1".to_string()),
    }
    let sent = w.hosts[0].apps[0]
        .as_ref()
        .and_then(|a| a.as_any().downcast_ref::<TtcpSender>())
        .map(|s| s.bytes_written);
    match sent {
        Some(b) if b != total_bytes => {
            v.push(format!(
                "integrity: sender wrote {b} of {total_bytes} bytes"
            ));
        }
        None => v.push("integrity: no TtcpSender on host 0".to_string()),
        _ => {}
    }
    v
}

/// Healed end-state checks: with every scheduled fault healed and probe
/// timers given time to fire, each CAB interface must be back on the
/// single-copy path with balanced degraded-mode transitions and no wedged
/// engine.
pub fn endstate_violations(w: &World) -> Vec<String> {
    let mut v = Vec::new();
    for (h, host) in w.hosts.iter().enumerate() {
        for iface in &host.kernel.ifaces {
            let Some(ci) = iface.cab_ref() else { continue };
            let id = iface.id.0;
            if ci.health.degraded {
                v.push(format!(
                    "endstate: host{h} iface{id} still degraded after all faults healed"
                ));
            }
            let d = &ci.health.stats;
            if d.degraded_entries != d.degraded_exits {
                v.push(format!(
                    "endstate: host{h} iface{id} degraded_entries {} != degraded_exits {}",
                    d.degraded_entries, d.degraded_exits
                ));
            }
            if ci.cab.any_engine_wedged() {
                v.push(format!(
                    "endstate: host{h} iface{id} has a wedged DMA engine after heal"
                ));
            }
        }
    }
    v
}
