//! Wire formats for the outboard reproduction.
//!
//! This crate owns everything that has a bit-level representation on the
//! simulated network:
//!
//! * [`checksum`] — the Internet ones-complement checksum, including the
//!   partial-sum/seed algebra that makes *outboard* checksumming work
//!   (§4.3 of the paper): the host seeds the checksum field with the sum of
//!   the headers it owns, and the CAB hardware folds in the sum of the body
//!   it DMAs,
//! * [`ipv4`] — IPv4 header build/parse with header checksum and
//!   fragmentation fields,
//! * [`tcp`] — TCP header with MSS and window-scale options (the paper's
//!   stack supports RFC 1323 window scaling; the 512 KB experiment window
//!   requires it),
//! * [`udp`] — UDP header,
//! * [`hippi`] — a simplified HIPPI-FP framing header (fixed-size, word
//!   aligned, so the CAB's "skip S words" checksum engine lines up),
//! * [`ether`] — Ethernet II framing for the traditional-path device.
//!
//! All multi-byte fields are big-endian (network order). Parsers return
//! `Result<_, WireError>` and never panic on hostile input — a property test
//! feeds random bytes through every parser.

#![warn(missing_docs)]

pub mod checksum;
pub mod ether;
pub mod hippi;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use checksum::{Accumulator, Checksum};
pub use ether::EtherHeader;
pub use hippi::HippiHeader;
pub use ipv4::Ipv4Header;
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;

/// IP protocol numbers used in the workspace.
pub mod proto {
    /// Internet Control Message Protocol.
    pub const ICMP: u8 = 1;
    /// Transmission Control Protocol.
    pub const TCP: u8 = 6;
    /// User Datagram Protocol.
    pub const UDP: u8 = 17;

    /// Human-readable protocol name for reports and traces.
    pub fn name(p: u8) -> &'static str {
        match p {
            ICMP => "icmp",
            TCP => "tcp",
            UDP => "udp",
            _ => "other",
        }
    }
}

/// Errors produced by header parsers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than the fixed header.
    Truncated,
    /// A length field points outside the buffer or below the header size.
    BadLength,
    /// Version/IHL or another structural field is invalid.
    Malformed,
    /// A verified checksum did not match.
    BadChecksum,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "truncated header",
            WireError::BadLength => "bad length field",
            WireError::Malformed => "malformed header",
            WireError::BadChecksum => "checksum mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// Read a big-endian u16 at `off` (caller guarantees bounds).
#[inline]
pub(crate) fn be16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

/// Read a big-endian u32 at `off` (caller guarantees bounds).
#[inline]
pub(crate) fn be32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

/// Write a big-endian u16 at `off`.
#[inline]
pub(crate) fn put16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

/// Write a big-endian u32 at `off`.
#[inline]
pub(crate) fn put32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_be_bytes());
}
