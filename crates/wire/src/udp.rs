//! UDP header (RFC 768).
//!
//! The paper's §4.3 discusses the UDP zero-checksum hazard under outboard
//! checksumming: the hardware always produces a "TCP checksum" (plain
//! ones-complement), so a result of 0 would collide with the "no checksum"
//! sentinel — but a ones-complement sum is 0 only when every term is 0,
//! which the non-zero pseudo-header addresses preclude. The checksum crate
//! carries the property test; here we keep the standard 0→0xFFFF mapping
//! anyway (as every conforming sender must).

use crate::{be16, put16, WireError};

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;
/// Offset of the checksum field within the UDP header.
pub const UDP_CSUM_OFFSET: usize = 6;

/// A parsed or to-be-serialized UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Header + payload length in bytes.
    pub length: u16,
    /// Checksum field (0 means \"no checksum\" per RFC 768).
    pub checksum: u16,
}

impl UdpHeader {
    /// A header for a datagram carrying `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> UdpHeader {
        let length = UDP_HEADER_LEN + payload_len;
        assert!(length <= u16::MAX as usize, "UDP datagram too large");
        UdpHeader {
            src_port,
            dst_port,
            length: length as u16,
            checksum: 0,
        }
    }

    /// Payload length implied by the length field.
    pub fn payload_len(&self) -> usize {
        self.length as usize - UDP_HEADER_LEN
    }

    /// Map a computed checksum of 0 to 0xFFFF (RFC 768: 0 means "none").
    pub fn encode_checksum(computed: u16) -> u16 {
        if computed == 0 {
            0xFFFF
        } else {
            computed
        }
    }

    /// Serialize into the 8-byte wire format.
    pub fn build(&self) -> [u8; UDP_HEADER_LEN] {
        let mut b = [0u8; UDP_HEADER_LEN];
        put16(&mut b, 0, self.src_port);
        put16(&mut b, 2, self.dst_port);
        put16(&mut b, 4, self.length);
        put16(&mut b, 6, self.checksum);
        b
    }

    /// Parse a header from the front of `buf` (payload must be present).
    pub fn parse(buf: &[u8]) -> Result<UdpHeader, WireError> {
        UdpHeader::parse_with_available(buf, buf.len())
    }

    /// Like [`UdpHeader::parse`], but the datagram bytes may extend beyond
    /// `buf` up to `available` (header-only views of chained payloads).
    pub fn parse_with_available(buf: &[u8], available: usize) -> Result<UdpHeader, WireError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let length = be16(buf, 4);
        if (length as usize) < UDP_HEADER_LEN || length as usize > available.max(buf.len()) {
            return Err(WireError::BadLength);
        }
        Ok(UdpHeader {
            src_port: be16(buf, 0),
            dst_port: be16(buf, 2),
            length,
            checksum: be16(buf, 6),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = UdpHeader::new(53, 32768, 512);
        let bytes = h.build();
        let parsed = UdpHeader::parse(&bytes[..]).map(|mut p| {
            // parse() needs the payload in the buffer for the length check;
            // re-run with a padded buffer.
            p.checksum = h.checksum;
            p
        });
        assert_eq!(parsed, Err(WireError::BadLength));
        let mut buf = bytes.to_vec();
        buf.resize(8 + 512, 0);
        assert_eq!(UdpHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn zero_checksum_encodes_as_ffff() {
        assert_eq!(UdpHeader::encode_checksum(0), 0xFFFF);
        assert_eq!(UdpHeader::encode_checksum(0x1234), 0x1234);
    }

    #[test]
    fn rejects_undersized_length_field() {
        let mut b = UdpHeader::new(1, 2, 0).build();
        put16(&mut b, 4, 4); // below header size
        assert_eq!(UdpHeader::parse(&b), Err(WireError::BadLength));
    }

    #[test]
    fn truncated_input() {
        assert_eq!(UdpHeader::parse(&[0; 7]), Err(WireError::Truncated));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn parser_is_total(buf in proptest::collection::vec(any::<u8>(), 0..32)) {
            let _ = UdpHeader::parse(&buf);
        }

        #[test]
        fn round_trip(sp in any::<u16>(), dp in any::<u16>(), plen in 0usize..2000) {
            let h = UdpHeader::new(sp, dp, plen);
            let mut buf = h.build().to_vec();
            buf.resize(UDP_HEADER_LEN + plen, 0);
            prop_assert_eq!(UdpHeader::parse(&buf).unwrap(), h);
        }
    }
}
