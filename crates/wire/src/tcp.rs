//! TCP header with the options the paper's stack uses: MSS (on SYN) and
//! RFC 1323 window scaling (the experiments run a 512 KB window over a
//! 32 KB-MTU HIPPI network, which does not fit in the bare 16-bit field).
//!
//! The header is always emitted padded to a 4-byte multiple so the CAB's
//! word-based "skip S words" checksum engine lines up with the start of user
//! data (§4.3).

use crate::{be16, be32, put16, put32, WireError};

/// Fixed TCP header length without options.
pub const TCP_HEADER_LEN: usize = 20;
/// Offset of the checksum field within the TCP header.
pub const TCP_CSUM_OFFSET: usize = 16;

/// TCP flag bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// No more data from sender.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// Synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// Reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// Push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// Acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// Urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// True when every bit of `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Bitwise union of two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// SYN set?
    pub fn syn(self) -> bool {
        self.contains(TcpFlags::SYN)
    }
    /// ACK set?
    pub fn ack(self) -> bool {
        self.contains(TcpFlags::ACK)
    }
    /// FIN set?
    pub fn fin(self) -> bool {
        self.contains(TcpFlags::FIN)
    }
    /// RST set?
    pub fn rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }
    /// PSH set?
    pub fn psh(self) -> bool {
        self.contains(TcpFlags::PSH)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = [
            (TcpFlags::SYN, "S"),
            (TcpFlags::ACK, "A"),
            (TcpFlags::FIN, "F"),
            (TcpFlags::RST, "R"),
            (TcpFlags::PSH, "P"),
            (TcpFlags::URG, "U"),
        ];
        for (flag, n) in names {
            if self.contains(flag) {
                f.write_str(n)?;
            }
        }
        Ok(())
    }
}

/// A parsed or to-be-serialized TCP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Next sequence number expected from the peer (with ACK).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Raw (unscaled) window field.
    pub window: u16,
    /// Checksum field as carried on the wire (or the outboard seed).
    pub checksum: u16,
    /// Urgent pointer (unused by this stack).
    pub urgent: u16,
    /// MSS option value (SYN segments only).
    pub mss: Option<u16>,
    /// Window-scale option shift count (SYN segments only).
    pub window_scale: Option<u8>,
    /// Header length in bytes, always a multiple of 4.
    pub header_len: u8,
}

impl TcpHeader {
    /// A bare header with no options and zeroed window/checksum.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> TcpHeader {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 0,
            checksum: 0,
            urgent: 0,
            mss: None,
            window_scale: None,
            header_len: TCP_HEADER_LEN as u8,
        }
    }

    /// Length this header will serialize to (20 + padded options).
    pub fn wire_len(&self) -> usize {
        let mut opt = 0usize;
        if self.mss.is_some() {
            opt += 4;
        }
        if self.window_scale.is_some() {
            opt += 3;
        }
        TCP_HEADER_LEN + opt.div_ceil(4) * 4
    }

    /// Serialize. The checksum field is emitted as `self.checksum`
    /// (zero while computing a software checksum, or the outboard *seed*).
    pub fn build(&self) -> Vec<u8> {
        let len = self.wire_len();
        let mut b = vec![0u8; len];
        put16(&mut b, 0, self.src_port);
        put16(&mut b, 2, self.dst_port);
        put32(&mut b, 4, self.seq);
        put32(&mut b, 8, self.ack);
        b[12] = ((len / 4) as u8) << 4;
        b[13] = self.flags.0;
        put16(&mut b, 14, self.window);
        put16(&mut b, 16, self.checksum);
        put16(&mut b, 18, self.urgent);
        let mut off = TCP_HEADER_LEN;
        if let Some(mss) = self.mss {
            b[off] = 2; // kind: MSS
            b[off + 1] = 4;
            put16(&mut b, off + 2, mss);
            off += 4;
        }
        if let Some(ws) = self.window_scale {
            b[off] = 3; // kind: window scale
            b[off + 1] = 3;
            b[off + 2] = ws;
            off += 3;
        }
        // Pad with NOPs to the word boundary.
        while off < len {
            b[off] = 1;
            off += 1;
        }
        b
    }

    /// Parse a header (and its options) from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<TcpHeader, WireError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_off = ((buf[12] >> 4) as usize) * 4;
        if !(TCP_HEADER_LEN..=60).contains(&data_off) || buf.len() < data_off {
            return Err(WireError::Malformed);
        }
        let mut h = TcpHeader {
            src_port: be16(buf, 0),
            dst_port: be16(buf, 2),
            seq: be32(buf, 4),
            ack: be32(buf, 8),
            flags: TcpFlags(buf[13]),
            window: be16(buf, 14),
            checksum: be16(buf, 16),
            urgent: be16(buf, 18),
            mss: None,
            window_scale: None,
            header_len: data_off as u8,
        };
        let mut off = TCP_HEADER_LEN;
        while off < data_off {
            match buf[off] {
                0 => break, // end of options
                1 => off += 1,
                kind => {
                    if off + 1 >= data_off {
                        return Err(WireError::Malformed);
                    }
                    let olen = buf[off + 1] as usize;
                    if olen < 2 || off + olen > data_off {
                        return Err(WireError::Malformed);
                    }
                    match (kind, olen) {
                        (2, 4) => h.mss = Some(be16(buf, off + 2)),
                        (3, 3) => h.window_scale = Some(buf[off + 2]),
                        _ => {} // unknown option: skip
                    }
                    off += olen;
                }
            }
        }
        Ok(h)
    }
}

/// Sequence-number arithmetic (RFC 793 modular comparisons).
pub mod seq {
    /// `a < b` in sequence space.
    #[inline]
    pub fn lt(a: u32, b: u32) -> bool {
        (a.wrapping_sub(b) as i32) < 0
    }

    /// `a <= b` in sequence space.
    #[inline]
    pub fn leq(a: u32, b: u32) -> bool {
        (a.wrapping_sub(b) as i32) <= 0
    }

    /// `a > b` in sequence space.
    #[inline]
    pub fn gt(a: u32, b: u32) -> bool {
        (a.wrapping_sub(b) as i32) > 0
    }

    /// `a >= b` in sequence space.
    #[inline]
    pub fn geq(a: u32, b: u32) -> bool {
        (a.wrapping_sub(b) as i32) >= 0
    }

    /// Distance `b - a` (caller asserts `a <= b` in sequence space).
    #[inline]
    pub fn diff(b: u32, a: u32) -> u32 {
        b.wrapping_sub(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_header_round_trip() {
        let mut h = TcpHeader::new(
            1234,
            80,
            0xDEADBEEF,
            0x12345678,
            TcpFlags::ACK | TcpFlags::PSH,
        );
        h.window = 0xFFFF;
        h.checksum = 0xABCD;
        let bytes = h.build();
        assert_eq!(bytes.len(), 20);
        let parsed = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn syn_options_round_trip() {
        let mut h = TcpHeader::new(5000, 5001, 1, 0, TcpFlags::SYN);
        h.mss = Some(32 * 1024 - 60);
        h.window_scale = Some(3);
        let bytes = h.build();
        // 20 + 4 (MSS) + 3 (WS) padded to 28.
        assert_eq!(bytes.len(), 28);
        assert_eq!(bytes.len() % 4, 0, "word aligned for the CAB");
        let parsed = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed.mss, h.mss);
        assert_eq!(parsed.window_scale, h.window_scale);
        assert_eq!(parsed.header_len, 28);
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut bytes = TcpHeader::new(1, 2, 3, 4, TcpFlags::ACK).build();
        bytes[12] = 0x30; // data offset 12 bytes < 20
        assert_eq!(TcpHeader::parse(&bytes), Err(WireError::Malformed));
        bytes[12] = 0xF0; // data offset 60 > buffer
        assert_eq!(TcpHeader::parse(&bytes), Err(WireError::Malformed));
    }

    #[test]
    fn rejects_truncated_option() {
        let mut h = TcpHeader::new(1, 2, 3, 4, TcpFlags::SYN);
        h.mss = Some(1460);
        let mut bytes = h.build();
        bytes[21] = 40; // MSS option claims length 40
        assert_eq!(TcpHeader::parse(&bytes), Err(WireError::Malformed));
    }

    #[test]
    fn unknown_option_skipped() {
        // 24-byte header with an unknown kind-8 option.
        let mut h = TcpHeader::new(1, 2, 3, 4, TcpFlags::ACK);
        h.mss = Some(9999);
        let mut bytes = h.build();
        bytes[20] = 8; // timestamps kind, len 4 (not a real ts option; parser skips)
        bytes[21] = 4;
        bytes[22] = 0;
        bytes[23] = 0;
        let parsed = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed.mss, None, "option replaced, no longer MSS");
    }

    #[test]
    fn flags_display_and_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.syn() && f.ack() && !f.fin());
        assert_eq!(format!("{f}"), "SA");
    }

    #[test]
    fn seq_arithmetic_wraps() {
        use super::seq;
        assert!(seq::lt(0xFFFF_FFF0, 0x10));
        assert!(seq::gt(0x10, 0xFFFF_FFF0));
        assert!(seq::leq(5, 5) && seq::geq(5, 5));
        assert_eq!(seq::diff(0x10, 0xFFFF_FFF0), 0x20);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn parser_is_total(buf in proptest::collection::vec(any::<u8>(), 0..80)) {
            let _ = TcpHeader::parse(&buf);
        }

        #[test]
        fn round_trip(sp in any::<u16>(), dp in any::<u16>(), seqn in any::<u32>(),
                      ackn in any::<u32>(), win in any::<u16>(), flags in any::<u8>(),
                      mss in proptest::option::of(any::<u16>()),
                      ws in proptest::option::of(0u8..15)) {
            let mut h = TcpHeader::new(sp, dp, seqn, ackn, TcpFlags(flags));
            h.window = win;
            h.mss = mss;
            h.window_scale = ws;
            let bytes = h.build();
            prop_assert_eq!(bytes.len() % 4, 0);
            let parsed = TcpHeader::parse(&bytes).unwrap();
            prop_assert_eq!(parsed.src_port, h.src_port);
            prop_assert_eq!(parsed.seq, h.seq);
            prop_assert_eq!(parsed.ack, h.ack);
            prop_assert_eq!(parsed.mss, h.mss);
            prop_assert_eq!(parsed.window_scale, h.window_scale);
        }
    }
}
