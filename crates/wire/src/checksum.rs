//! The Internet ones-complement checksum and its partial-sum algebra.
//!
//! The checksum of a byte sequence is the 16-bit ones-complement of the
//! ones-complement sum of its 16-bit big-endian words (RFC 1071), padding an
//! odd trailing byte with a zero low byte.
//!
//! Outboard checksumming (paper §4.3) relies on three algebraic facts that
//! this module exposes and the test suite proves:
//!
//! 1. **Partial sums combine**: the sum over `a ++ b` equals the fold of
//!    `sum(a) + sum(b)` when `a` has even length (and a byte-swapped
//!    combination when odd — the CAB only ever splits on word boundaries, so
//!    the even case is the one the hardware exercises).
//! 2. **The seed trick**: placing the (uncomplemented) partial sum of the
//!    host-owned prefix into the checksum field lets the hardware compute
//!    `!fold(seed + sum(body))` and obtain the checksum of the whole
//!    transport segment without ever seeing the pseudo-header.
//! 3. **A ones-complement sum is zero only if every term is zero** — which is
//!    why a UDP checksum computed this way can never accidentally collide
//!    with the "no checksum" encoding (the pseudo-header address terms are
//!    non-zero). A property test demonstrates this.

/// A finalized Internet checksum value (the complemented fold).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Checksum(pub u16);

impl Checksum {
    /// Compute the checksum of `data` (pad odd length with a zero byte).
    pub fn of(data: &[u8]) -> Checksum {
        let mut acc = Accumulator::new();
        acc.add_bytes(data);
        acc.finish()
    }

    /// The raw big-endian field value to place on the wire.
    pub fn to_be_bytes(self) -> [u8; 2] {
        self.0.to_be_bytes()
    }
}

/// Fold a 32-bit accumulated sum into 16 bits with end-around carry.
#[inline]
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Ones-complement addition of two folded 16-bit partial sums.
#[inline]
pub fn add16(a: u16, b: u16) -> u16 {
    fold(a as u32 + b as u32)
}

/// Ones-complement subtraction: the value `d` such that `add16(b, d) == a`.
#[inline]
pub fn sub16(a: u16, b: u16) -> u16 {
    add16(a, !b)
}

/// Streaming ones-complement accumulator that tolerates arbitrary slice
/// boundaries (it tracks byte parity internally).
#[derive(Clone, Copy, Debug, Default)]
pub struct Accumulator {
    sum: u64,
    /// True when an odd number of bytes has been consumed so far.
    odd: bool,
    len: usize,
}

impl Accumulator {
    /// An empty accumulator (zero partial sum).
    pub fn new() -> Accumulator {
        Accumulator::default()
    }

    /// Start from an existing folded partial sum (e.g. a hardware seed).
    pub fn from_partial(sum: u16) -> Accumulator {
        Accumulator {
            sum: sum as u64,
            odd: false,
            len: 0,
        }
    }

    /// Total bytes consumed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append bytes to the running sum.
    ///
    /// The inner loop folds 8-byte lanes: because `2^16 ≡ 1 (mod 0xFFFF)`,
    /// summing 32-bit big-endian words gives the same folded 16-bit value
    /// as summing 16-bit words, so each chunk contributes two `u32` reads
    /// instead of four `u16` reads. Byte parity across calls is preserved
    /// by the same `odd` bookkeeping as the scalar path, and
    /// [`Accumulator::add_bytes_scalar`] remains as the property-tested
    /// reference.
    pub fn add_bytes(&mut self, mut data: &[u8]) {
        self.len += data.len();
        if self.odd && !data.is_empty() {
            // Previous chunk ended mid-word: this byte is the low half.
            self.sum += data[0] as u64;
            data = &data[1..];
            self.odd = false;
        }
        // Bound each block so its local sum stays far from u64 overflow
        // (a 1 GiB block of 0xFFFFFFFF words sums to < 2^60). The block
        // size is a multiple of 8, so only the final block sees a lane
        // remainder or an odd tail.
        const BLOCK: usize = 1 << 30;
        for block in data.chunks(BLOCK) {
            let mut s: u64 = 0;
            let mut lanes = block.chunks_exact(8);
            for c in &mut lanes {
                s += u32::from_be_bytes([c[0], c[1], c[2], c[3]]) as u64
                    + u32::from_be_bytes([c[4], c[5], c[6], c[7]]) as u64;
            }
            let rem = lanes.remainder();
            let mut words = rem.chunks_exact(2);
            for c in &mut words {
                s += u16::from_be_bytes([c[0], c[1]]) as u64;
            }
            // Fold lazily, only when the running sum gets near the top of
            // the u64 range (not on every call): ones-complement folding
            // commutes with addition, so deferring it is free, and eager
            // per-call folds cost a loop on the hot path.
            if self.sum >= FOLD_AT {
                self.sum = fold_u64(self.sum);
            }
            self.sum += s;
            let tail = words.remainder();
            if !tail.is_empty() {
                self.sum += (tail[0] as u64) << 8;
                self.odd = true;
            }
        }
    }

    /// Reference scalar path: 16-bit words, one at a time. Kept `pub` so
    /// property tests and the perf harness can compare the wide-lane
    /// [`Accumulator::add_bytes`] against it on arbitrary split boundaries.
    pub fn add_bytes_scalar(&mut self, mut data: &[u8]) {
        self.len += data.len();
        if self.odd && !data.is_empty() {
            self.sum += data[0] as u64;
            data = &data[1..];
            self.odd = false;
        }
        let mut chunks = data.chunks_exact(2);
        let mut s: u64 = 0;
        for c in &mut chunks {
            s += u16::from_be_bytes([c[0], c[1]]) as u64;
            if s >= FOLD_AT {
                s = fold_u64(s);
            }
        }
        if self.sum >= FOLD_AT {
            self.sum = fold_u64(self.sum);
        }
        self.sum += s;
        let rem = chunks.remainder();
        if !rem.is_empty() {
            self.sum += (rem[0] as u64) << 8;
            self.odd = true;
        }
    }

    /// Append a 16-bit word (network order).
    pub fn add_u16(&mut self, v: u16) {
        self.add_bytes(&v.to_be_bytes());
    }

    /// Append a 32-bit word (network order).
    pub fn add_u32(&mut self, v: u32) {
        self.add_bytes(&v.to_be_bytes());
    }

    /// Fold in another folded partial sum (must be word-aligned here; the CAB
    /// splits only on 4-byte boundaries, so this is its composition rule).
    pub fn add_partial(&mut self, partial: u16) {
        assert!(!self.odd, "partial sums combine only on even boundaries");
        self.sum += partial as u64;
    }

    /// The folded (uncomplemented) 16-bit partial sum.
    pub fn partial(&self) -> u16 {
        fold_u64(self.sum) as u16
    }

    /// The finalized, complemented checksum.
    pub fn finish(&self) -> Checksum {
        Checksum(!self.partial())
    }
}

/// Lazy-fold threshold: a running sum is folded only when it could
/// plausibly overflow with one more block's worth of additions (a 1 GiB
/// block of maximal words adds < 2^60). Far above `u32::MAX`, which the
/// accumulator used to fold at on every call.
const FOLD_AT: u64 = 1 << 62;

#[inline]
fn fold_u64(mut sum: u64) -> u64 {
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum
}

/// The IPv4 pseudo-header partial sum for TCP/UDP (RFC 793 / RFC 768).
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, transport_len: u16) -> u16 {
    let mut acc = Accumulator::new();
    acc.add_bytes(&src);
    acc.add_bytes(&dst);
    acc.add_u16(protocol as u16);
    acc.add_u16(transport_len);
    acc.partial()
}

/// RFC 1624 incremental update: recompute a checksum after a 16-bit field
/// changed from `old` to `new` without touching the rest of the data.
pub fn incremental_update(old_csum: Checksum, old_field: u16, new_field: u16) -> Checksum {
    // HC' = ~(C + (-m) + m') computed in ones-complement arithmetic.
    let partial = !old_csum.0;
    let partial = add16(partial, !old_field);
    let partial = add16(partial, new_field);
    Checksum(!partial)
}

/// Verify a transport segment: sum over pseudo-header + header + payload
/// (including the checksum field itself) must fold to `0xFFFF`.
pub fn verify_transport(pseudo_sum: u16, segment: &[u8]) -> bool {
    let mut acc = Accumulator::from_partial(pseudo_sum);
    acc.add_bytes(segment);
    acc.partial() == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1071's worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut acc = Accumulator::new();
        acc.add_bytes(&data);
        assert_eq!(acc.partial(), 0xddf2);
        assert_eq!(acc.finish(), Checksum(0x220d));
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(Checksum::of(&[0xAB]), Checksum::of(&[0xAB, 0x00]));
    }

    #[test]
    fn split_at_even_boundary_combines() {
        let data: Vec<u8> = (0u8..=200).collect();
        for split in (0..=200).step_by(2) {
            let mut whole = Accumulator::new();
            whole.add_bytes(&data);

            let mut a = Accumulator::new();
            a.add_bytes(&data[..split]);
            let mut b = Accumulator::new();
            b.add_bytes(&data[split..]);
            let mut combined = Accumulator::new();
            combined.add_partial(a.partial());
            combined.add_partial(b.partial());
            assert_eq!(whole.partial(), combined.partial(), "split at {split}");
        }
    }

    /// The wide-lane loop and the scalar reference agree on every length
    /// and alignment in a window that covers all lane/word/tail cases.
    #[test]
    fn wide_lanes_match_scalar_reference() {
        let data: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
        for start in 0..9 {
            for len in 0..64 {
                let slice = &data[start..start + len];
                let mut wide = Accumulator::new();
                wide.add_bytes(slice);
                let mut scalar = Accumulator::new();
                scalar.add_bytes_scalar(slice);
                assert_eq!(wide.partial(), scalar.partial(), "start {start} len {len}");
                assert_eq!(wide.len(), scalar.len());
            }
        }
        // Odd-parity carry across calls: split a buffer at every point and
        // feed the halves to different paths.
        let buf = &data[..257];
        let whole = Checksum::of(buf);
        for split in 0..buf.len() {
            let mut acc = Accumulator::new();
            acc.add_bytes(&buf[..split]);
            acc.add_bytes_scalar(&buf[split..]);
            assert_eq!(acc.finish(), whole, "split {split}");
        }
    }

    #[test]
    fn streaming_across_arbitrary_boundaries() {
        let data: Vec<u8> = (0u8..=250).cycle().take(999).collect();
        let whole = Checksum::of(&data);
        for chunk in [1usize, 3, 7, 16, 100] {
            let mut acc = Accumulator::new();
            for c in data.chunks(chunk) {
                acc.add_bytes(c);
            }
            assert_eq!(acc.finish(), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn seed_trick_matches_direct_checksum() {
        // The outboard transmit protocol: host computes the seed over the
        // header (with a zeroed checksum field) plus pseudo-header; hardware
        // adds the body sum and complements.
        let header = [0x12u8, 0x34, 0x56, 0x78, 0x00, 0x00, 0x9a, 0xbc];
        let body = [0xde, 0xad, 0xbe, 0xef, 0x01, 0x02];
        let pseudo = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 6, 14);

        // Direct software computation (what a traditional stack does).
        let mut sw = Accumulator::from_partial(pseudo);
        sw.add_bytes(&header);
        sw.add_bytes(&body);
        let direct = sw.finish();

        // Outboard: seed = headers + pseudo; hardware folds in the body.
        let mut seed = Accumulator::from_partial(pseudo);
        seed.add_bytes(&header);
        let mut hw = Accumulator::from_partial(seed.partial());
        hw.add_bytes(&body);
        assert_eq!(hw.finish(), direct);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00, 0x40, 0x06];
        data.extend_from_slice(&[0, 0, 10, 0, 0, 1, 10, 0, 0, 2]);
        let old = Checksum::of(&data);
        // Change the 16-bit field at offset 4 (the IP id).
        let old_field = u16::from_be_bytes([data[4], data[5]]);
        let new_field: u16 = 0xBEEF;
        data[4..6].copy_from_slice(&new_field.to_be_bytes());
        let recomputed = Checksum::of(&data);
        assert_eq!(incremental_update(old, old_field, new_field), recomputed);
    }

    #[test]
    fn verify_accepts_valid_and_rejects_corrupt() {
        let src = [192, 168, 1, 1];
        let dst = [192, 168, 1, 2];
        let mut seg = vec![0u8; 30];
        for (i, b) in seg.iter_mut().enumerate() {
            *b = i as u8;
        }
        // Checksum field at offset 16 (like TCP); zero it, compute, insert.
        seg[16] = 0;
        seg[17] = 0;
        let pseudo = pseudo_header_sum(src, dst, 6, seg.len() as u16);
        let mut acc = Accumulator::from_partial(pseudo);
        acc.add_bytes(&seg);
        let c = acc.finish();
        seg[16..18].copy_from_slice(&c.to_be_bytes());
        assert!(verify_transport(pseudo, &seg));
        seg[5] ^= 0x40;
        assert!(!verify_transport(pseudo, &seg));
    }

    #[test]
    fn add_sub_are_inverses() {
        for a in [0u16, 1, 0x7FFF, 0xFFFE, 0xFFFF] {
            for b in [0u16, 3, 0x8000, 0xFFFF] {
                let s = add16(a, b);
                // In ones-complement arithmetic 0x0000 and 0xFFFF are both
                // representations of zero; compare modulo that equivalence.
                let back = sub16(s, b);
                let eq = back == a || (back == 0xFFFF && a == 0) || (back == 0 && a == 0xFFFF);
                assert!(eq, "a={a:#x} b={b:#x} s={s:#x} back={back:#x}");
            }
        }
    }

    #[test]
    fn udp_zero_sum_requires_all_zero_terms() {
        // §4.3: a ones-complement sum folds to 0 only when every term is 0.
        // With a non-zero source address in the pseudo-header the folded sum
        // can never be 0x0000, so the UDP "no checksum" sentinel is safe.
        let pseudo = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 17, 8);
        let mut acc = Accumulator::from_partial(pseudo);
        acc.add_bytes(&[0u8; 8]);
        assert_ne!(acc.partial(), 0x0000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Checksumming is invariant under any chunking of the input.
        #[test]
        fn chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..2048),
                               cuts in proptest::collection::vec(0usize..2048, 0..8)) {
            let whole = Checksum::of(&data);
            let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
            cuts.sort_unstable();
            let mut acc = Accumulator::new();
            let mut prev = 0;
            for c in cuts {
                acc.add_bytes(&data[prev..c.max(prev)]);
                prev = c.max(prev);
            }
            acc.add_bytes(&data[prev..]);
            prop_assert_eq!(acc.finish(), whole);
        }

        /// The 8-byte-lane path equals the scalar reference under any
        /// chunking of the input (parity carries across both).
        #[test]
        fn wide_equals_scalar_any_chunking(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                           cuts in proptest::collection::vec(0usize..4096, 0..6)) {
            let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
            cuts.sort_unstable();
            let mut wide = Accumulator::new();
            let mut scalar = Accumulator::new();
            let mut prev = 0;
            for c in cuts {
                let c = c.max(prev);
                wide.add_bytes(&data[prev..c]);
                scalar.add_bytes_scalar(&data[prev..c]);
                prev = c;
            }
            wide.add_bytes(&data[prev..]);
            scalar.add_bytes_scalar(&data[prev..]);
            prop_assert_eq!(wide.partial(), scalar.partial());
            prop_assert_eq!(wide.len(), scalar.len());
        }

        /// Word-aligned partial sums always recombine exactly.
        #[test]
        fn word_partials_recombine(a in proptest::collection::vec(any::<u8>(), 0..512),
                                   b in proptest::collection::vec(any::<u8>(), 0..512)) {
            // Force word alignment of the first part, as the CAB does.
            let mut a = a;
            a.truncate(a.len() & !3);
            let mut whole = Accumulator::new();
            whole.add_bytes(&a);
            whole.add_bytes(&b);

            let mut pa = Accumulator::new();
            pa.add_bytes(&a);
            let mut pb = Accumulator::new();
            pb.add_bytes(&b);
            let mut comb = Accumulator::new();
            comb.add_partial(pa.partial());
            comb.add_partial(pb.partial());
            prop_assert_eq!(comb.partial(), whole.partial());
        }

        /// A segment stamped with its own checksum always verifies.
        #[test]
        fn stamped_segment_verifies(mut seg in proptest::collection::vec(any::<u8>(), 20..600),
                                    src in any::<[u8;4]>(), dst in any::<[u8;4]>()) {
            seg[16] = 0;
            seg[17] = 0;
            let pseudo = pseudo_header_sum(src, dst, 6, seg.len() as u16);
            let mut acc = Accumulator::from_partial(pseudo);
            acc.add_bytes(&seg);
            let c = acc.finish();
            seg[16..18].copy_from_slice(&c.to_be_bytes());
            prop_assert!(verify_transport(pseudo, &seg));
        }

        /// Flipping any single bit breaks verification.
        #[test]
        fn bitflip_detected(mut seg in proptest::collection::vec(any::<u8>(), 20..128),
                            bit in 0usize..1024) {
            seg[16] = 0;
            seg[17] = 0;
            let pseudo = pseudo_header_sum([1,2,3,4], [5,6,7,8], 6, seg.len() as u16);
            let mut acc = Accumulator::from_partial(pseudo);
            acc.add_bytes(&seg);
            let c = acc.finish();
            seg[16..18].copy_from_slice(&c.to_be_bytes());
            let bit = bit % (seg.len() * 8);
            seg[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(!verify_transport(pseudo, &seg));
        }

        /// RFC 1624 incremental update equals full recomputation.
        #[test]
        fn incremental_equals_recompute(mut data in proptest::collection::vec(any::<u8>(), 8..256),
                                        off in 0usize..64, newval in any::<u16>()) {
            let off = (off * 2) % (data.len() & !1);
            let old = Checksum::of(&data);
            let old_field = u16::from_be_bytes([data[off], data[off+1]]);
            data[off..off+2].copy_from_slice(&newval.to_be_bytes());
            let expect = Checksum::of(&data);
            let got = incremental_update(old, old_field, newval);
            // 0x0000/0xFFFF ambiguity: both complements of a zero sum.
            prop_assert!(got == expect || (got.0 == 0 && expect.0 == 0xFFFF) || (got.0 == 0xFFFF && expect.0 == 0));
        }
    }
}
