//! Simplified HIPPI-FP framing.
//!
//! The real Gigabit Nectar framing carries a HIPPI-FP header plus a D1 area;
//! what matters for this reproduction is its *shape*: a fixed-size,
//! word-aligned header in front of the IP datagram, so that
//!
//! * the CAB's receive checksum engine can start at a fixed word offset
//!   (`RX_CSUM_SKIP_WORDS` = HIPPI + IP headers, the paper's "20 words"
//!   adapted to our framing), and
//! * the transmit "skip S words" count (HIPPI + IP + TCP headers) is an
//!   integral number of 32-bit words.
//!
//! We use a 40-byte header: 20 bytes of fields and a 20-byte D1/padding area.

use crate::{be16, be32, put16, put32, WireError};

/// Total framing header length (word-aligned, fixed).
pub const HIPPI_HEADER_LEN: usize = 40;

/// `HIPPI_HEADER_LEN` in 32-bit words.
pub const HIPPI_HEADER_WORDS: usize = HIPPI_HEADER_LEN / 4;

/// ULP id we use for IPv4 ("IP-over-HIPPI" in this simulation).
pub const ULP_IPV4: u8 = 4;

/// Receive checksum start offset in words: HIPPI (10) + IPv4 (5) headers.
/// This is the simulation's analogue of the paper's "set to 20 words".
pub const RX_CSUM_SKIP_WORDS: usize = HIPPI_HEADER_WORDS + 5;

/// A HIPPI switch address (one per host port in the simulated fabric).
pub type HippiAddr = u32;

/// The simplified HIPPI-FP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HippiHeader {
    /// Upper-layer protocol (always [`ULP_IPV4`] here).
    pub ulp: u8,
    /// D2 (payload) size in bytes — the IP datagram length.
    pub d2_size: u32,
    /// Source port address in the switch fabric.
    pub src: HippiAddr,
    /// Destination port address in the switch fabric.
    pub dst: HippiAddr,
    /// Logical channel the sender queued this packet on (§2.1: used to avoid
    /// head-of-line blocking; FIFO MACs always send 0).
    pub channel: u16,
}

impl HippiHeader {
    /// A framing header carrying `payload_len` bytes of IPv4 from `src` to `dst` on `channel`.
    pub fn new(src: HippiAddr, dst: HippiAddr, payload_len: usize, channel: u16) -> HippiHeader {
        HippiHeader {
            ulp: ULP_IPV4,
            d2_size: payload_len as u32,
            src,
            dst,
            channel,
        }
    }

    /// Payload (D2 area) length in bytes.
    pub fn payload_len(&self) -> usize {
        self.d2_size as usize
    }

    /// Serialize into the fixed 40-byte wire format.
    pub fn build(&self) -> [u8; HIPPI_HEADER_LEN] {
        let mut b = [0u8; HIPPI_HEADER_LEN];
        b[0] = self.ulp;
        b[1] = 0; // version
        put16(&mut b, 2, 0); // flags
        put32(&mut b, 4, self.d2_size);
        put32(&mut b, 8, self.src);
        put32(&mut b, 12, self.dst);
        put16(&mut b, 16, self.channel);
        // 18..20 reserved, 20..40 D1/padding: zero.
        b
    }

    /// Parse a header from the front of `buf`, checking the payload fits.
    pub fn parse(buf: &[u8]) -> Result<HippiHeader, WireError> {
        if buf.len() < HIPPI_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let d2_size = be32(buf, 4);
        if d2_size as usize > buf.len() - HIPPI_HEADER_LEN {
            return Err(WireError::BadLength);
        }
        Ok(HippiHeader {
            ulp: buf[0],
            d2_size,
            src: be32(buf, 8),
            dst: be32(buf, 12),
            channel: be16(buf, 16),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_word_aligned() {
        assert_eq!(HIPPI_HEADER_LEN % 4, 0);
        assert_eq!(RX_CSUM_SKIP_WORDS * 4, HIPPI_HEADER_LEN + 20);
    }

    #[test]
    fn round_trip() {
        let h = HippiHeader::new(3, 7, 32 * 1024, 5);
        let mut buf = h.build().to_vec();
        buf.resize(HIPPI_HEADER_LEN + 32 * 1024, 0);
        assert_eq!(HippiHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn rejects_short_buffer_and_bad_d2() {
        assert_eq!(HippiHeader::parse(&[0u8; 10]), Err(WireError::Truncated));
        let h = HippiHeader::new(1, 2, 100, 0);
        let buf = h.build(); // no payload present
        assert_eq!(HippiHeader::parse(&buf), Err(WireError::BadLength));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn parser_is_total(buf in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = HippiHeader::parse(&buf);
        }

        #[test]
        fn round_trip(src in any::<u32>(), dst in any::<u32>(),
                      plen in 0usize..4096, ch in any::<u16>()) {
            let h = HippiHeader::new(src, dst, plen, ch);
            let mut buf = h.build().to_vec();
            buf.resize(HIPPI_HEADER_LEN + plen, 0xCC);
            prop_assert_eq!(HippiHeader::parse(&buf).unwrap(), h);
        }
    }
}
