//! Ethernet II framing for the traditional-path device.
//!
//! The paper's interoperability story (§5) requires a second, conventional
//! network interface next to the CAB; the testbed uses a 10 Mbit/s Ethernet
//! whose driver copies data and checksums in software. Note the 14-byte
//! header is *not* word-aligned — which is precisely why this device cannot
//! use the CAB's word-based checksum engine and must take the traditional
//! path.

use crate::{be16, put16, WireError};

/// Ethernet II header length.
pub const ETHER_HEADER_LEN: usize = 14;
/// Ethertype for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Classic Ethernet MTU.
pub const ETHER_MTU: usize = 1500;

/// A 48-bit MAC address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address, ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Deterministic locally-administered address derived from a host index.
    pub fn local(idx: u8) -> MacAddr {
        MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, idx])
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// An Ethernet II header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EtherHeader {
    /// Destination hardware address.
    pub dst: MacAddr,
    /// Source hardware address.
    pub src: MacAddr,
    /// EtherType of the payload (0x0800 for IPv4).
    pub ethertype: u16,
}

impl EtherHeader {
    /// An IPv4 frame header from `src` to `dst`.
    pub fn new(src: MacAddr, dst: MacAddr) -> EtherHeader {
        EtherHeader {
            dst,
            src,
            ethertype: ETHERTYPE_IPV4,
        }
    }

    /// Serialize into the 14-byte wire format.
    pub fn build(&self) -> [u8; ETHER_HEADER_LEN] {
        let mut b = [0u8; ETHER_HEADER_LEN];
        b[0..6].copy_from_slice(&self.dst.0);
        b[6..12].copy_from_slice(&self.src.0);
        put16(&mut b, 12, self.ethertype);
        b
    }

    /// Parse a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<EtherHeader, WireError> {
        if buf.len() < ETHER_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(EtherHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: be16(buf, 12),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = EtherHeader::new(MacAddr::local(1), MacAddr::local(2));
        let b = h.build();
        assert_eq!(EtherHeader::parse(&b).unwrap(), h);
    }

    #[test]
    fn header_is_not_word_aligned() {
        // Documented property that forces the traditional path.
        assert_ne!(ETHER_HEADER_LEN % 4, 0);
    }

    #[test]
    fn truncated() {
        assert_eq!(EtherHeader::parse(&[0; 13]), Err(WireError::Truncated));
    }

    #[test]
    fn display_mac() {
        assert_eq!(format!("{}", MacAddr::local(9)), "02:00:00:00:00:09");
    }
}
