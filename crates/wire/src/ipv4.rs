//! IPv4 header build/parse.
//!
//! The CAB does not "speak IP" (paper §4.3): the host builds every IP header,
//! including its header checksum, in software. This module is that software.
//! Options are not generated; received options are tolerated (skipped) so a
//! hostile peer cannot crash the stack.

use crate::checksum::{Accumulator, Checksum};
use crate::{be16, put16, WireError};
use std::net::Ipv4Addr;

/// Fixed IPv4 header length without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// Don't Fragment flag.
pub const IP_DF: u16 = 0x4000;
/// More Fragments flag.
pub const IP_MF: u16 = 0x2000;
/// Fragment offset mask (in 8-byte units).
pub const IP_OFFMASK: u16 = 0x1FFF;

/// A parsed or to-be-serialized IPv4 header (options never generated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Type-of-service byte.
    pub tos: u8,
    /// Total datagram length (header + payload), bytes.
    pub total_len: u16,
    /// Datagram identification (shared by all of its fragments).
    pub id: u16,
    /// Flags in the top 3 bits plus 13-bit fragment offset in 8-byte units.
    pub flags_frag: u16,
    /// Time to live (hop count budget).
    pub ttl: u8,
    /// Payload protocol number (see [`crate::proto`]).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Header length in bytes (>= 20; parse accepts options, build emits 20).
    pub header_len: u8,
}

impl Ipv4Header {
    /// A fresh header for an outgoing datagram.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload_len: usize, id: u16) -> Self {
        let total = IPV4_HEADER_LEN + payload_len;
        assert!(total <= u16::MAX as usize, "datagram too large for IPv4");
        Ipv4Header {
            tos: 0,
            total_len: total as u16,
            id,
            flags_frag: 0,
            ttl: 64,
            protocol,
            src,
            dst,
            header_len: IPV4_HEADER_LEN as u8,
        }
    }

    /// Fragment offset in bytes.
    pub fn frag_offset(&self) -> usize {
        ((self.flags_frag & IP_OFFMASK) as usize) * 8
    }

    /// True when the MF flag is set (more fragments follow).
    pub fn more_fragments(&self) -> bool {
        self.flags_frag & IP_MF != 0
    }

    /// True when the DF flag is set.
    pub fn dont_fragment(&self) -> bool {
        self.flags_frag & IP_DF != 0
    }

    /// True when this datagram is a fragment (offset != 0 or MF set).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments() || self.frag_offset() != 0
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> usize {
        self.total_len as usize - self.header_len as usize
    }

    /// Serialize into exactly [`IPV4_HEADER_LEN`] bytes with a correct header
    /// checksum.
    pub fn build(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut b = [0u8; IPV4_HEADER_LEN];
        b[0] = 0x45; // version 4, IHL 5
        b[1] = self.tos;
        put16(&mut b, 2, self.total_len);
        put16(&mut b, 4, self.id);
        put16(&mut b, 6, self.flags_frag);
        b[8] = self.ttl;
        b[9] = self.protocol;
        // checksum at 10..12 stays zero during computation
        b[12..16].copy_from_slice(&self.src.octets());
        b[16..20].copy_from_slice(&self.dst.octets());
        let c = Checksum::of(&b);
        b[10..12].copy_from_slice(&c.to_be_bytes());
        b
    }

    /// Parse and validate a header from the front of `buf`.
    ///
    /// Checks: length, version, IHL, total-length plausibility and the header
    /// checksum. Returns the header; the payload is `buf[header_len..total_len]`.
    pub fn parse(buf: &[u8]) -> Result<Ipv4Header, WireError> {
        Ipv4Header::parse_with_limit(buf, buf.len())
    }

    /// Like [`Ipv4Header::parse`], but the datagram's bytes may extend
    /// beyond `buf` up to `available` bytes (the CAB's auto-DMA hands the
    /// host only the first L words of a large packet; the rest is outboard).
    pub fn parse_with_limit(buf: &[u8], available: usize) -> Result<Ipv4Header, WireError> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::Malformed);
        }
        let ihl = (buf[0] & 0x0F) as usize * 4;
        if !(IPV4_HEADER_LEN..=60).contains(&ihl) || buf.len() < ihl {
            return Err(WireError::Malformed);
        }
        let total_len = be16(buf, 2);
        if (total_len as usize) < ihl || total_len as usize > available.max(buf.len()) {
            return Err(WireError::BadLength);
        }
        let mut acc = Accumulator::new();
        acc.add_bytes(&buf[..ihl]);
        if acc.partial() != 0xFFFF {
            return Err(WireError::BadChecksum);
        }
        Ok(Ipv4Header {
            tos: buf[1],
            total_len,
            id: be16(buf, 4),
            flags_frag: be16(buf, 6),
            ttl: buf[8],
            protocol: buf[9],
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            header_len: ihl as u8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            crate::proto::TCP,
            100,
            0x1234,
        )
    }

    fn padded(h: &Ipv4Header) -> Vec<u8> {
        let mut buf = h.build().to_vec();
        buf.resize(h.total_len as usize, 0);
        buf
    }

    #[test]
    fn build_parse_round_trip() {
        let h = sample();
        let parsed = Ipv4Header::parse(&padded(&h)).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.payload_len(), 100);
    }

    #[test]
    fn checksum_is_verified() {
        let mut bytes = padded(&sample());
        bytes[8] = bytes[8].wrapping_add(1); // mangle TTL
        assert_eq!(Ipv4Header::parse(&bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn rejects_short_and_bad_version() {
        assert_eq!(Ipv4Header::parse(&[0u8; 10]), Err(WireError::Truncated));
        let mut bytes = sample().build();
        bytes[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::parse(&bytes), Err(WireError::Malformed));
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let h = sample();
        let bytes = h.build();
        // Claim 100-byte payload but hand only the header to the parser.
        assert_eq!(Ipv4Header::parse(&bytes[..20]), Err(WireError::BadLength));
        // With a buffer big enough it parses.
        let mut buf = bytes.to_vec();
        buf.resize(120, 0);
        assert!(Ipv4Header::parse(&buf).is_ok());
    }

    #[test]
    fn fragment_fields() {
        let mut h = sample();
        h.flags_frag = IP_MF | 185; // offset 185*8 = 1480 bytes
        assert!(h.more_fragments());
        assert!(h.is_fragment());
        assert_eq!(h.frag_offset(), 1480);
        h.flags_frag = IP_DF;
        assert!(h.dont_fragment());
        assert!(!h.is_fragment());
    }

    #[test]
    fn parse_accepts_options() {
        // Hand-build a 24-byte header (IHL=6) with one option word.
        let mut b = vec![0u8; 24];
        b[0] = 0x46;
        put16(&mut b, 2, 24);
        b[8] = 64;
        b[9] = 17;
        b[12..16].copy_from_slice(&[1, 1, 1, 1]);
        b[16..20].copy_from_slice(&[2, 2, 2, 2]);
        b[20] = 0x01; // NOP option
        let c = Checksum::of(&b[..24]);
        b[10..12].copy_from_slice(&c.to_be_bytes());
        let h = Ipv4Header::parse(&b).unwrap();
        assert_eq!(h.header_len, 24);
        assert_eq!(h.payload_len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser never panics on arbitrary bytes.
        #[test]
        fn parser_is_total(buf in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Ipv4Header::parse(&buf);
        }

        /// Round trip holds for arbitrary field values.
        #[test]
        fn round_trip(tos in any::<u8>(), id in any::<u16>(), ttl in 1u8..,
                      payload in 0usize..1000, proto in any::<u8>(),
                      src in any::<[u8;4]>(), dst in any::<[u8;4]>(),
                      flags in 0u16..8) {
            let mut h = Ipv4Header::new(src.into(), dst.into(), proto, payload, id);
            h.tos = tos;
            h.ttl = ttl;
            h.flags_frag = flags << 13 | 7;
            let mut buf = h.build().to_vec();
            buf.resize(20 + payload, 0xAA);
            let parsed = Ipv4Header::parse(&buf).unwrap();
            prop_assert_eq!(parsed, h);
        }
    }
}
