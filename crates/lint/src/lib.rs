//! `outboard-lint`: the workspace's own static-analysis pass.
//!
//! The reproduction makes two promises the compiler cannot check for us:
//! the TX/RX hot path never panics (the fault-injection PR made every
//! driver failure a typed `CabError`), and every run is byte-identical
//! given the same seed (the parallel-sweep PR gates on it). Both used to
//! be guarded by a shell `grep` in CI. This crate replaces that with a
//! token-aware scanner — comments, string literals, and `#[cfg(test)]`
//! regions are masked before any rule runs — plus a small rule registry:
//!
//! * `panic-hot-path` — no `panic!`/`unwrap`/`expect`/`unreachable!`/
//!   `todo!` in any fn reachable from a hot-path entry point;
//! * `nondet-order` — no `HashMap`/`HashSet` types in sim-facing crates
//!   unless pragma'd as lookup-only;
//! * `wallclock` — no `Instant`/`SystemTime`/environment reads in
//!   reachable fns outside `crates/bench`;
//! * `metrics-naming` — metric names must fit the `host{i}.cab{j}.*` /
//!   `world.*` taxonomy (which includes the causal-tracing
//!   `world.spans.*` namespace, the windowed-telemetry
//!   `world.timeline.*` namespace, and the flight-recorder series
//!   names);
//! * `span-balance` — a `span_open` in a hot-path module must have a
//!   matching `span_close`/`span_drop` in the same function;
//! * `payload-alloc` — no `vec![…]`/`Vec::with_capacity`/`.to_vec()` in
//!   reachable fns of the netsim/mbuf frame crates: payload storage
//!   comes from `sim::pool`;
//! * `bad-pragma` — malformed or unknown-rule suppressions;
//! * `stale-pragma` — a suppression that suppresses nothing.
//!
//! Since PR 9 the three hot-path rules are scoped by **interprocedural
//! reachability**: [`graph`] extracts a workspace symbol table and call
//! graph from the masked token streams, computes the transitive closure
//! of the declared entry points ([`graph::DEFAULT_ROOTS`]), and every
//! finding carries the witness call chain that proves the flagged line is
//! hot. The legacy file-list scoping survives behind
//! [`rules::RuleScope::FileList`] (CLI `--no-graph`) for comparison.
//!
//! Suppression: `// lint: allow(rule-name, reason)` on the flagged line or
//! the line directly above it. The reason is mandatory.

pub mod graph;
pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use graph::{FileRecord, Graph, RootSpec, DEFAULT_ROOTS};
use rules::{FileScope, RuleScope};

/// One hop of a witness call chain, root first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Display name (`Kernel::sys_write`, `module::helper`).
    pub name: String,
    /// Workspace-relative path of the declaring file.
    pub file: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Witness call chain from a declared root to the enclosing fn
    /// (empty for rules that are not reachability-scoped, and in legacy
    /// file-list mode).
    pub chain: Vec<Hop>,
}

impl Finding {
    /// Stable identifier used by `--explain` and the v2 JSON report.
    pub fn id(&self) -> String {
        format!("{}@{}:{}", self.rule, self.file, self.line)
    }
}

/// How to scan: graph scoping (the default) or the legacy file lists.
#[derive(Clone, Debug)]
pub struct ScanOptions {
    /// Scope `panic-hot-path`/`payload-alloc`/`wallclock` by call-graph
    /// reachability (`false` restores the PR-4 file-list behavior).
    pub graph: bool,
    /// Root specs (`name` or `Type::name`); empty means
    /// [`graph::DEFAULT_ROOTS`].
    pub roots: Vec<String>,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            graph: true,
            roots: Vec::new(),
        }
    }
}

fn root_specs(opts: &ScanOptions) -> Vec<RootSpec> {
    if opts.roots.is_empty() {
        DEFAULT_ROOTS.iter().map(|s| RootSpec::parse(s)).collect()
    } else {
        opts.roots.iter().map(|s| RootSpec::parse(s)).collect()
    }
}

/// Per-file reachability scopes for a set of lexed files.
fn build_scopes(recs: &[FileRecord], opts: &ScanOptions) -> Vec<FileScope> {
    let mut scopes: Vec<FileScope> = (0..recs.len()).map(|_| FileScope::default()).collect();
    if !opts.graph {
        return scopes;
    }
    let g = Graph::build(recs);
    let roots = g.resolve_roots(&root_specs(opts));
    let reach = g.reachable(&roots);
    for &id in reach.keys() {
        let n = &g.fns[id];
        let Some((start, end)) = n.body else {
            continue;
        };
        let hops: Vec<Hop> = g
            .chain(&reach, id)
            .into_iter()
            .map(|c| Hop {
                name: g.qualified_name(c),
                file: g.fns[c].file.clone(),
                line: g.fns[c].line,
            })
            .collect();
        scopes[n.file_idx].hot.push((start, end, hops));
    }
    scopes
}

/// Scan a set of in-memory files as one workspace: lex and index every
/// file, build the call graph (graph mode), run the per-file rules, apply
/// pragma suppression, and report stale pragmas. `inputs` are
/// `(workspace-relative path, contents)` pairs. Findings come back sorted
/// by `(file, line, rule)`.
pub fn scan_files(inputs: &[(String, String)], opts: &ScanOptions) -> Vec<Finding> {
    let recs: Vec<FileRecord> = inputs
        .iter()
        .map(|(rel, src)| FileRecord::new(rel, src))
        .collect();
    let scopes = build_scopes(&recs, opts);
    let mut findings = Vec::new();
    for (i, rec) in recs.iter().enumerate() {
        let scope = if opts.graph {
            RuleScope::Graph(&scopes[i])
        } else {
            RuleScope::FileList
        };
        let raw = rules::run_all(&rec.rel, &rec.raw, &rec.lex, &rec.index, &scope);
        // Suppression: a pragma covers its own line and the line below.
        // Track which pragmas earned their keep for the stale check.
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for f in raw {
            if f.rule == "bad-pragma" {
                findings.push(f);
                continue;
            }
            let pragma = rec
                .lex
                .pragmas
                .iter()
                .find(|p| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line));
            match pragma {
                Some(p) => {
                    used.insert(p.line);
                }
                None => findings.push(f),
            }
        }
        // Stale pragmas: well-formed, known-rule suppressions outside test
        // regions that suppressed nothing. Not itself suppressible.
        for p in &rec.lex.pragmas {
            if used.contains(&p.line)
                || !rules::RULE_NAMES.contains(&p.rule.as_str())
                || rec.lex.is_test_line(p.line)
            {
                continue;
            }
            let snippet: String = rec
                .raw
                .lines()
                .nth(p.line.saturating_sub(1))
                .unwrap_or("")
                .trim()
                .chars()
                .take(120)
                .collect();
            findings.push(Finding {
                rule: "stale-pragma",
                file: rec.rel.clone(),
                line: p.line,
                message: format!(
                    "pragma allows `{}` but suppresses no findings under the current scoping — delete it",
                    p.rule
                ),
                snippet,
                chain: Vec::new(),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Scan one file's contents in legacy (file-list) scope, without the
/// workspace-level stale-pragma pass. Kept for single-file spot checks;
/// the workspace pipeline goes through [`scan_files`].
pub fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    let rec = FileRecord::new(rel, src);
    let findings = rules::run_all(rel, src, &rec.lex, &rec.index, &RuleScope::FileList);
    findings
        .into_iter()
        .filter(|f| {
            if f.rule == "bad-pragma" {
                return true;
            }
            !rec.lex
                .pragmas
                .iter()
                .any(|p| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line))
        })
        .collect()
}

/// Every `.rs` file under `crates/*/src` and the root `src/`, as
/// `(workspace-relative path, contents)` pairs in sorted path order.
pub fn workspace_inputs(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    let mut inputs = Vec::with_capacity(files.len());
    for path in &files {
        let src = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        inputs.push((rel, src));
    }
    Ok(inputs)
}

/// Scan the whole workspace rooted at `root`. Returns
/// (files scanned, findings), findings sorted by (file, line, rule) for a
/// deterministic report.
pub fn scan_workspace(root: &Path, opts: &ScanOptions) -> io::Result<(usize, Vec<Finding>)> {
    let inputs = workspace_inputs(root)?;
    let findings = scan_files(&inputs, opts);
    Ok((inputs.len(), findings))
}

/// The call-graph debug listing for a set of files: stats, resolved
/// roots, and every reachable fn with its BFS parent (CLI `--graph`).
pub fn graph_listing(inputs: &[(String, String)], opts: &ScanOptions) -> String {
    let recs: Vec<FileRecord> = inputs
        .iter()
        .map(|(rel, src)| FileRecord::new(rel, src))
        .collect();
    let g = Graph::build(&recs);
    let roots = g.resolve_roots(&root_specs(opts));
    let reach = g.reachable(&roots);
    g.render(&roots, &reach)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render one witness chain as `a (file:line) -> b (file:line)`.
pub fn render_chain(chain: &[Hop]) -> String {
    chain
        .iter()
        .map(|h| format!("{} ({}:{})", h.name, h.file, h.line))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Render the human report.
pub fn render_human(files_scanned: usize, findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    {}", f.snippet);
        }
        if !f.chain.is_empty() {
            let _ = writeln!(out, "    via {}", render_chain(&f.chain));
        }
    }
    let _ = writeln!(
        out,
        "outboard-lint: {} file{} scanned, {} finding{}",
        files_scanned,
        if files_scanned == 1 { "" } else { "s" },
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
    );
    out
}

/// Render the machine-readable report (hand-rolled JSON; the build is
/// offline, so no serde). Schema `outboard-lint-v2`: each finding carries
/// a stable `id` and its witness `chain`.
pub fn render_json(root: &Path, files_scanned: usize, findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": \"outboard-lint-v2\",");
    let _ = writeln!(out, "  \"root\": \"{}\",", esc(&root.display().to_string()));
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"finding_count\": {},", findings.len());
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"id\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\", \"chain\": [",
            esc(&f.id()),
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.message),
            esc(&f.snippet)
        );
        for (j, h) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                esc(&h.name),
                esc(&h.file),
                h.line
            );
        }
        out.push_str("]}");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render a SARIF 2.1.0 report: one run, one rule descriptor per
/// registered rule, one result per finding, with the witness chain as a
/// `codeFlow` so CI viewers can walk root → sink.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
    );
    let _ = writeln!(out, "  \"version\": \"2.1.0\",");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    let _ = writeln!(out, "          \"name\": \"outboard-lint\",");
    let _ = writeln!(
        out,
        "          \"informationUri\": \"https://example.invalid/outboard-lint\","
    );
    out.push_str("          \"rules\": [");
    for (i, rule) in rules::RULE_NAMES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": \"{rule}\", \"shortDescription\": {{\"text\": \"{rule}\"}}}}"
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {\n");
        let rule_index = rules::RULE_NAMES
            .iter()
            .position(|r| *r == f.rule)
            .unwrap_or(0);
        let _ = writeln!(out, "          \"ruleId\": \"{}\",", esc(f.rule));
        let _ = writeln!(out, "          \"ruleIndex\": {rule_index},");
        let _ = writeln!(out, "          \"level\": \"error\",");
        let _ = writeln!(
            out,
            "          \"message\": {{\"text\": \"{}\"}},",
            esc(&f.message)
        );
        let _ = write!(
            out,
            "          \"locations\": [{}]",
            sarif_location(&f.file, f.line, None)
        );
        if !f.chain.is_empty() {
            out.push_str(",\n          \"codeFlows\": [{\"threadFlows\": [{\"locations\": [");
            for (j, h) in f.chain.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"location\": {}}}",
                    sarif_location(&h.file, h.line, Some(&h.name))
                );
            }
            out.push_str("]}]}]");
        }
        out.push_str("\n        }");
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn sarif_location(file: &str, line: usize, message: Option<&str>) -> String {
    let mut loc = String::new();
    loc.push('{');
    if let Some(m) = message {
        let _ = write!(loc, "\"message\": {{\"text\": \"{}\"}}, ", esc(m));
    }
    let _ = write!(
        loc,
        "\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}",
        esc(file),
        line.max(1)
    );
    loc.push('}');
    loc
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One self-check fixture: a tiny workspace (one or more files) that must
/// produce exactly `expect` findings of `rule`. `roots` overrides the
/// default entry-point set; `legacy` runs the fixture in file-list scope.
struct Fixture {
    name: &'static str,
    files: &'static [(&'static str, &'static str)],
    rule: &'static str,
    expect: usize,
    roots: &'static [&'static str],
    legacy: bool,
}

const NO_ROOTS: &[&str] = &[];

macro_rules! fx {
    ($name:literal, $rule:literal, $expect:literal, $files:expr) => {
        Fixture {
            name: $name,
            files: $files,
            rule: $rule,
            expect: $expect,
            roots: NO_ROOTS,
            legacy: false,
        }
    };
    ($name:literal, $rule:literal, $expect:literal, $files:expr, roots: $roots:expr) => {
        Fixture {
            name: $name,
            files: $files,
            rule: $rule,
            expect: $expect,
            roots: $roots,
            legacy: false,
        }
    };
    ($name:literal, $rule:literal, $expect:literal, $files:expr, legacy) => {
        Fixture {
            name: $name,
            files: $files,
            rule: $rule,
            expect: $expect,
            roots: NO_ROOTS,
            legacy: true,
        }
    };
}

const FIXTURES: &[Fixture] = &[
    // ── panic-hot-path ────────────────────────────────────────────────
    fx!(
        "panic fires in a reachable root",
        "panic-hot-path",
        1,
        &[(
            "crates/core/src/kernel/output.rs",
            "pub fn sys_write(x: Option<u32>) -> u32 { x.unwrap() }\n"
        )]
    ),
    fx!(
        "panic! macro fires",
        "panic-hot-path",
        1,
        &[("crates/cab/src/cab.rs", "pub fn cab_output() { panic!(\"boom\") }\n")]
    ),
    fx!(
        "unreachable fires",
        "panic-hot-path",
        1,
        &[("crates/core/src/kernel/input.rs", "pub fn rx_interrupt() { unreachable!() }\n")]
    ),
    fx!(
        "panic in an unreachable fn ignored",
        "panic-hot-path",
        0,
        &[("crates/core/src/tcp.rs", "fn cold(x: Option<u32>) -> u32 { x.unwrap() }\n")]
    ),
    fx!(
        "panic in string literal ignored",
        "panic-hot-path",
        0,
        &[(
            "crates/cab/src/cab.rs",
            "pub fn cab_output() -> &'static str { \"do not panic!() or .unwrap()\" }\n"
        )]
    ),
    fx!(
        "panic in comment ignored",
        "panic-hot-path",
        0,
        &[("crates/cab/src/cab.rs", "pub fn cab_output() {} // would panic!() and .unwrap() here\n")]
    ),
    fx!(
        "panic in cfg(test) module ignored",
        "panic-hot-path",
        0,
        &[(
            "crates/cab/src/cab.rs",
            "pub fn cab_output() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(); }\n}\n"
        )]
    ),
    fx!(
        "unwrap_or is not unwrap",
        "panic-hot-path",
        0,
        &[(
            "crates/cab/src/cab.rs",
            "pub fn cab_output(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n"
        )]
    ),
    fx!(
        "pragma suppresses panic-hot-path",
        "panic-hot-path",
        0,
        &[(
            "crates/cab/src/cab.rs",
            "pub fn cab_output(x: Option<u32>) -> u32 {\n    // lint: allow(panic-hot-path, invariant upheld by alloc)\n    x.unwrap()\n}\n"
        )]
    ),
    fx!(
        "call graph catches a panic in a helper file the list never covered",
        "panic-hot-path",
        1,
        &[
            (
                "crates/core/src/kernel/output.rs",
                "use crate::scatter::finish;\npub fn sys_write() { finish(None) }\n"
            ),
            (
                "crates/core/src/scatter.rs",
                "pub fn finish(x: Option<u32>) -> u32 { x.unwrap() }\n"
            )
        ]
    ),
    fx!(
        "legacy file-list scoping misses the same helper",
        "panic-hot-path",
        0,
        &[
            (
                "crates/core/src/kernel/output.rs",
                "use crate::scatter::finish;\npub fn sys_write() { finish(None) }\n"
            ),
            (
                "crates/core/src/scatter.rs",
                "pub fn finish(x: Option<u32>) -> u32 { x.unwrap() }\n"
            )
        ],
        legacy
    ),
    fx!(
        "legacy file-list scoping still fires inside a listed file",
        "panic-hot-path",
        1,
        &[(
            "crates/core/src/kernel/output.rs",
            "fn not_a_root(x: Option<u32>) -> u32 { x.unwrap() }\n"
        )],
        legacy
    ),
    fx!(
        "method chain through an impl reaches the panic",
        "panic-hot-path",
        1,
        &[(
            "crates/core/src/kernel/output.rs",
            "impl Kernel {\n    pub fn sys_write(&mut self) { self.flush() }\n    fn flush(&self) { None::<u32>.unwrap(); }\n}\n"
        )]
    ),
    fx!(
        "custom roots override the default entry points",
        "panic-hot-path",
        1,
        &[(
            "crates/sim/src/engine.rs",
            "pub fn my_entry() { helper() }\nfn helper() { None::<u32>.unwrap(); }\n"
        )],
        roots: &["my_entry"]
    ),
    fx!(
        "fn reachable only from a test fn stays cold",
        "panic-hot-path",
        0,
        &[(
            "crates/core/src/tcp.rs",
            "fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::helper(Some(1)); }\n}\n"
        )]
    ),
    // ── nondet-order ──────────────────────────────────────────────────
    fx!(
        "hashmap type fires in sim-facing crate",
        "nondet-order",
        1,
        &[(
            "crates/testbed/src/world.rs",
            "use std::collections::HashMap;\npub struct W { links: HashMap<u32, u32> }\n"
        )]
    ),
    fx!(
        "hashset fires too",
        "nondet-order",
        1,
        &[(
            "crates/core/src/ip.rs",
            "use std::collections::HashSet;\nfn f(s: &HashSet<u32>) -> usize { s.len() }\n"
        )]
    ),
    fx!(
        "btreemap is fine",
        "nondet-order",
        0,
        &[(
            "crates/testbed/src/world.rs",
            "use std::collections::BTreeMap;\npub struct W { links: BTreeMap<u32, u32> }\n"
        )]
    ),
    fx!(
        "pragma suppresses nondet-order",
        "nondet-order",
        0,
        &[(
            "crates/core/src/sockbuf.rs",
            "use std::collections::HashMap;\npub struct C {\n    // lint: allow(nondet-order, keyed lookup only, never iterated)\n    live: HashMap<u64, u32>,\n}\n"
        )]
    ),
    fx!(
        "hashmap outside sim-facing crates ignored",
        "nondet-order",
        0,
        &[(
            "crates/wire/src/lib.rs",
            "use std::collections::HashMap;\npub struct W { m: HashMap<u32, u32> }\n"
        )]
    ),
    fx!(
        "type-alias RHS with fully-qualified path fires",
        "nondet-order",
        1,
        &[(
            "crates/core/src/sockbuf.rs",
            "type PeerMap = std::collections::HashMap<u32, u32>;\n"
        )]
    ),
    fx!(
        "fully-qualified path in a signature fires",
        "nondet-order",
        1,
        &[(
            "crates/host/src/mem.rs",
            "fn f(m: &std::collections::HashMap<u32, u32>) -> usize { m.len() }\n"
        )]
    ),
    fx!(
        "turbofish constructor fires",
        "nondet-order",
        1,
        &[(
            "crates/sim/src/engine.rs",
            "fn f() -> usize { std::collections::HashMap::<u32, u32>::new().len() }\n"
        )]
    ),
    fx!(
        "use-rename of HashMap fires at the renamed type position",
        "nondet-order",
        1,
        &[(
            "crates/netsim/src/link.rs",
            "use std::collections::HashMap as Peers;\npub struct S { p: Peers<u32, u32> }\n"
        )]
    ),
    fx!(
        "use-rename of BTreeMap stays quiet",
        "nondet-order",
        0,
        &[(
            "crates/netsim/src/link.rs",
            "use std::collections::BTreeMap as Peers;\npub struct S { p: Peers<u32, u32> }\n"
        )]
    ),
    fx!(
        "bare constructor without a type position stays exempt",
        "nondet-order",
        0,
        &[(
            "crates/core/src/ip.rs",
            "use std::collections::HashMap;\nfn f() -> usize { seed(HashMap::new()) }\n"
        )]
    ),
    // ── wallclock ─────────────────────────────────────────────────────
    fx!(
        "instant fires in a reachable fn",
        "wallclock",
        1,
        &[(
            "crates/core/src/tcp.rs",
            "pub fn sys_write() { let _t = std::time::Instant::now(); }\n"
        )]
    ),
    fx!(
        "env var read fires under a custom root",
        "wallclock",
        1,
        &[(
            "crates/sim/src/lib.rs",
            "pub fn f() -> bool { std::env::var(\"JOBS\").is_ok() }\n"
        )],
        roots: &["f"]
    ),
    fx!(
        "instant in bench is fine",
        "wallclock",
        0,
        &[("crates/bench/src/perf.rs", "pub fn sys_write() { let _t = std::time::Instant::now(); }\n")]
    ),
    fx!(
        "wallclock in a cold config reader ignored under graph scoping",
        "wallclock",
        0,
        &[(
            "crates/sim/src/engine.rs",
            "pub fn from_env() -> bool { std::env::var(\"X\").is_ok() }\n"
        )]
    ),
    fx!(
        "legacy scoping still flags cold config readers",
        "wallclock",
        1,
        &[(
            "crates/sim/src/engine.rs",
            "pub fn from_env() -> bool { std::env::var(\"X\").is_ok() }\n"
        )],
        legacy
    ),
    // ── metrics-naming ────────────────────────────────────────────────
    fx!(
        "bad metric name fires",
        "metrics-naming",
        1,
        &[("crates/host/src/cpu.rs", "fn f(s: &mut Scope) { s.counter(\"Bad Name\", 1); }\n")]
    ),
    fx!(
        "taxonomy name passes",
        "metrics-naming",
        0,
        &[("crates/host/src/cpu.rs", "fn f(s: &mut Scope) { s.counter(\"tcp.segs_out\", 1); }\n")]
    ),
    fx!(
        "format-hole name passes",
        "metrics-naming",
        0,
        &[(
            "crates/cab/src/cab.rs",
            "fn f(s: &mut Scope, ch: u16) { s.counter(&format!(\"channel.{ch}.frames_tx\"), 1); }\n"
        )]
    ),
    fx!(
        "non-literal metric name skipped",
        "metrics-naming",
        0,
        &[("crates/sim/src/obs.rs", "fn f(s: &mut Scope, name: &str) { s.counter(name, 1); }\n")]
    ),
    fx!(
        "spans metric namespace passes taxonomy",
        "metrics-naming",
        0,
        &[(
            "crates/testbed/src/world.rs",
            "fn f(s: &mut Scope) { s.counter(\"world.spans.opened\", 1); s.counter(\"world.spans.mdma_rx.p99_ns\", 1); }\n"
        )]
    ),
    fx!(
        "chaos metric namespace passes taxonomy",
        "metrics-naming",
        0,
        &[(
            "crates/testbed/src/world.rs",
            "fn f(w: &mut Scope) { let mut c = w.sub(\"chaos\"); c.counter(\"events_applied\", 1); c.counter(\"world.chaos.down_drops\", 1); }\n"
        )]
    ),
    fx!(
        "malformed chaos metric name fires",
        "metrics-naming",
        1,
        &[(
            "crates/testbed/src/world.rs",
            "fn f(w: &mut Scope) { w.counter(\"world.chaos.Bad-Kind\", 1); }\n"
        )]
    ),
    fx!(
        "timeline metric namespace passes taxonomy",
        "metrics-naming",
        0,
        &[(
            "crates/testbed/src/world.rs",
            "fn f(w: &mut Scope) { let mut t = w.sub(\"timeline\"); t.counter(\"windows\", 1); t.counter(\"world.timeline.window_ns\", 1); }\n"
        )]
    ),
    fx!(
        "flight-recorder series names pass taxonomy",
        "metrics-naming",
        0,
        &[(
            "crates/testbed/src/world.rs",
            "fn f(w: &mut Scope, i: usize) { w.counter(&format!(\"host{i}.engine_busy_ns\"), 1); w.counter(\"world.pool_in_use\", 1); w.counter(\"world.faults\", 1); }\n"
        )]
    ),
    fx!(
        "malformed timeline metric name fires",
        "metrics-naming",
        1,
        &[(
            "crates/testbed/src/world.rs",
            "fn f(w: &mut Scope) { w.counter(\"world.timeline.Window NS\", 1); }\n"
        )]
    ),
    // ── span-balance ──────────────────────────────────────────────────
    fx!(
        "unbalanced span_open fires on hot path",
        "span-balance",
        1,
        &[(
            "crates/core/src/kernel/input.rs",
            "fn f(k: &mut K, now: Time) { k.spans.span_open(1, FlowId::NONE, Stage::Sockbuf, now, 0); }\n"
        )]
    ),
    fx!(
        "span_open with close in same fn is balanced",
        "span-balance",
        0,
        &[(
            "crates/core/src/kernel/input.rs",
            "fn f(k: &mut K, now: Time) {\n    k.spans.span_open(1, FlowId::NONE, Stage::Sockbuf, now, 0);\n    k.spans.span_close(1, Stage::Sockbuf, now);\n}\n"
        )]
    ),
    fx!(
        "span_open with drop in same fn is balanced",
        "span-balance",
        0,
        &[(
            "crates/core/src/kernel/robust.rs",
            "fn f(k: &mut K, now: Time) {\n    k.spans.span_open(1, FlowId::NONE, Stage::Wire, now, 0);\n    k.spans.span_drop(1, Stage::Wire, now);\n}\n"
        )]
    ),
    fx!(
        "span helpers off hot path ignored",
        "span-balance",
        0,
        &[(
            "crates/core/src/kernel/mod.rs",
            "fn f(k: &mut K, now: Time) { k.spans.span_open(1, FlowId::NONE, Stage::Sockbuf, now, 0); }\n"
        )]
    ),
    fx!(
        "detour helper call is not a span_open",
        "span-balance",
        0,
        &[(
            "crates/core/src/kernel/robust.rs",
            "fn f(k: &mut K, now: Time) { k.span_detour_open(IfaceId(0), Stage::RetryDwell, now); }\n"
        )]
    ),
    // ── payload-alloc ─────────────────────────────────────────────────
    fx!(
        "vec! payload on the reachable link path fires",
        "payload-alloc",
        1,
        &[(
            "crates/netsim/src/link.rs",
            "impl Link {\n    pub fn transmit(&mut self) -> Vec<u8> { vec![0u8; 1500] }\n}\n"
        )]
    ),
    fx!(
        "with_capacity on the mbuf path fires",
        "payload-alloc",
        1,
        &[(
            "crates/mbuf/src/mbuf.rs",
            "pub fn cluster() -> Vec<u8> { Vec::with_capacity(4096) }\n"
        )],
        roots: &["cluster"]
    ),
    fx!(
        "to_vec copy on the fault path fires",
        "payload-alloc",
        1,
        &[(
            "crates/netsim/src/fault.rs",
            "impl FaultInjector {\n    pub fn fate(&mut self, b: &[u8]) -> Vec<u8> { b.to_vec() }\n}\n"
        )]
    ),
    fx!(
        "pooled acquire does not fire",
        "payload-alloc",
        0,
        &[(
            "crates/netsim/src/link.rs",
            "impl Link {\n    pub fn transmit(&mut self, p: &BufPool) -> (Vec<u8>, Ticket) { p.acquire(1500) }\n}\n"
        )]
    ),
    fx!(
        "pragma suppresses payload-alloc",
        "payload-alloc",
        0,
        &[(
            "crates/mbuf/src/chain.rs",
            "pub fn flatten(len: usize) -> Vec<u8> {\n    // lint: allow(payload-alloc, verification gather off the transfer path)\n    Vec::with_capacity(len)\n}\n"
        )],
        roots: &["flatten"]
    ),
    fx!(
        "vec! in pool module ignored",
        "payload-alloc",
        0,
        &[(
            "crates/sim/src/pool.rs",
            "pub fn backing() -> Vec<u8> { vec![0u8; 4096] }\n"
        )],
        roots: &["backing"]
    ),
    fx!(
        "vec! in test region ignored",
        "payload-alloc",
        0,
        &[(
            "crates/netsim/src/link.rs",
            "impl Link { pub fn transmit(&mut self) {} }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = vec![0u8; 64]; }\n}\n"
        )]
    ),
    fx!(
        "unreachable netsim alloc ignored under graph scoping",
        "payload-alloc",
        0,
        &[(
            "crates/netsim/src/link.rs",
            "fn make_buf() -> Vec<u8> { vec![0u8; 64] }\n"
        )]
    ),
    fx!(
        "legacy file-list flags the same cold netsim alloc",
        "payload-alloc",
        1,
        &[(
            "crates/netsim/src/link.rs",
            "fn make_buf() -> Vec<u8> { vec![0u8; 64] }\n"
        )],
        legacy
    ),
    // ── bad-pragma ────────────────────────────────────────────────────
    fx!(
        "malformed pragma fires",
        "bad-pragma",
        1,
        &[("crates/core/src/tcp.rs", "// lint: allow(nondet-order)\nfn f() {}\n")]
    ),
    fx!(
        "unknown rule pragma fires",
        "bad-pragma",
        1,
        &[("crates/core/src/tcp.rs", "// lint: allow(no-such-rule, because)\nfn f() {}\n")]
    ),
    fx!(
        "well-formed pragma is not bad",
        "bad-pragma",
        0,
        &[(
            "crates/core/src/tcp.rs",
            "// lint: allow(nondet-order, fixture)\nuse std::collections::HashMap;\ntype M = HashMap<u8, u8>;\nfn f() {}\n"
        )]
    ),
    // ── stale-pragma ──────────────────────────────────────────────────
    fx!(
        "pragma that suppresses nothing is stale",
        "stale-pragma",
        1,
        &[(
            "crates/core/src/sockbuf.rs",
            "use std::collections::BTreeMap;\npub struct C {\n    // lint: allow(nondet-order, converted to BTreeMap long ago)\n    live: BTreeMap<u64, u32>,\n}\n"
        )]
    ),
    fx!(
        "pragma that suppresses a finding is not stale",
        "stale-pragma",
        0,
        &[(
            "crates/core/src/sockbuf.rs",
            "use std::collections::HashMap;\npub struct C {\n    // lint: allow(nondet-order, keyed lookup only, never iterated)\n    live: HashMap<u64, u32>,\n}\n"
        )]
    ),
    fx!(
        "unknown-rule pragma reported as bad, not stale",
        "stale-pragma",
        0,
        &[("crates/core/src/tcp.rs", "// lint: allow(no-such-rule, because)\nfn f() {}\n")]
    ),
    fx!(
        "pragma in test region not reported stale",
        "stale-pragma",
        0,
        &[(
            "crates/core/src/tcp.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    // lint: allow(nondet-order, test-local map)\n    #[test]\n    fn t() {}\n}\n"
        )]
    ),
    fx!(
        "panic pragma orphaned by graph scoping is stale",
        "stale-pragma",
        1,
        &[(
            "crates/core/src/tcp.rs",
            "fn cold(x: Option<u32>) -> u32 {\n    // lint: allow(panic-hot-path, caller checks is_some)\n    x.unwrap()\n}\n"
        )]
    ),
];

/// Run the built-in fixtures: every rule must fire on its positive snippet
/// and stay quiet on masked/suppressed/cold variants, and every graph-mode
/// `panic-hot-path`/`payload-alloc` finding must carry a non-empty witness
/// chain. Returns the number of fixtures checked, or a description of the
/// first failure.
pub fn self_check() -> Result<usize, String> {
    for fx in FIXTURES {
        let inputs: Vec<(String, String)> = fx
            .files
            .iter()
            .map(|(rel, src)| (rel.to_string(), src.to_string()))
            .collect();
        let opts = ScanOptions {
            graph: !fx.legacy,
            roots: fx.roots.iter().map(|s| s.to_string()).collect(),
        };
        let findings = scan_files(&inputs, &opts);
        let matching: Vec<&Finding> = findings.iter().filter(|f| f.rule == fx.rule).collect();
        if matching.len() != fx.expect {
            return Err(format!(
                "self-check fixture `{}` failed: expected {} `{}` finding(s), got {} \
                 (all findings: {:?})",
                fx.name,
                fx.expect,
                fx.rule,
                matching.len(),
                findings
            ));
        }
        if !fx.legacy && matches!(fx.rule, "panic-hot-path" | "payload-alloc") {
            for f in &matching {
                if f.chain.is_empty() {
                    return Err(format!(
                        "self-check fixture `{}` failed: graph-scoped `{}` finding at {} \
                         has an empty witness chain",
                        fx.name,
                        fx.rule,
                        f.id()
                    ));
                }
            }
        }
    }
    Ok(FIXTURES.len())
}

/// Number of built-in self-check fixtures (exposed for the integration
/// tests' coverage floor).
pub fn fixture_count() -> usize {
    FIXTURES.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_pass() {
        self_check().unwrap();
    }

    #[test]
    fn fixture_suite_grew_past_the_pr4_39() {
        assert!(fixture_count() > 39, "fixture count {}", fixture_count());
    }

    #[test]
    fn pragma_on_line_above_suppresses() {
        let src = "// lint: allow(wallclock, fixture)\nfn f() { let _ = std::env::var(\"X\"); }\n";
        assert!(scan_source("crates/core/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let src =
            "// lint: allow(nondet-order, wrong rule)\nfn f() { let _ = std::env::var(\"X\"); }\n";
        let findings = scan_source("crates/core/src/tcp.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "wallclock");
    }

    #[test]
    fn graph_findings_carry_chains_and_ids() {
        let inputs = vec![
            (
                "crates/core/src/kernel/output.rs".to_string(),
                "use crate::scatter::finish;\npub fn sys_write() { finish(None) }\n".to_string(),
            ),
            (
                "crates/core/src/scatter.rs".to_string(),
                "pub fn finish(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
            ),
        ];
        let findings = scan_files(&inputs, &ScanOptions::default());
        let f = findings
            .iter()
            .find(|f| f.rule == "panic-hot-path")
            .expect("cross-file panic found");
        assert_eq!(f.file, "crates/core/src/scatter.rs");
        assert_eq!(f.id(), "panic-hot-path@crates/core/src/scatter.rs:1");
        let names: Vec<&str> = f.chain.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["output::sys_write", "scatter::finish"]);
        assert_eq!(f.chain[0].file, "crates/core/src/kernel/output.rs");
    }

    #[test]
    fn json_v2_shape() {
        let inputs = vec![(
            "crates/core/src/kernel/output.rs".to_string(),
            "pub fn sys_write(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
        )];
        let findings = scan_files(&inputs, &ScanOptions::default());
        let json = render_json(Path::new("/tmp/x"), 1, &findings);
        assert!(json.contains("\"version\": \"outboard-lint-v2\""));
        assert!(json.contains("\"id\": \"panic-hot-path@crates/core/src/kernel/output.rs:1\""));
        assert!(json.contains("\"chain\": [{\"name\": \"output::sys_write\""));
    }

    #[test]
    fn json_is_escaped() {
        let findings = vec![Finding {
            rule: "wallclock",
            file: "a\"b.rs".to_string(),
            line: 3,
            message: "quote \" backslash \\".to_string(),
            snippet: "tab\there".to_string(),
            chain: Vec::new(),
        }];
        let json = render_json(Path::new("/tmp/x"), 1, &findings);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("quote \\\" backslash \\\\"));
        assert!(json.contains("tab\\there"));
    }

    #[test]
    fn sarif_has_code_flows_for_chained_findings() {
        let inputs = vec![(
            "crates/core/src/kernel/output.rs".to_string(),
            "pub fn sys_write(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
        )];
        let findings = scan_files(&inputs, &ScanOptions::default());
        let sarif = render_sarif(&findings);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"panic-hot-path\""));
        assert!(sarif.contains("\"codeFlows\""));
        assert!(sarif.contains("\"threadFlows\""));
        assert!(sarif.contains("output::sys_write"));
    }

    #[test]
    fn stale_pragma_detected_and_live_pragma_kept() {
        let inputs = vec![(
            "crates/core/src/sockbuf.rs".to_string(),
            "use std::collections::{BTreeMap, HashMap};\npub struct C {\n    \
             // lint: allow(nondet-order, converted long ago)\n    dead: BTreeMap<u64, u32>,\n    \
             // lint: allow(nondet-order, keyed lookup only)\n    live: HashMap<u64, u32>,\n}\n"
                .to_string(),
        )];
        let findings = scan_files(&inputs, &ScanOptions::default());
        let stale: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "stale-pragma")
            .collect();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].line, 3);
    }
}
