//! `outboard-lint`: the workspace's own static-analysis pass.
//!
//! The reproduction makes two promises the compiler cannot check for us:
//! the TX/RX hot path never panics (the fault-injection PR made every
//! driver failure a typed `CabError`), and every run is byte-identical
//! given the same seed (the parallel-sweep PR gates on it). Both used to
//! be guarded by a shell `grep` in CI. This crate replaces that with a
//! token-aware scanner — comments, string literals, and `#[cfg(test)]`
//! regions are masked before any rule runs — plus a small rule registry:
//!
//! * `panic-hot-path` — no `panic!`/`unwrap`/`expect`/`unreachable!`/
//!   `todo!` in the hot-path modules;
//! * `nondet-order` — no `HashMap`/`HashSet` types in sim-facing crates
//!   unless pragma'd as lookup-only;
//! * `wallclock` — no `Instant`/`SystemTime`/environment reads outside
//!   `crates/bench`;
//! * `metrics-naming` — metric names must fit the `host{i}.cab{j}.*` /
//!   `world.*` taxonomy (which includes the causal-tracing
//!   `world.spans.*` namespace);
//! * `span-balance` — a `span_open` in a hot-path module must have a
//!   matching `span_close`/`span_drop` in the same function;
//! * `payload-alloc` — no `vec![…]`/`Vec::with_capacity`/`.to_vec()` on
//!   the netsim/mbuf frame hot paths: payload storage comes from
//!   `sim::pool`;
//! * `bad-pragma` — malformed or unknown-rule suppressions.
//!
//! Suppression: `// lint: allow(rule-name, reason)` on the flagged line or
//! the line directly above it. The reason is mandatory.

pub mod lexer;
pub mod rules;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Scan one file's contents. `rel` is the workspace-relative path the rules
/// use for scoping (forward slashes, e.g. `crates/cab/src/cab.rs`).
pub fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    let lex = lexer::lex(src);
    let findings = rules::run_all(rel, src, &lex);
    findings
        .into_iter()
        .filter(|f| {
            if f.rule == "bad-pragma" {
                return true;
            }
            !lex.pragmas
                .iter()
                .any(|p| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line))
        })
        .collect()
}

/// Scan the whole workspace rooted at `root`: every `.rs` file under
/// `crates/*/src` and the root `src/`. Returns (files scanned, findings),
/// findings sorted by (file, line, rule) for a deterministic report.
pub fn scan_workspace(root: &Path) -> io::Result<(usize, Vec<Finding>)> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let src = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        findings.extend(scan_source(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok((files.len(), findings))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render the human report.
pub fn render_human(files_scanned: usize, findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    {}", f.snippet);
        }
    }
    let _ = writeln!(
        out,
        "outboard-lint: {} file{} scanned, {} finding{}",
        files_scanned,
        if files_scanned == 1 { "" } else { "s" },
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
    );
    out
}

/// Render the machine-readable report (hand-rolled JSON; the build is
/// offline, so no serde).
pub fn render_json(root: &Path, files_scanned: usize, findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": 1,");
    let _ = writeln!(out, "  \"root\": \"{}\",", esc(&root.display().to_string()));
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"finding_count\": {},", findings.len());
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.message),
            esc(&f.snippet)
        );
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One self-check fixture: a snippet that must produce exactly
/// `expect` findings of `rule` when scanned as `rel`.
struct Fixture {
    name: &'static str,
    rel: &'static str,
    src: &'static str,
    rule: &'static str,
    expect: usize,
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "panic fires on hot path",
        rel: "crates/core/src/kernel/output.rs",
        src: "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        rule: "panic-hot-path",
        expect: 1,
    },
    Fixture {
        name: "panic! macro fires",
        rel: "crates/cab/src/cab.rs",
        src: "fn f() { panic!(\"boom\") }\n",
        rule: "panic-hot-path",
        expect: 1,
    },
    Fixture {
        name: "unreachable fires",
        rel: "crates/core/src/kernel/input.rs",
        src: "fn f() { unreachable!() }\n",
        rule: "panic-hot-path",
        expect: 1,
    },
    Fixture {
        name: "panic off hot path ignored",
        rel: "crates/core/src/tcp.rs",
        src: "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        rule: "panic-hot-path",
        expect: 0,
    },
    Fixture {
        name: "panic in string literal ignored",
        rel: "crates/cab/src/cab.rs",
        src: "fn f() -> &'static str { \"do not panic!() or .unwrap()\" }\n",
        rule: "panic-hot-path",
        expect: 0,
    },
    Fixture {
        name: "panic in comment ignored",
        rel: "crates/cab/src/cab.rs",
        src: "fn f() {} // would panic!() and .unwrap() here\n",
        rule: "panic-hot-path",
        expect: 0,
    },
    Fixture {
        name: "panic in cfg(test) module ignored",
        rel: "crates/cab/src/cab.rs",
        src: "fn hot() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(); }\n}\n",
        rule: "panic-hot-path",
        expect: 0,
    },
    Fixture {
        name: "unwrap_or is not unwrap",
        rel: "crates/cab/src/cab.rs",
        src: "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
        rule: "panic-hot-path",
        expect: 0,
    },
    Fixture {
        name: "pragma suppresses panic-hot-path",
        rel: "crates/cab/src/cab.rs",
        src: "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(panic-hot-path, invariant upheld by alloc)\n    x.unwrap()\n}\n",
        rule: "panic-hot-path",
        expect: 0,
    },
    Fixture {
        name: "hashmap type fires in sim-facing crate",
        rel: "crates/testbed/src/world.rs",
        src: "use std::collections::HashMap;\npub struct W { links: HashMap<u32, u32> }\n",
        rule: "nondet-order",
        expect: 1,
    },
    Fixture {
        name: "hashset fires too",
        rel: "crates/core/src/ip.rs",
        src: "use std::collections::HashSet;\nfn f(s: &HashSet<u32>) -> usize { s.len() }\n",
        rule: "nondet-order",
        expect: 1,
    },
    Fixture {
        name: "btreemap is fine",
        rel: "crates/testbed/src/world.rs",
        src: "use std::collections::BTreeMap;\npub struct W { links: BTreeMap<u32, u32> }\n",
        rule: "nondet-order",
        expect: 0,
    },
    Fixture {
        name: "pragma suppresses nondet-order",
        rel: "crates/core/src/sockbuf.rs",
        src: "use std::collections::HashMap;\npub struct C {\n    // lint: allow(nondet-order, keyed lookup only, never iterated)\n    live: HashMap<u64, u32>,\n}\n",
        rule: "nondet-order",
        expect: 0,
    },
    Fixture {
        name: "hashmap outside sim-facing crates ignored",
        rel: "crates/wire/src/lib.rs",
        src: "use std::collections::HashMap;\npub struct W { m: HashMap<u32, u32> }\n",
        rule: "nondet-order",
        expect: 0,
    },
    Fixture {
        name: "instant fires outside bench",
        rel: "crates/core/src/tcp.rs",
        src: "fn f() { let _t = std::time::Instant::now(); }\n",
        rule: "wallclock",
        expect: 1,
    },
    Fixture {
        name: "env var read fires",
        rel: "crates/sim/src/lib.rs",
        src: "fn f() -> bool { std::env::var(\"JOBS\").is_ok() }\n",
        rule: "wallclock",
        expect: 1,
    },
    Fixture {
        name: "instant in bench is fine",
        rel: "crates/bench/src/perf.rs",
        src: "fn f() { let _t = std::time::Instant::now(); }\n",
        rule: "wallclock",
        expect: 0,
    },
    Fixture {
        name: "bad metric name fires",
        rel: "crates/host/src/cpu.rs",
        src: "fn f(s: &mut Scope) { s.counter(\"Bad Name\", 1); }\n",
        rule: "metrics-naming",
        expect: 1,
    },
    Fixture {
        name: "taxonomy name passes",
        rel: "crates/host/src/cpu.rs",
        src: "fn f(s: &mut Scope) { s.counter(\"tcp.segs_out\", 1); }\n",
        rule: "metrics-naming",
        expect: 0,
    },
    Fixture {
        name: "format-hole name passes",
        rel: "crates/cab/src/cab.rs",
        src: "fn f(s: &mut Scope, ch: u16) { s.counter(&format!(\"channel.{ch}.frames_tx\"), 1); }\n",
        rule: "metrics-naming",
        expect: 0,
    },
    Fixture {
        name: "non-literal metric name skipped",
        rel: "crates/sim/src/obs.rs",
        src: "fn f(s: &mut Scope, name: &str) { s.counter(name, 1); }\n",
        rule: "metrics-naming",
        expect: 0,
    },
    Fixture {
        name: "spans metric namespace passes taxonomy",
        rel: "crates/testbed/src/world.rs",
        src: "fn f(s: &mut Scope) { s.counter(\"world.spans.opened\", 1); s.counter(\"world.spans.mdma_rx.p99_ns\", 1); }\n",
        rule: "metrics-naming",
        expect: 0,
    },
    Fixture {
        name: "chaos metric namespace passes taxonomy",
        rel: "crates/testbed/src/world.rs",
        src: "fn f(w: &mut Scope) { let mut c = w.sub(\"chaos\"); c.counter(\"events_applied\", 1); c.counter(\"world.chaos.down_drops\", 1); }\n",
        rule: "metrics-naming",
        expect: 0,
    },
    Fixture {
        name: "malformed chaos metric name fires",
        rel: "crates/testbed/src/world.rs",
        src: "fn f(w: &mut Scope) { w.counter(\"world.chaos.Bad-Kind\", 1); }\n",
        rule: "metrics-naming",
        expect: 1,
    },
    Fixture {
        name: "unbalanced span_open fires on hot path",
        rel: "crates/core/src/kernel/input.rs",
        src: "fn f(k: &mut K, now: Time) { k.spans.span_open(1, FlowId::NONE, Stage::Sockbuf, now, 0); }\n",
        rule: "span-balance",
        expect: 1,
    },
    Fixture {
        name: "span_open with close in same fn is balanced",
        rel: "crates/core/src/kernel/input.rs",
        src: "fn f(k: &mut K, now: Time) {\n    k.spans.span_open(1, FlowId::NONE, Stage::Sockbuf, now, 0);\n    k.spans.span_close(1, Stage::Sockbuf, now);\n}\n",
        rule: "span-balance",
        expect: 0,
    },
    Fixture {
        name: "span_open with drop in same fn is balanced",
        rel: "crates/core/src/kernel/robust.rs",
        src: "fn f(k: &mut K, now: Time) {\n    k.spans.span_open(1, FlowId::NONE, Stage::Wire, now, 0);\n    k.spans.span_drop(1, Stage::Wire, now);\n}\n",
        rule: "span-balance",
        expect: 0,
    },
    Fixture {
        name: "span helpers off hot path ignored",
        rel: "crates/core/src/kernel/mod.rs",
        src: "fn f(k: &mut K, now: Time) { k.spans.span_open(1, FlowId::NONE, Stage::Sockbuf, now, 0); }\n",
        rule: "span-balance",
        expect: 0,
    },
    Fixture {
        name: "detour helper call is not a span_open",
        rel: "crates/core/src/kernel/robust.rs",
        src: "fn f(k: &mut K, now: Time) { k.span_detour_open(IfaceId(0), Stage::RetryDwell, now); }\n",
        rule: "span-balance",
        expect: 0,
    },
    Fixture {
        name: "vec! payload on link hot path fires",
        rel: "crates/netsim/src/link.rs",
        src: "fn frame() -> Vec<u8> { vec![0u8; 1500] }\n",
        rule: "payload-alloc",
        expect: 1,
    },
    Fixture {
        name: "with_capacity on mbuf hot path fires",
        rel: "crates/mbuf/src/mbuf.rs",
        src: "fn cluster() -> Vec<u8> { Vec::with_capacity(4096) }\n",
        rule: "payload-alloc",
        expect: 1,
    },
    Fixture {
        name: "to_vec copy on fault path fires",
        rel: "crates/netsim/src/fault.rs",
        src: "fn copy(b: &[u8]) -> Vec<u8> { b.to_vec() }\n",
        rule: "payload-alloc",
        expect: 1,
    },
    Fixture {
        name: "pooled acquire does not fire",
        rel: "crates/netsim/src/link.rs",
        src: "fn frame(p: &BufPool) -> (Vec<u8>, Ticket) { p.acquire(1500) }\n",
        rule: "payload-alloc",
        expect: 0,
    },
    Fixture {
        name: "pragma suppresses payload-alloc",
        rel: "crates/mbuf/src/chain.rs",
        src: "fn flatten(len: usize) -> Vec<u8> {\n    // lint: allow(payload-alloc, verification gather off the transfer path)\n    Vec::with_capacity(len)\n}\n",
        rule: "payload-alloc",
        expect: 0,
    },
    Fixture {
        name: "vec! in pool module ignored",
        rel: "crates/sim/src/pool.rs",
        src: "fn backing() -> Vec<u8> { vec![0u8; 4096] }\n",
        rule: "payload-alloc",
        expect: 0,
    },
    Fixture {
        name: "vec! in test region ignored",
        rel: "crates/netsim/src/link.rs",
        src: "fn hot() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = vec![0u8; 64]; }\n}\n",
        rule: "payload-alloc",
        expect: 0,
    },
    Fixture {
        name: "malformed pragma fires",
        rel: "crates/core/src/tcp.rs",
        src: "// lint: allow(nondet-order)\nfn f() {}\n",
        rule: "bad-pragma",
        expect: 1,
    },
    Fixture {
        name: "unknown rule pragma fires",
        rel: "crates/core/src/tcp.rs",
        src: "// lint: allow(no-such-rule, because)\nfn f() {}\n",
        rule: "bad-pragma",
        expect: 1,
    },
    Fixture {
        name: "well-formed pragma is not bad",
        rel: "crates/core/src/tcp.rs",
        src: "// lint: allow(wallclock, fixture)\nfn f() {}\n",
        rule: "bad-pragma",
        expect: 0,
    },
];

/// Run the built-in fixtures: every rule must fire on its positive snippet
/// and stay quiet on masked/suppressed variants. Returns the number of
/// fixtures checked, or a description of the first failure.
pub fn self_check() -> Result<usize, String> {
    for fx in FIXTURES {
        let findings = scan_source(fx.rel, fx.src);
        let got = findings.iter().filter(|f| f.rule == fx.rule).count();
        if got != fx.expect {
            return Err(format!(
                "self-check fixture `{}` failed: expected {} `{}` finding(s), got {} \
                 (all findings: {:?})",
                fx.name, fx.expect, fx.rule, got, findings
            ));
        }
    }
    Ok(FIXTURES.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_pass() {
        self_check().unwrap();
    }

    #[test]
    fn pragma_on_line_above_suppresses() {
        let src = "// lint: allow(wallclock, fixture)\nfn f() { let _ = std::env::var(\"X\"); }\n";
        assert!(scan_source("crates/core/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn pragma_for_wrong_rule_does_not_suppress() {
        let src =
            "// lint: allow(nondet-order, wrong rule)\nfn f() { let _ = std::env::var(\"X\"); }\n";
        let findings = scan_source("crates/core/src/tcp.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "wallclock");
    }

    #[test]
    fn json_is_escaped() {
        let findings = vec![Finding {
            rule: "wallclock",
            file: "a\"b.rs".to_string(),
            line: 3,
            message: "quote \" backslash \\".to_string(),
            snippet: "tab\there".to_string(),
        }];
        let json = render_json(Path::new("/tmp/x"), 1, &findings);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("quote \\\" backslash \\\\"));
        assert!(json.contains("tab\\there"));
    }
}
