//! Workspace symbol table, call graph, and hot-path reachability.
//!
//! PR 4's rules scoped themselves with a hard-coded file list, which meant
//! any refactor that moved hot-path code into a new module silently escaped
//! every rule. This module derives the hot-path set instead: it indexes
//! every `fn` in the workspace (via [`crate::lexer::index_items`]), extracts
//! call sites from the masked token stream, resolves them to candidate
//! callees, and computes the transitive closure from a declared root set
//! (`sys_write`, `rx_interrupt`, the retry/watchdog entry points, …).
//!
//! Resolution is deliberately **conservative**: where the name-based
//! analysis cannot tell which of several same-named functions is called, it
//! adds edges to *all* of them. Over-approximation widens the checked set
//! (a finding too many needs a pragma with a reason); under-approximation
//! would silently exempt real hot-path code. The precise cases:
//!
//! * `self.m(…)` resolves to `m` on the enclosing `impl` type when that
//!   type has one, otherwise to every method named `m`;
//! * `x.m(…)` resolves to every method named `m` (receiver types are not
//!   inferred), falling back to any fn named `m`;
//! * `Q::f(…)` resolves through `use` renames, then to fns whose self type
//!   or enclosing module is `Q`, falling back to any fn named `f`;
//! * `f(…)` prefers local fns (innermost shadowing declaration wins), then
//!   `use`-imported paths, then same-file, same-crate, and finally any free
//!   fn named `f`;
//! * calls through `use std::… ` imports resolve to nothing (std is not in
//!   the graph) rather than to a same-named workspace fn.
//!
//! `#[test]` / `#[cfg(test)]` functions are indexed but excluded from the
//! graph: they neither contribute edges nor appear in the reachable set.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

use crate::lexer::{FileIndex, LexedFile};

/// Index into [`Graph::fns`].
pub type FnId = usize;

/// One file fed to the graph builder.
pub struct FileRecord {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Raw source text.
    pub raw: String,
    /// Masked/lexed view.
    pub lex: LexedFile,
    /// Item index for the file.
    pub index: FileIndex,
}

impl FileRecord {
    /// Lex and index `src` as workspace-relative file `rel`.
    pub fn new(rel: &str, src: &str) -> FileRecord {
        let lex = crate::lexer::lex(src);
        let index = crate::lexer::index_items(&lex);
        FileRecord {
            rel: rel.to_string(),
            raw: src.to_string(),
            lex,
            index,
        }
    }
}

/// One function in the workspace graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Bare name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, for methods.
    pub self_ty: Option<String>,
    /// Module path: crate name, then file path segments, then in-file mods.
    pub module: Vec<String>,
    /// Index into the builder's file list.
    pub file_idx: usize,
    /// Workspace-relative path of the declaring file.
    pub file: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body in the file, when present.
    pub body: Option<(usize, usize)>,
    /// Enclosing fn for local `fn` items.
    pub parent: Option<FnId>,
    /// In a `#[test]`/`#[cfg(test)]` region (excluded from the graph).
    pub is_test: bool,
    /// First parameter is a `self` receiver.
    pub has_self: bool,
}

impl FnNode {
    /// Display name: `Type::name` or `module::name`.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => match self.module.last() {
                Some(m) => format!("{m}::{}", self.name),
                None => self.name.clone(),
            },
        }
    }
}

/// A parsed root spec: `name` or `Type::name`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootSpec {
    /// Optional `Type::` / `module::` qualifier.
    pub qualifier: Option<String>,
    /// Function name.
    pub name: String,
}

impl RootSpec {
    /// Parse `"name"` or `"Qualifier::name"`.
    pub fn parse(s: &str) -> RootSpec {
        match s.rsplit_once("::") {
            Some((q, n)) => RootSpec {
                qualifier: Some(q.to_string()),
                name: n.to_string(),
            },
            None => RootSpec {
                qualifier: None,
                name: s.to_string(),
            },
        }
    }
}

/// The default hot-path root set: syscall entries, interrupt/completion
/// handlers, the TX emission path, the robustness layer's retry/watchdog
/// timers, and the netsim frame path (whose per-frame storage the
/// `payload-alloc` rule polices).
pub const DEFAULT_ROOTS: &[&str] = &[
    "sys_write",
    "sys_read",
    "rx_interrupt",
    "frame_arrive",
    "emit_tcp_segment",
    "cab_output",
    "sdma_done",
    "cab_retry_fire",
    "cab_watchdog_fire",
    "cab_board_crash",
    "Link::transmit",
    "FaultInjector::fate",
];

/// Identifiers that look like calls but are not (`if (…)`, `return (…)`).
const NON_CALL_WORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "loop", "return", "break", "continue", "as", "in",
    "let", "mut", "ref", "move", "unsafe", "fn", "impl", "use", "pub", "where", "struct", "enum",
    "union", "type", "trait", "mod", "const", "static", "crate", "super", "dyn", "box", "await",
];

/// The workspace call graph.
pub struct Graph {
    /// Every indexed fn (including test fns, which carry no edges).
    pub fns: Vec<FnNode>,
    /// Callee sets, indexed by caller [`FnId`].
    pub edges: Vec<BTreeSet<FnId>>,
    /// Name → fn ids (non-test only).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// Per-file `use` aliases: local name → path segments.
    file_uses: Vec<BTreeMap<String, Vec<String>>>,
    /// rel path per file index.
    files: Vec<String>,
}

/// Module path for a workspace-relative file path:
/// `crates/core/src/kernel/input.rs` → `["core", "kernel", "input"]`.
fn file_module_path(rel: &str) -> Vec<String> {
    let mut segs: Vec<&str> = rel.split('/').collect();
    let mut out = Vec::new();
    if segs.first() == Some(&"crates") && segs.len() >= 3 {
        out.push(segs[1].to_string());
        segs.drain(..3); // crates/<name>/src
    } else if segs.first() == Some(&"src") {
        out.push("outboard".to_string());
        segs.drain(..1);
    }
    for (i, seg) in segs.iter().enumerate() {
        let last = i + 1 == segs.len();
        let seg = if last {
            seg.strip_suffix(".rs").unwrap_or(seg)
        } else {
            seg
        };
        if last && (seg == "lib" || seg == "main" || seg == "mod") {
            continue;
        }
        out.push(seg.to_string());
    }
    out
}

fn is_ident_b(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// A call site extracted from a fn body.
#[derive(Debug)]
enum CallKind {
    /// `self.name(…)`.
    SelfMethod,
    /// `expr.name(…)`.
    Method,
    /// `Qual::name(…)`, qualifier is the last path segment before the name;
    /// `path` holds every segment read (for `use`-alias resolution).
    Qualified { path: Vec<String> },
    /// `name(…)`.
    Free,
}

#[derive(Debug)]
struct CallSite {
    name: String,
    kind: CallKind,
}

impl Graph {
    /// Build the graph over a set of lexed files.
    pub fn build(files: &[FileRecord]) -> Graph {
        let mut g = Graph {
            fns: Vec::new(),
            edges: Vec::new(),
            by_name: BTreeMap::new(),
            file_uses: Vec::new(),
            files: files.iter().map(|f| f.rel.clone()).collect(),
        };
        // Pass 1: symbol table.
        for (file_idx, f) in files.iter().enumerate() {
            let base = file_module_path(&f.rel);
            let id_base = g.fns.len();
            for d in &f.index.fns {
                let mut module = base.clone();
                module.extend(d.module.iter().cloned());
                g.fns.push(FnNode {
                    name: d.name.clone(),
                    self_ty: d.self_ty.clone(),
                    module,
                    file_idx,
                    file: f.rel.clone(),
                    line: d.line,
                    body: d.body,
                    parent: d.parent.map(|p| id_base + p),
                    is_test: d.is_test,
                    has_self: d.has_self,
                });
            }
            let mut uses = BTreeMap::new();
            for u in &f.index.uses {
                uses.insert(u.local.clone(), u.path.clone());
            }
            g.file_uses.push(uses);
        }
        for (id, n) in g.fns.iter().enumerate() {
            if !n.is_test {
                g.by_name.entry(n.name.clone()).or_default().push(id);
            }
        }
        // Pass 2: call extraction + resolution.
        g.edges = vec![BTreeSet::new(); g.fns.len()];
        for caller in 0..g.fns.len() {
            if g.fns[caller].is_test {
                continue;
            }
            let Some((start, end)) = g.fns[caller].body else {
                continue;
            };
            let file = &files[g.fns[caller].file_idx];
            // Exclude the bodies of directly nested local fns: their calls
            // belong to them, not to the enclosing fn.
            let holes: Vec<(usize, usize)> = g
                .fns
                .iter()
                .filter(|c| c.parent == Some(caller))
                .filter_map(|c| c.body)
                .collect();
            let masked = file.lex.masked.as_bytes();
            for site in extract_calls(masked, start, end, &holes) {
                for callee in g.resolve(caller, &site) {
                    if !g.fns[callee].is_test {
                        g.edges[caller].insert(callee);
                    }
                }
            }
        }
        g
    }

    /// All non-test fns matching a root spec.
    pub fn resolve_roots(&self, specs: &[RootSpec]) -> Vec<FnId> {
        let mut out = Vec::new();
        for spec in specs {
            if let Some(ids) = self.by_name.get(&spec.name) {
                for &id in ids {
                    let n = &self.fns[id];
                    let ok = match &spec.qualifier {
                        None => true,
                        Some(q) => {
                            n.self_ty.as_deref() == Some(q.as_str())
                                || n.module.last().map(String::as_str) == Some(q.as_str())
                        }
                    };
                    if ok {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// BFS from `roots`; returns reached fn → BFS parent (`None` for a
    /// root). Deterministic: ids are visited in ascending order per level.
    pub fn reachable(&self, roots: &[FnId]) -> BTreeMap<FnId, Option<FnId>> {
        reachable_in(&self.edges, roots)
    }

    /// Witness chain root → … → `id`, as fn ids.
    pub fn chain(&self, reach: &BTreeMap<FnId, Option<FnId>>, id: FnId) -> Vec<FnId> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(Some(parent)) = reach.get(&cur) {
            chain.push(*parent);
            cur = *parent;
        }
        chain.reverse();
        chain
    }

    /// Innermost fn whose body contains byte `pos` in file `file_idx`.
    pub fn enclosing_fn(&self, file_idx: usize, pos: usize) -> Option<FnId> {
        let mut best: Option<(usize, FnId)> = None; // (body size, id)
        for (id, n) in self.fns.iter().enumerate() {
            if n.file_idx != file_idx {
                continue;
            }
            if let Some((s, e)) = n.body {
                if s <= pos && pos < e {
                    let size = e - s;
                    if best.is_none_or(|(bs, _)| size < bs) {
                        best = Some((size, id));
                    }
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Display name for a fn: local fns are qualified by their enclosing
    /// fn (`sys_write::helper`), methods by their type, free fns by their
    /// module.
    pub fn qualified_name(&self, id: FnId) -> String {
        let n = &self.fns[id];
        match n.parent {
            Some(p) => format!("{}::{}", self.fns[p].name, n.name),
            None => n.qualified(),
        }
    }

    /// Resolve one call site to candidate callees (may be empty).
    fn resolve(&self, caller: FnId, site: &CallSite) -> Vec<FnId> {
        let empty = Vec::new();
        let ids = self.by_name.get(&site.name).unwrap_or(&empty);
        if ids.is_empty() {
            return Vec::new();
        }
        let caller_node = &self.fns[caller];
        let uses = &self.file_uses[caller_node.file_idx];
        match &site.kind {
            CallKind::SelfMethod => {
                if let Some(ty) = &caller_node.self_ty {
                    let own: Vec<FnId> = ids
                        .iter()
                        .copied()
                        .filter(|&id| self.fns[id].self_ty.as_ref() == Some(ty))
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
                self.method_candidates(ids)
            }
            CallKind::Method => self.method_candidates(ids),
            CallKind::Qualified { path } => {
                let Some(qual) = path.last() else {
                    return ids.clone();
                };
                if qual == "Self" {
                    if let Some(ty) = &caller_node.self_ty {
                        let own: Vec<FnId> = ids
                            .iter()
                            .copied()
                            .filter(|&id| self.fns[id].self_ty.as_ref() == Some(ty))
                            .collect();
                        if !own.is_empty() {
                            return own;
                        }
                    }
                    return self.method_candidates(ids);
                }
                // Resolve the qualifier through `use` renames; a path that
                // resolves into std/core/alloc is external — no edges.
                let resolved_last = match uses.get(qual) {
                    Some(full) if is_external_path(full) => return Vec::new(),
                    Some(full) => full.last().cloned().unwrap_or_else(|| qual.clone()),
                    None => {
                        if path.len() > 1 && is_external_path(path) {
                            return Vec::new();
                        }
                        qual.clone()
                    }
                };
                let matched: Vec<FnId> = ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let n = &self.fns[id];
                        n.self_ty.as_deref() == Some(resolved_last.as_str())
                            || (n.self_ty.is_none()
                                && n.module.last().map(String::as_str)
                                    == Some(resolved_last.as_str()))
                    })
                    .collect();
                if !matched.is_empty() {
                    return matched;
                }
                // The qualifier names its type/module explicitly; if the
                // workspace defines no fn under it, the callee is external
                // (`Box::new`, `String::from`, prelude types with no `use`
                // line). Known under-approximations: type aliases used as
                // qualifiers and `Trait::method(&x)` UFCS calls whose trait
                // has no default body — both rare and documented in DESIGN.
                Vec::new()
            }
            CallKind::Free => {
                // Tier 1: local fns — innermost shadowing declaration wins.
                let mut scope = Some(caller);
                while let Some(anc) = scope {
                    let local: Vec<FnId> = ids
                        .iter()
                        .copied()
                        .filter(|&id| self.fns[id].parent == Some(anc))
                        .collect();
                    if !local.is_empty() {
                        return local;
                    }
                    scope = self.fns[anc].parent;
                }
                // Tier 2: `use` imports. std paths resolve to nothing.
                if let Some(full) = uses.get(&site.name) {
                    if is_external_path(full) {
                        return Vec::new();
                    }
                    let matched: Vec<FnId> = ids
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let n = &self.fns[id];
                            n.self_ty.is_none() && module_matches(&n.module, full)
                        })
                        .collect();
                    if !matched.is_empty() {
                        return matched;
                    }
                }
                // Tier 3: free fns in the same file.
                let same_file: Vec<FnId> = ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let n = &self.fns[id];
                        n.self_ty.is_none()
                            && n.parent.is_none()
                            && n.file_idx == caller_node.file_idx
                    })
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                // Tier 4: free fns in the same crate.
                let crate_seg = caller_node.module.first();
                let same_crate: Vec<FnId> = ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let n = &self.fns[id];
                        n.self_ty.is_none() && n.parent.is_none() && n.module.first() == crate_seg
                    })
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                // Tier 5: any free fn with the name.
                ids.iter()
                    .copied()
                    .filter(|&id| self.fns[id].self_ty.is_none() && self.fns[id].parent.is_none())
                    .collect()
            }
        }
    }

    fn method_candidates(&self, ids: &[FnId]) -> Vec<FnId> {
        // A `.method()` call needs a receiver: the target must be a fn
        // declared with a `self` parameter. Receiver-less associated fns
        // (`Graph::build(recs)`) and free fns can never be its target, so
        // when no receiver-taking candidate exists the callee is external
        // (`.push(` on a Vec, iterator adapters, …) — no edges.
        ids.iter()
            .copied()
            .filter(|&id| self.fns[id].self_ty.is_some() && self.fns[id].has_self)
            .collect()
    }

    /// Deterministic debug listing: graph stats, resolved roots, and every
    /// reachable fn with its BFS parent.
    pub fn render(&self, roots: &[FnId], reach: &BTreeMap<FnId, Option<FnId>>) -> String {
        let mut out = String::new();
        let edge_count: usize = self.edges.iter().map(BTreeSet::len).sum();
        let _ = writeln!(
            out,
            "call graph: {} fns ({} test-excluded), {} edges, {} roots, {} reachable",
            self.fns.len(),
            self.fns.iter().filter(|f| f.is_test).count(),
            edge_count,
            roots.len(),
            reach.len(),
        );
        for &r in roots {
            let n = &self.fns[r];
            let _ = writeln!(
                out,
                "root {} ({}:{})",
                self.qualified_name(r),
                n.file,
                n.line
            );
        }
        let mut lines: Vec<String> = reach
            .iter()
            .map(|(&id, parent)| {
                let n = &self.fns[id];
                match parent {
                    None => format!(
                        "  {} ({}:{}) <root>",
                        self.qualified_name(id),
                        n.file,
                        n.line
                    ),
                    Some(p) => format!(
                        "  {} ({}:{}) <- {}",
                        self.qualified_name(id),
                        n.file,
                        n.line,
                        self.qualified_name(*p)
                    ),
                }
            })
            .collect();
        lines.sort();
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// rel path for a file index.
    pub fn file_rel(&self, file_idx: usize) -> &str {
        &self.files[file_idx]
    }
}

/// Does a `use` path point outside the workspace (std & friends)?
fn is_external_path(path: &[String]) -> bool {
    matches!(
        path.first().map(String::as_str),
        Some("std") | Some("core") | Some("alloc")
    )
}

/// Does module path `module` end with the trailing segments of `path`
/// (ignoring the `crate`/leading-crate-name spelling differences)?
fn module_matches(module: &[String], path: &[String]) -> bool {
    // `path` names the item itself; its parent path must suffix-match the
    // module. `use crate::kernel::frame_flow` → parent [crate, kernel].
    let parent = &path[..path.len().saturating_sub(1)];
    let parent: Vec<&String> = parent.iter().filter(|s| s.as_str() != "crate").collect();
    if parent.is_empty() {
        return true;
    }
    if parent.len() > module.len() {
        return false;
    }
    module
        .iter()
        .rev()
        .zip(parent.iter().rev())
        .all(|(m, p)| m == *p)
}

/// Shared BFS used by [`Graph::reachable`] and the property tests: edge
/// list → (reached → parent) map. Parents are the first (lowest-id-first,
/// level-order) discoverer, so witness chains are deterministic and
/// shortest.
pub fn reachable_in(edges: &[BTreeSet<usize>], roots: &[usize]) -> BTreeMap<usize, Option<usize>> {
    let mut reach: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut sorted_roots: Vec<usize> = roots.to_vec();
    sorted_roots.sort_unstable();
    for r in sorted_roots {
        if r < edges.len() && !reach.contains_key(&r) {
            reach.insert(r, None);
            queue.push_back(r);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &next in &edges[cur] {
            if let std::collections::btree_map::Entry::Vacant(e) = reach.entry(next) {
                e.insert(Some(cur));
                queue.push_back(next);
            }
        }
    }
    reach
}

/// Extract call sites from `masked[start..end]`, skipping `holes` (nested
/// local fn bodies).
fn extract_calls(
    masked: &[u8],
    start: usize,
    end: usize,
    holes: &[(usize, usize)],
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = start;
    let end = end.min(masked.len());
    'outer: while i < end {
        for &(hs, he) in holes {
            if hs <= i && i < he {
                i = he;
                continue 'outer;
            }
        }
        let b = masked[i];
        if !(b.is_ascii_alphabetic() || b == b'_') || (i > 0 && is_ident_b(masked[i - 1])) {
            i += 1;
            continue;
        }
        let word_start = i;
        let mut j = i;
        while j < end && is_ident_b(masked[j]) {
            j += 1;
        }
        let word = std::str::from_utf8(&masked[word_start..j]).unwrap_or("");
        i = j;
        if NON_CALL_WORDS.contains(&word) {
            continue;
        }
        // After the ident: optional turbofish, then `(` makes it a call;
        // `!` makes it a macro (not a graph edge).
        let mut k = j;
        while k < end && masked[k].is_ascii_whitespace() {
            k += 1;
        }
        if k + 2 < end && masked[k] == b':' && masked[k + 1] == b':' && masked[k + 2] == b'<' {
            k = crate::lexer::skip_generics(masked, k + 2);
            while k < end && masked[k].is_ascii_whitespace() {
                k += 1;
            }
        }
        if k >= end || masked[k] != b'(' {
            continue;
        }
        // Look backward to classify.
        let mut p = word_start;
        while p > start && masked[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p > start && masked[p - 1] == b'.' {
            // Method call; is the receiver literally `self`?
            let mut r = p - 1;
            while r > start && masked[r - 1].is_ascii_whitespace() {
                r -= 1;
            }
            let recv_end = r;
            while r > start && is_ident_b(masked[r - 1]) {
                r -= 1;
            }
            let recv = std::str::from_utf8(&masked[r..recv_end]).unwrap_or("");
            let prev_ok = r == 0 || !is_ident_b(masked[r.saturating_sub(1)]);
            let kind = if recv == "self" && prev_ok && (r == start || masked[r - 1] != b'.') {
                CallKind::SelfMethod
            } else {
                CallKind::Method
            };
            out.push(CallSite {
                name: word.to_string(),
                kind,
            });
            continue;
        }
        if p > start + 1 && masked[p - 1] == b':' && masked[p - 2] == b':' {
            // Qualified call: read the path backward.
            let mut path_rev: Vec<String> = Vec::new();
            let mut q = p - 2;
            loop {
                while q > start && masked[q - 1].is_ascii_whitespace() {
                    q -= 1;
                }
                let seg_end = q;
                while q > start && is_ident_b(masked[q - 1]) {
                    q -= 1;
                }
                if q == seg_end {
                    break; // `<T as Trait>::f` or similar — stop.
                }
                path_rev.push(
                    std::str::from_utf8(&masked[q..seg_end])
                        .unwrap_or("")
                        .to_string(),
                );
                while q > start && masked[q - 1].is_ascii_whitespace() {
                    q -= 1;
                }
                if q > start + 1 && masked[q - 1] == b':' && masked[q - 2] == b':' {
                    q -= 2;
                } else {
                    break;
                }
            }
            path_rev.reverse();
            out.push(CallSite {
                name: word.to_string(),
                kind: CallKind::Qualified { path: path_rev },
            });
            continue;
        }
        out.push(CallSite {
            name: word.to_string(),
            kind: CallKind::Free,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let recs: Vec<FileRecord> = files.iter().map(|(r, s)| FileRecord::new(r, s)).collect();
        Graph::build(&recs)
    }

    fn specs(names: &[&str]) -> Vec<RootSpec> {
        names.iter().map(|n| RootSpec::parse(n)).collect()
    }

    fn reach_names(g: &Graph, roots: &[&str]) -> Vec<String> {
        let r = g.resolve_roots(&specs(roots));
        let reach = g.reachable(&r);
        let mut names: Vec<String> = reach.keys().map(|&id| g.qualified_name(id)).collect();
        names.sort();
        names
    }

    #[test]
    fn cross_file_free_call_resolves() {
        let g = graph_of(&[
            (
                "crates/core/src/kernel/output.rs",
                "pub fn emit_tcp_segment() { crate::kernel::helpers::gather(); }\n",
            ),
            (
                "crates/core/src/kernel/helpers.rs",
                "pub fn gather() { deep(); }\nfn deep() {}\n",
            ),
        ]);
        let names = reach_names(&g, &["emit_tcp_segment"]);
        assert_eq!(
            names,
            vec![
                "helpers::deep",
                "helpers::gather",
                "output::emit_tcp_segment"
            ]
        );
    }

    #[test]
    fn self_method_prefers_own_impl() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "struct A; struct B;\n\
             impl A { pub fn sys_write(&self) { self.step() } fn step(&self) {} }\n\
             impl B { fn step(&self) { hidden() } }\n\
             fn hidden() {}\n",
        )]);
        // `self.step()` inside A::sys_write resolves to A::step only, so
        // B::step and hidden() stay unreachable.
        let names = reach_names(&g, &["sys_write"]);
        assert_eq!(names, vec!["A::step", "A::sys_write"]);
    }

    #[test]
    fn ambiguous_method_reaches_all_same_name_methods() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "impl A { pub fn sys_write(&self, x: &B) { x.step() } }\n\
             impl B { fn step(&self) {} }\n\
             impl C { fn step(&self) {} }\n",
        )]);
        let names = reach_names(&g, &["sys_write"]);
        assert_eq!(names, vec!["A::sys_write", "B::step", "C::step"]);
    }

    #[test]
    fn shadowed_local_fn_wins() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "fn helper() { global_only() }\nfn global_only() {}\n\
             pub fn sys_write() {\n    fn helper() {}\n    helper();\n}\n",
        )]);
        // The local `helper` shadows the file-level one, so neither the
        // file-level helper nor its callee is reachable.
        let names = reach_names(&g, &["sys_write"]);
        assert_eq!(names, vec!["a::sys_write", "sys_write::helper"]);
    }

    #[test]
    fn calls_inside_closures_count() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "pub fn sys_write(v: &[u32]) { v.iter().map(|x| twiddle(*x)).count(); }\n\
             fn twiddle(x: u32) -> u32 { x }\n",
        )]);
        let names = reach_names(&g, &["sys_write"]);
        assert_eq!(names, vec!["a::sys_write", "a::twiddle"]);
    }

    #[test]
    fn cfg_test_fns_are_not_in_the_graph() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "pub fn sys_write() {}\n#[cfg(test)]\nmod tests {\n    fn sys_write() { helper() }\n    fn helper() {}\n}\nfn helper() {}\n",
        )]);
        // Only the non-test sys_write roots; the test module's call to
        // helper adds no edge, so the file-level helper stays unreachable.
        let names = reach_names(&g, &["sys_write"]);
        assert_eq!(names, vec!["a::sys_write"]);
    }

    #[test]
    fn std_imports_resolve_to_nothing() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "use std::mem::take;\npub fn sys_write(x: &mut Vec<u32>) { take(x); }\nfn take(_x: &mut Vec<u32>) {}\n",
        )]);
        // `take` is imported from std, so the same-named workspace fn is
        // not linked.
        let names = reach_names(&g, &["sys_write"]);
        assert_eq!(names, vec!["a::sys_write"]);
    }

    #[test]
    fn qualified_call_via_use_rename() {
        let g = graph_of(&[
            (
                "crates/core/src/a.rs",
                "use crate::b::Widget as W;\npub fn sys_write() { W::poke(); }\n",
            ),
            (
                "crates/core/src/b.rs",
                "pub struct Widget;\nimpl Widget { pub fn poke() {} }\nimpl Gadget { pub fn poke() {} }\n",
            ),
        ]);
        let names = reach_names(&g, &["sys_write"]);
        assert_eq!(names, vec!["Widget::poke", "a::sys_write"]);
    }

    #[test]
    fn qualified_root_spec_filters_by_type() {
        let g = graph_of(&[(
            "crates/netsim/src/link.rs",
            "impl Link { pub fn transmit(&self) {} }\nimpl Other { pub fn transmit(&self) {} }\n",
        )]);
        let ids = g.resolve_roots(&specs(&["Link::transmit"]));
        assert_eq!(ids.len(), 1);
        assert_eq!(g.fns[ids[0]].self_ty.as_deref(), Some("Link"));
    }

    #[test]
    fn chains_are_shortest_and_rooted() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "pub fn sys_write() { mid(); deep(); }\nfn mid() { deep(); }\nfn deep() {}\n",
        )]);
        let roots = g.resolve_roots(&specs(&["sys_write"]));
        let reach = g.reachable(&roots);
        let deep = g
            .fns
            .iter()
            .position(|f| f.name == "deep")
            .expect("deep indexed");
        let chain = g.chain(&reach, deep);
        // Direct edge sys_write → deep wins over the longer route via mid.
        assert_eq!(chain.len(), 2);
        assert_eq!(g.fns[chain[0]].name, "sys_write");
        assert_eq!(g.fns[chain[1]].name, "deep");
    }

    /// Build a plain edge list from (from, to) pairs over `n` nodes.
    fn edge_list(n: usize, pairs: &[(usize, usize)]) -> Vec<BTreeSet<usize>> {
        let mut edges = vec![BTreeSet::new(); n];
        for &(a, b) in pairs {
            edges[a % n].insert(b % n);
        }
        edges
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 128,
            ..proptest::prelude::ProptestConfig::default()
        })]

        /// Reachability is monotone in the edge set: adding edges never
        /// shrinks the reachable set (the safety property the conservative
        /// resolver leans on — over-approximate edges can only widen the
        /// checked hot-path set).
        #[test]
        fn reachability_is_monotone_in_the_edge_set(
            pairs in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
            extra in proptest::collection::vec((0usize..12, 0usize..12), 0..12),
            root in 0usize..12,
        ) {
            let base = edge_list(12, &pairs);
            let mut all = pairs.clone();
            all.extend_from_slice(&extra);
            let bigger = edge_list(12, &all);
            let r0: Vec<usize> = reachable_in(&base, &[root]).into_keys().collect();
            let r1 = reachable_in(&bigger, &[root]);
            for id in r0 {
                proptest::prop_assert!(
                    r1.contains_key(&id),
                    "node {} reachable with fewer edges but not with more", id
                );
            }
        }

        /// Every reached node's parent chain terminates at a root, and
        /// every hop follows a real edge — witness chains never fabricate
        /// calls.
        #[test]
        fn witness_parents_follow_real_edges(
            pairs in proptest::collection::vec((0usize..10, 0usize..10), 0..30),
            root in 0usize..10,
        ) {
            let edges = edge_list(10, &pairs);
            let reach = reachable_in(&edges, &[root]);
            for (&id, &parent) in &reach {
                match parent {
                    None => proptest::prop_assert_eq!(id, root),
                    Some(p) => {
                        proptest::prop_assert!(edges[p].contains(&id));
                        proptest::prop_assert!(reach.contains_key(&p));
                    }
                }
            }
        }
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let recs = vec![FileRecord::new(
            "crates/core/src/a.rs",
            "fn outer() {\n    fn inner() { target(); }\n}\nfn target() {}\n",
        )];
        let g = Graph::build(&recs);
        let pos = recs[0].raw.find("target()").unwrap();
        let id = g.enclosing_fn(0, pos).unwrap();
        assert_eq!(g.fns[id].name, "inner");
    }
}
