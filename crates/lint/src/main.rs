//! CLI for `outboard-lint`.
//!
//! ```text
//! outboard-lint [--workspace] [--root PATH] [--deny-all] [--json PATH]
//!               [--sarif PATH] [--roots a,b,Type::c] [--no-graph]
//!               [--graph] [--explain ID] [--self-check] [--quiet]
//! ```
//!
//! Graph scoping is the default: `panic-hot-path`, `payload-alloc`, and
//! `wallclock` fire in fns reachable from the declared entry points, and
//! findings carry witness call chains. `--no-graph` restores the PR-4
//! file-list scoping; `--graph` dumps the call graph and reachable set;
//! `--explain rule@file:line` prints one finding's chain hop by hop (for
//! use from CI failure logs); `--sarif` writes a SARIF 2.1.0 report.
//!
//! Exit codes: 0 clean (or findings without `--deny-all`), 1 findings with
//! `--deny-all`, a failed self-check, or an unknown `--explain` id;
//! 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use outboard_lint::ScanOptions;

struct Args {
    root: Option<PathBuf>,
    deny_all: bool,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    self_check: bool,
    quiet: bool,
    graph_dump: bool,
    no_graph: bool,
    roots: Vec<String>,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        deny_all: false,
        json: None,
        sarif: None,
        self_check: false,
        quiet: false,
        graph_dump: false,
        no_graph: false,
        roots: Vec::new(),
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            // --workspace is the default (and only) scan mode; accepted for
            // explicitness in CI invocations.
            "--workspace" => {}
            "--deny-all" => args.deny_all = true,
            "--self-check" => args.self_check = true,
            "--quiet" => args.quiet = true,
            "--graph" => args.graph_dump = true,
            "--no-graph" => args.no_graph = true,
            "--json" => {
                let path = it.next().ok_or("--json requires a path")?;
                args.json = Some(PathBuf::from(path));
            }
            "--sarif" => {
                let path = it.next().ok_or("--sarif requires a path")?;
                args.sarif = Some(PathBuf::from(path));
            }
            "--roots" => {
                let list = it.next().ok_or("--roots requires a comma-separated list")?;
                args.roots = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if args.roots.is_empty() {
                    return Err("--roots requires at least one root spec".into());
                }
            }
            "--explain" => {
                let id = it
                    .next()
                    .ok_or("--explain requires a finding id (rule@file:line)")?;
                args.explain = Some(id);
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.no_graph && (args.graph_dump || !args.roots.is_empty()) {
        return Err("--no-graph conflicts with --graph/--roots".into());
    }
    Ok(args)
}

/// Ascend from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("outboard-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.self_check {
        return match outboard_lint::self_check() {
            Ok(n) => {
                if !args.quiet {
                    println!("outboard-lint: self-check ok ({n} fixtures)");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("outboard-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("outboard-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let opts = ScanOptions {
        graph: !args.no_graph,
        roots: args.roots.clone(),
    };

    let inputs = match outboard_lint::workspace_inputs(&root) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("outboard-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if args.graph_dump {
        print!("{}", outboard_lint::graph_listing(&inputs, &opts));
        return ExitCode::SUCCESS;
    }

    let files_scanned = inputs.len();
    let findings = outboard_lint::scan_files(&inputs, &opts);

    if let Some(id) = &args.explain {
        return match findings.iter().find(|f| &f.id() == id) {
            Some(f) => {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
                if !f.snippet.is_empty() {
                    println!("    {}", f.snippet);
                }
                if f.chain.is_empty() {
                    println!("    (no witness chain: rule is not reachability-scoped)");
                } else {
                    println!("    witness chain (root first):");
                    for (i, h) in f.chain.iter().enumerate() {
                        println!("      {i}. {} at {}:{}", h.name, h.file, h.line);
                    }
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "outboard-lint: no finding with id `{id}` ({} findings in this scan; \
                     ids look like rule@file:line)",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        };
    }

    if let Some(json_path) = &args.json {
        let json = outboard_lint::render_json(&root, files_scanned, &findings);
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("outboard-lint: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(sarif_path) = &args.sarif {
        let sarif = outboard_lint::render_sarif(&findings);
        if let Err(e) = std::fs::write(sarif_path, sarif) {
            eprintln!("outboard-lint: writing {}: {e}", sarif_path.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        print!("{}", outboard_lint::render_human(files_scanned, &findings));
    }
    if args.deny_all && !findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
