//! CLI for `outboard-lint`.
//!
//! ```text
//! outboard-lint [--workspace] [--root PATH] [--deny-all] [--json PATH]
//!               [--self-check] [--quiet]
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny-all`), 1 findings with
//! `--deny-all` or a failed self-check, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    deny_all: bool,
    json: Option<PathBuf>,
    self_check: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        deny_all: false,
        json: None,
        self_check: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            // --workspace is the default (and only) scan mode; accepted for
            // explicitness in CI invocations.
            "--workspace" => {}
            "--deny-all" => args.deny_all = true,
            "--self-check" => args.self_check = true,
            "--quiet" => args.quiet = true,
            "--json" => {
                let path = it.next().ok_or("--json requires a path")?;
                args.json = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Ascend from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("outboard-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.self_check {
        return match outboard_lint::self_check() {
            Ok(n) => {
                if !args.quiet {
                    println!("outboard-lint: self-check ok ({n} fixtures)");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("outboard-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let root = match args.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("outboard-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let (files_scanned, findings) = match outboard_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("outboard-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(json_path) = &args.json {
        let json = outboard_lint::render_json(&root, files_scanned, &findings);
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("outboard-lint: writing {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        print!("{}", outboard_lint::render_human(files_scanned, &findings));
    }
    if args.deny_all && !findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
