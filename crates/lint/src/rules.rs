//! The rule registry.
//!
//! Every rule is a function from a lexed file to findings. Rules run over
//! the masked view (so comments and string literals never trip them) and
//! skip test regions. Suppression via `// lint: allow(rule, reason)`
//! pragmas is applied by the caller in [`crate::scan_files`].
//!
//! Scoping comes in two flavors. The legacy `FileList` scope is the PR-4
//! behavior: `panic-hot-path`, `payload-alloc`, and `wallclock` fire on a
//! hard-coded set of paths. The `Graph` scope replaces the path test with
//! interprocedural reachability: a construct is hot iff its enclosing fn
//! is reachable from a declared entry point in the workspace call graph
//! (see [`crate::graph`]), and every finding carries the witness call
//! chain that proves it.

use crate::lexer::{FileIndex, LexedFile};
use crate::{Finding, Hop};

/// Names of every registered rule (pragmas naming anything else are
/// themselves reported as `bad-pragma`).
pub const RULE_NAMES: &[&str] = &[
    "panic-hot-path",
    "nondet-order",
    "wallclock",
    "metrics-naming",
    "span-balance",
    "payload-alloc",
    "bad-pragma",
    "stale-pragma",
];

/// TX/RX hot-path modules: the legacy (pre-call-graph) scope for
/// `panic-hot-path`, and still the scope for `span-balance` (span pairing
/// is a per-module discipline, not a reachability property).
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/kernel/output.rs",
    "crates/core/src/kernel/input.rs",
    "crates/core/src/kernel/robust.rs",
    "crates/core/src/driver.rs",
    "crates/cab/src/cab.rs",
    "crates/cab/src/netmem.rs",
    "crates/cab/src/mac.rs",
];

/// Crates whose state feeds the simulation: any iteration-order dependence
/// here can leak into event ordering and break byte-identical runs.
const SIM_FACING: &[&str] = &[
    "crates/cab/src/",
    "crates/core/src/",
    "crates/host/src/",
    "crates/netsim/src/",
    "crates/sim/src/",
    "crates/testbed/src/",
];

/// Paths exempt from the wallclock rule: the bench harness may legitimately
/// read wall time and environment (it measures the real machine), and the
/// lint tool itself parses argv. The exemption survives graph scoping
/// because the conservative name-based call resolution can pull bench
/// helpers into the reachable set through method-name collisions.
const WALLCLOCK_EXEMPT: &[&str] = &["crates/bench/", "crates/lint/"];

/// Frame/cluster payload hot paths (legacy file-list scope): per-frame
/// storage here must come from `sim::pool`. Under graph scoping the rule
/// instead fires in any reachable fn inside these crates.
const PAYLOAD_POOL_FILES: &[&str] = &[
    "crates/netsim/src/link.rs",
    "crates/netsim/src/fault.rs",
    "crates/mbuf/src/mbuf.rs",
    "crates/mbuf/src/chain.rs",
];

/// Crate prefixes whose reachable fns are in scope for `payload-alloc`
/// under graph scoping (kernel-side allocation is legitimate; the pool
/// discipline applies to frame/cluster payload storage).
const PAYLOAD_CRATES: &[&str] = &["crates/netsim/", "crates/mbuf/"];

/// Reachability scope for one file: the byte extents of every reachable fn
/// body, each with the witness call chain (root first) that reaches it.
/// Built by [`crate::scan_files`] from the workspace call graph.
#[derive(Debug, Default)]
pub struct FileScope {
    /// `(body_start, body_end, chain)` per reachable fn, source order.
    pub hot: Vec<(usize, usize, Vec<Hop>)>,
}

impl FileScope {
    /// Witness chain for the innermost reachable fn body containing `pos`,
    /// or `None` when `pos` is not on the hot path.
    pub fn chain_at(&self, pos: usize) -> Option<&[Hop]> {
        self.hot
            .iter()
            .filter(|&&(s, e, _)| s <= pos && pos < e)
            .min_by_key(|&&(s, e, _)| e - s)
            .map(|(_, _, c)| c.as_slice())
    }
}

/// How the three hot-path rules decide what is hot.
#[derive(Debug)]
pub enum RuleScope<'a> {
    /// Legacy PR-4 behavior: hard-coded file lists, no chains.
    FileList,
    /// Interprocedural: reachable fn extents for the file under scan.
    Graph(&'a FileScope),
}

struct ScanCx<'a> {
    rel: &'a str,
    lex: &'a LexedFile,
    index: &'a FileIndex,
    raw: &'a str,
    scope: &'a RuleScope<'a>,
}

/// Run every per-file rule over one file. (`stale-pragma` is a
/// workspace-level rule and lives in [`crate::scan_files`].)
pub fn run_all(
    rel: &str,
    raw: &str,
    lex: &LexedFile,
    index: &FileIndex,
    scope: &RuleScope<'_>,
) -> Vec<Finding> {
    let cx = ScanCx {
        rel,
        lex,
        index,
        raw,
        scope,
    };
    let mut findings = Vec::new();
    panic_hot_path(&cx, &mut findings);
    nondet_order(&cx, &mut findings);
    wallclock(&cx, &mut findings);
    metrics_naming(&cx, &mut findings);
    span_balance(&cx, &mut findings);
    payload_alloc(&cx, &mut findings);
    bad_pragma(&cx, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets where `needle` occurs in the masked text as a standalone
/// token (preceding byte is not an identifier char; when
/// `next_non_ident` is set, the following byte must not be one either).
fn token_hits(lex: &LexedFile, needle: &str, next_non_ident: bool) -> Vec<usize> {
    let hay = lex.masked.as_bytes();
    let pat = needle.as_bytes();
    let guard_prev = pat.first().copied().map(is_ident).unwrap_or(false);
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(hay, pat, from) {
        from = pos + 1;
        if guard_prev && pos > 0 && is_ident(hay[pos - 1]) {
            continue;
        }
        if next_non_ident {
            let after = pos + pat.len();
            if after < hay.len() && is_ident(hay[after]) {
                continue;
            }
        }
        hits.push(pos);
    }
    hits
}

fn find_from(hay: &[u8], pat: &[u8], from: usize) -> Option<usize> {
    if pat.is_empty() || from + pat.len() > hay.len() {
        return None;
    }
    hay[from..]
        .windows(pat.len())
        .position(|w| w == pat)
        .map(|p| p + from)
}

fn snippet_at(cx: &ScanCx<'_>, line: usize) -> String {
    cx.raw
        .lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .chars()
        .take(120)
        .collect()
}

fn push(cx: &ScanCx<'_>, out: &mut Vec<Finding>, rule: &'static str, pos: usize, message: String) {
    push_chain(cx, out, rule, pos, message, Vec::new());
}

fn push_chain(
    cx: &ScanCx<'_>,
    out: &mut Vec<Finding>,
    rule: &'static str,
    pos: usize,
    message: String,
    chain: Vec<Hop>,
) {
    let line = cx.lex.line_of(pos);
    if cx.lex.is_test_line(line) {
        return;
    }
    out.push(Finding {
        rule,
        file: cx.rel.to_string(),
        line,
        message,
        snippet: snippet_at(cx, line),
        chain,
    });
}

/// In graph scope, the witness chain for `pos` (None = not hot). In
/// file-list scope, `Some(empty)` when `rel` is in `files`.
fn hot_chain(cx: &ScanCx<'_>, files: &[&str], pos: usize) -> Option<Vec<Hop>> {
    match cx.scope {
        RuleScope::FileList => files.contains(&cx.rel).then(Vec::new),
        RuleScope::Graph(fs) => fs.chain_at(pos).map(<[Hop]>::to_vec),
    }
}

/// Rule 1: no panicking constructs on the TX/RX hot path. Under graph
/// scoping, "hot path" means any fn reachable from a declared entry point
/// — a panic in a helper three crates away still takes the host down.
fn panic_hot_path(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    const NEEDLES: &[(&str, bool)] = &[
        ("panic!", false),
        (".unwrap(", false),
        (".expect(", false),
        ("unreachable!", false),
        ("todo!", false),
        ("unimplemented!", false),
    ];
    for &(needle, next) in NEEDLES {
        for pos in token_hits(cx.lex, needle, next) {
            let Some(chain) = hot_chain(cx, HOT_PATH_FILES, pos) else {
                continue;
            };
            push_chain(
                cx,
                out,
                "panic-hot-path",
                pos,
                format!("`{needle}` on a hot path: a driver must degrade, not abort"),
                chain,
            );
        }
    }
}

/// Rule 2: hash-ordered containers in sim-facing crates. `HashMap<…>` /
/// `HashSet<…>` iteration order varies run to run; a type declared here
/// must either be a `BTreeMap`/`BTreeSet` or carry a
/// `// lint: allow(nondet-order, reason)` pragma asserting it is only ever
/// used for keyed lookup. Matches plain type positions (`HashMap<…>`,
/// including type-alias RHS and fully-qualified paths), turbofish
/// expression positions (`HashMap::<…>`), and local renames
/// (`use std::collections::HashMap as Peers;` makes `Peers<…>` fire).
fn nondet_order(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if !SIM_FACING.iter().any(|p| cx.rel.starts_with(p)) {
        return;
    }
    // `use std::collections::HashMap as X` (or `hashbrown::HashMap as X`)
    // makes the rename a needle of its own.
    let mut needles: Vec<(String, &'static str)> = vec![
        ("HashMap".to_string(), "HashMap"),
        ("HashSet".to_string(), "HashSet"),
    ];
    for u in &cx.index.uses {
        if let Some(last) = u.path.last() {
            if (last == "HashMap" || last == "HashSet") && u.local != *last {
                needles.push((
                    u.local.clone(),
                    if last == "HashMap" {
                        "HashMap"
                    } else {
                        "HashSet"
                    },
                ));
            }
        }
    }
    let hay = cx.lex.masked.as_bytes();
    for (needle, canonical) in &needles {
        for pos in token_hits(cx.lex, needle, true) {
            // Type positions (`HashMap<…>`) and turbofish (`HashMap::<…>`)
            // pin the container choice and need a decision; plain
            // `HashMap::new()` initializers follow from a declaration
            // that is flagged where it is written.
            let mut after = pos + needle.len();
            while after < hay.len() && hay[after].is_ascii_whitespace() {
                after += 1;
            }
            if after + 1 < hay.len() && hay[after] == b':' && hay[after + 1] == b':' {
                after += 2;
                while after < hay.len() && hay[after].is_ascii_whitespace() {
                    after += 1;
                }
            }
            if after >= hay.len() || hay[after] != b'<' {
                continue;
            }
            let spelled = if needle == canonical {
                format!("`{canonical}`")
            } else {
                format!("`{needle}` (= `{canonical}`)")
            };
            push(
                cx,
                out,
                "nondet-order",
                pos,
                format!(
                    "{spelled} in a sim-facing crate: iteration order is nondeterministic; \
                     use BTreeMap/BTreeSet or pragma a lookup-only map"
                ),
            );
        }
    }
}

/// Rule 3: no wall-clock or environment reads outside the bench harness.
/// Simulated time comes from `sim::Time`; anything else breaks replay.
/// Under graph scoping the rule tightens from "anywhere outside bench" to
/// "reachable from an entry point" — cold config readers are no longer
/// flagged, hot ones gain a witness chain.
fn wallclock(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if WALLCLOCK_EXEMPT.iter().any(|p| cx.rel.starts_with(p)) {
        return;
    }
    const NEEDLES: &[(&str, bool)] = &[
        ("Instant", true),
        ("SystemTime", true),
        ("std::env", true),
        ("env::var", false),
        ("env::vars", false),
    ];
    for &(needle, next) in NEEDLES {
        for pos in token_hits(cx.lex, needle, next) {
            let chain = match cx.scope {
                // Legacy scope: every non-exempt file.
                RuleScope::FileList => Vec::new(),
                RuleScope::Graph(fs) => match fs.chain_at(pos) {
                    Some(c) => c.to_vec(),
                    None => continue,
                },
            };
            push_chain(
                cx,
                out,
                "wallclock",
                pos,
                format!("`{needle}`: wall-clock/environment access outside crates/bench breaks determinism"),
                chain,
            );
        }
    }
}

/// Rule 4: metric names registered through `sim::obs` must fit the
/// `host{i}.cab{j}.*` / `world.*` taxonomy — including the causal-tracing
/// `world.spans.*` / `host{i}.spans.*` namespace (per-stage `p50_ns`,
/// `p99_ns`, `max_ns`, `bytes` leaves), the windowed-telemetry
/// `world.timeline.*` namespace (`windows`, `evicted`, `series`,
/// `window_ns`), and the flight-recorder series names
/// (`host{i}.tx_bytes`-style per-host leaves plus `world.pool_in_use` /
/// `world.faults`): lowercase dotted snake_case, with `{…}` format holes
/// allowed inside a segment.
fn metrics_naming(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if !SIM_FACING.iter().any(|p| cx.rel.starts_with(p)) {
        return;
    }
    const CALLS: &[&str] = &[
        ".counter(",
        ".gauge(",
        ".frac(",
        ".busy_frac(",
        ".hist(",
        ".scope(",
        ".sub(",
    ];
    for call in CALLS {
        for pos in token_hits(cx.lex, call, false) {
            let Some(lit) = literal_first_arg(cx, pos + call.len()) else {
                continue;
            };
            if !valid_metric_name(&lit) {
                push(
                    cx,
                    out,
                    "metrics-naming",
                    pos,
                    format!(
                        "metric name \"{lit}\" violates the taxonomy \
                         (lowercase dotted snake_case, `{{hole}}`s allowed)"
                    ),
                );
            }
        }
    }
}

/// If the first argument at `from` (raw text) is a string literal —
/// possibly behind `&` and/or `format!(` — return its contents.
fn literal_first_arg(cx: &ScanCx<'_>, mut from: usize) -> Option<String> {
    let raw = cx.raw.as_bytes();
    loop {
        while from < raw.len() && raw[from].is_ascii_whitespace() {
            from += 1;
        }
        if from < raw.len() && raw[from] == b'&' {
            from += 1;
            continue;
        }
        if cx.raw[from..].starts_with("format!") {
            from += "format!".len();
            while from < raw.len() && raw[from].is_ascii_whitespace() {
                from += 1;
            }
            if from < raw.len() && raw[from] == b'(' {
                from += 1;
                continue;
            }
            return None;
        }
        break;
    }
    if from >= raw.len() || raw[from] != b'"' {
        return None;
    }
    cx.lex
        .strings
        .iter()
        .find(|s| s.start == from)
        .map(|s| s.value.clone())
}

/// Lowercase dotted snake_case with `{…}` holes: `host{i}.cab{j}.frames`.
fn valid_metric_name(name: &str) -> bool {
    // Replace format holes with a valid placeholder char so `cab{j}`
    // validates as `cab0` and a whole-segment hole like `{ch}` still
    // counts as a non-empty segment.
    let mut stripped = String::new();
    let mut in_hole = false;
    for c in name.chars() {
        match c {
            '{' if !in_hole => in_hole = true,
            '}' if in_hole => {
                in_hole = false;
                stripped.push('0');
            }
            _ if in_hole => {}
            _ => stripped.push(c),
        }
    }
    if in_hole || stripped.is_empty() {
        return false;
    }
    stripped.split('.').all(|seg| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Rule 5: span accounting on the hot path. A `span_open(` call whose
/// enclosing function never calls `span_close`/`span_close_bytes`/
/// `span_drop` leaks an open span: it will surface as `dropped` at run
/// teardown instead of a measured close. Cross-function open/close pairs
/// belong in the `kernel/mod.rs` helper layer (`span_detour_open` and
/// friends), which this rule deliberately does not match. Span pairing is
/// a per-module discipline, so this rule keeps its file-list scope even
/// under graph scoping.
fn span_balance(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&cx.rel) {
        return;
    }
    let opens = token_hits(cx.lex, "span_open(", false);
    if opens.is_empty() {
        return;
    }
    let extents = fn_extents(cx.lex.masked.as_bytes());
    for pos in opens {
        // Innermost enclosing function body (extents are in source order,
        // so the last match is the innermost for nested items).
        let body = extents.iter().rev().find(|&&(s, e)| s <= pos && pos < e);
        let balanced = body.is_some_and(|&(s, e)| {
            let body = &cx.lex.masked[s..e];
            ["span_close(", "span_close_bytes(", "span_drop("]
                .iter()
                .any(|close| body.contains(close))
        });
        if !balanced {
            push(
                cx,
                out,
                "span-balance",
                pos,
                "`span_open` with no `span_close`/`span_drop` in the same function \
                 leaks an open span on the hot path; route cross-function pairs \
                 through the kernel span helpers"
                    .to_string(),
            );
        }
    }
}

/// Byte ranges of every `fn` body (`{`..`}`) in the masked text, in source
/// order. Brace matching is done on the masked view, so braces inside
/// strings and comments never unbalance it.
fn fn_extents(hay: &[u8]) -> Vec<(usize, usize)> {
    let mut extents = Vec::new();
    let mut i = 0usize;
    while i + 2 < hay.len() {
        let standalone = hay[i] == b'f'
            && hay[i + 1] == b'n'
            && !is_ident(hay[i + 2])
            && (i == 0 || !is_ident(hay[i - 1]));
        if !standalone {
            i += 1;
            continue;
        }
        // Body opens at the first `{` after the signature; `;` first means
        // a bodiless declaration (trait method, extern).
        let mut j = i + 2;
        while j < hay.len() && hay[j] != b'{' && hay[j] != b';' {
            j += 1;
        }
        if j >= hay.len() || hay[j] == b';' {
            i = j.max(i + 1);
            continue;
        }
        let open = j;
        let mut depth = 0usize;
        while j < hay.len() {
            match hay[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        extents.push((open, j.min(hay.len())));
        i += 2;
    }
    extents
}

/// Rule 6: no direct payload allocation on the frame/cluster hot paths.
/// The netsim link/fault layer and the mbuf cluster path recycle storage
/// through `sim::pool`; a stray `vec![…]`, `Vec::with_capacity`, or
/// `.to_vec()` there reintroduces the per-frame allocation the pool exists
/// to eliminate. Under graph scoping: any reachable fn inside the netsim
/// or mbuf crates.
fn payload_alloc(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    const NEEDLES: &[&str] = &["vec!", "Vec::with_capacity", ".to_vec("];
    let in_payload_crate = PAYLOAD_CRATES.iter().any(|p| cx.rel.starts_with(p));
    for needle in NEEDLES {
        for pos in token_hits(cx.lex, needle, false) {
            let chain = match cx.scope {
                RuleScope::FileList => {
                    if !PAYLOAD_POOL_FILES.contains(&cx.rel) {
                        continue;
                    }
                    Vec::new()
                }
                RuleScope::Graph(fs) => {
                    if !in_payload_crate {
                        continue;
                    }
                    match fs.chain_at(pos) {
                        Some(c) => c.to_vec(),
                        None => continue,
                    }
                }
            };
            push_chain(
                cx,
                out,
                "payload-alloc",
                pos,
                format!(
                    "`{needle}` on a payload hot path: frame/cluster storage must \
                     come from sim::pool (pragma a cold path with a reason)"
                ),
                chain,
            );
        }
    }
}

/// Rule 7: malformed pragmas and pragmas naming unknown rules. Not
/// suppressible (a pragma cannot vouch for itself).
fn bad_pragma(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    for issue in &cx.lex.pragma_issues {
        out.push(Finding {
            rule: "bad-pragma",
            file: cx.rel.to_string(),
            line: issue.line,
            message: issue.message.clone(),
            snippet: snippet_at(cx, issue.line),
            chain: Vec::new(),
        });
    }
    for pragma in &cx.lex.pragmas {
        if !RULE_NAMES.contains(&pragma.rule.as_str()) {
            out.push(Finding {
                rule: "bad-pragma",
                file: cx.rel.to_string(),
                line: pragma.line,
                message: format!("pragma allows unknown rule `{}`", pragma.rule),
                snippet: snippet_at(cx, pragma.line),
                chain: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::valid_metric_name;

    #[test]
    fn metric_name_shapes() {
        assert!(valid_metric_name("tcp.segs_out"));
        assert!(valid_metric_name("world.spans.opened"));
        assert!(valid_metric_name("world.spans.mdma_rx.p99_ns"));
        assert!(valid_metric_name("world.spans.{stage}.bytes"));
        assert!(valid_metric_name("world.chaos.events_applied"));
        assert!(valid_metric_name("world.chaos.down_drops"));
        assert!(valid_metric_name("host{i}.cab{j}.frames_tx"));
        assert!(valid_metric_name("channel.{ch}.frames_tx"));
        assert!(valid_metric_name("world"));
        assert!(!valid_metric_name("Bad Name"));
        assert!(!valid_metric_name("tcp..segs"));
        assert!(!valid_metric_name(".leading"));
        assert!(!valid_metric_name("trailing."));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("host{i"));
        assert!(!valid_metric_name("kebab-case"));
    }
}
