//! The rule registry.
//!
//! Every rule is a function from a lexed file to findings. Rules scope
//! themselves by path, run over the masked view (so comments and string
//! literals never trip them), and skip test regions. Suppression via
//! `// lint: allow(rule, reason)` pragmas is applied by the caller in
//! [`crate::scan_source`].

use crate::lexer::LexedFile;
use crate::Finding;

/// Names of every registered rule (pragmas naming anything else are
/// themselves reported as `bad-pragma`).
pub const RULE_NAMES: &[&str] = &[
    "panic-hot-path",
    "nondet-order",
    "wallclock",
    "metrics-naming",
    "span-balance",
    "payload-alloc",
    "bad-pragma",
];

/// TX/RX hot-path modules where a panic would take down the whole host for
/// a condition the driver is expected to survive (the fault-injection PR
/// routed all of these through `CabError`).
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/kernel/output.rs",
    "crates/core/src/kernel/input.rs",
    "crates/core/src/kernel/robust.rs",
    "crates/core/src/driver.rs",
    "crates/cab/src/cab.rs",
    "crates/cab/src/netmem.rs",
    "crates/cab/src/mac.rs",
];

/// Crates whose state feeds the simulation: any iteration-order dependence
/// here can leak into event ordering and break byte-identical runs.
const SIM_FACING: &[&str] = &[
    "crates/cab/src/",
    "crates/core/src/",
    "crates/host/src/",
    "crates/netsim/src/",
    "crates/sim/src/",
    "crates/testbed/src/",
];

/// Paths exempt from the wallclock rule: the bench harness may legitimately
/// read wall time and environment (it measures the real machine), and the
/// lint tool itself parses argv.
const WALLCLOCK_EXEMPT: &[&str] = &["crates/bench/", "crates/lint/"];

/// Frame/cluster payload hot paths: per-frame storage here must come from
/// `sim::pool` (the steady-state transfer allocates nothing per frame), so
/// a fresh `vec![…]` / `Vec::with_capacity` / `.to_vec()` is either a pool
/// bypass or needs a `// lint: allow(payload-alloc, reason)` pragma
/// explaining why the path is cold.
const PAYLOAD_POOL_FILES: &[&str] = &[
    "crates/netsim/src/link.rs",
    "crates/netsim/src/fault.rs",
    "crates/mbuf/src/mbuf.rs",
    "crates/mbuf/src/chain.rs",
];

struct ScanCx<'a> {
    rel: &'a str,
    lex: &'a LexedFile,
    raw: &'a str,
}

/// Run every rule over one file.
pub fn run_all(rel: &str, raw: &str, lex: &LexedFile) -> Vec<Finding> {
    let cx = ScanCx { rel, lex, raw };
    let mut findings = Vec::new();
    panic_hot_path(&cx, &mut findings);
    nondet_order(&cx, &mut findings);
    wallclock(&cx, &mut findings);
    metrics_naming(&cx, &mut findings);
    span_balance(&cx, &mut findings);
    payload_alloc(&cx, &mut findings);
    bad_pragma(&cx, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets where `needle` occurs in the masked text as a standalone
/// token (preceding byte is not an identifier char; when
/// `next_non_ident` is set, the following byte must not be one either).
fn token_hits(lex: &LexedFile, needle: &str, next_non_ident: bool) -> Vec<usize> {
    let hay = lex.masked.as_bytes();
    let pat = needle.as_bytes();
    let guard_prev = pat.first().copied().map(is_ident).unwrap_or(false);
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(hay, pat, from) {
        from = pos + 1;
        if guard_prev && pos > 0 && is_ident(hay[pos - 1]) {
            continue;
        }
        if next_non_ident {
            let after = pos + pat.len();
            if after < hay.len() && is_ident(hay[after]) {
                continue;
            }
        }
        hits.push(pos);
    }
    hits
}

fn find_from(hay: &[u8], pat: &[u8], from: usize) -> Option<usize> {
    if pat.is_empty() || from + pat.len() > hay.len() {
        return None;
    }
    hay[from..]
        .windows(pat.len())
        .position(|w| w == pat)
        .map(|p| p + from)
}

fn snippet_at(cx: &ScanCx<'_>, line: usize) -> String {
    cx.raw
        .lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .chars()
        .take(120)
        .collect()
}

fn push(cx: &ScanCx<'_>, out: &mut Vec<Finding>, rule: &'static str, pos: usize, message: String) {
    let line = cx.lex.line_of(pos);
    if cx.lex.is_test_line(line) {
        return;
    }
    out.push(Finding {
        rule,
        file: cx.rel.to_string(),
        line,
        message,
        snippet: snippet_at(cx, line),
    });
}

/// Rule 1: no panicking constructs in the TX/RX hot-path modules.
fn panic_hot_path(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&cx.rel) {
        return;
    }
    const NEEDLES: &[(&str, bool)] = &[
        ("panic!", false),
        (".unwrap(", false),
        (".expect(", false),
        ("unreachable!", false),
        ("todo!", false),
        ("unimplemented!", false),
    ];
    for &(needle, next) in NEEDLES {
        for pos in token_hits(cx.lex, needle, next) {
            push(
                cx,
                out,
                "panic-hot-path",
                pos,
                format!("`{needle}` on a hot path: a driver must degrade, not abort"),
            );
        }
    }
}

/// Rule 2: hash-ordered containers in sim-facing crates. `HashMap<…>` /
/// `HashSet<…>` iteration order varies run to run; a type declared here
/// must either be a `BTreeMap`/`BTreeSet` or carry a
/// `// lint: allow(nondet-order, reason)` pragma asserting it is only ever
/// used for keyed lookup.
fn nondet_order(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if !SIM_FACING.iter().any(|p| cx.rel.starts_with(p)) {
        return;
    }
    let hay = cx.lex.masked.as_bytes();
    for needle in ["HashMap", "HashSet"] {
        for pos in token_hits(cx.lex, needle, false) {
            // Only type positions (`HashMap<…>`) need a decision;
            // `HashMap::new()` initializers follow from the declaration.
            let mut after = pos + needle.len();
            while after < hay.len() && hay[after].is_ascii_whitespace() {
                after += 1;
            }
            if after >= hay.len() || hay[after] != b'<' {
                continue;
            }
            push(
                cx,
                out,
                "nondet-order",
                pos,
                format!(
                    "`{needle}` in a sim-facing crate: iteration order is nondeterministic; \
                     use BTreeMap/BTreeSet or pragma a lookup-only map"
                ),
            );
        }
    }
}

/// Rule 3: no wall-clock or environment reads outside the bench harness.
/// Simulated time comes from `sim::Time`; anything else breaks replay.
fn wallclock(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if WALLCLOCK_EXEMPT.iter().any(|p| cx.rel.starts_with(p)) {
        return;
    }
    const NEEDLES: &[(&str, bool)] = &[
        ("Instant", true),
        ("SystemTime", true),
        ("std::env", true),
        ("env::var", false),
        ("env::vars", false),
    ];
    for &(needle, next) in NEEDLES {
        for pos in token_hits(cx.lex, needle, next) {
            push(
                cx,
                out,
                "wallclock",
                pos,
                format!("`{needle}`: wall-clock/environment access outside crates/bench breaks determinism"),
            );
        }
    }
}

/// Rule 4: metric names registered through `sim::obs` must fit the
/// `host{i}.cab{j}.*` / `world.*` taxonomy — including the causal-tracing
/// `world.spans.*` / `host{i}.spans.*` namespace (per-stage `p50_ns`,
/// `p99_ns`, `max_ns`, `bytes` leaves): lowercase dotted snake_case, with
/// `{…}` format holes allowed inside a segment.
fn metrics_naming(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if !SIM_FACING.iter().any(|p| cx.rel.starts_with(p)) {
        return;
    }
    const CALLS: &[&str] = &[
        ".counter(",
        ".gauge(",
        ".frac(",
        ".busy_frac(",
        ".hist(",
        ".scope(",
        ".sub(",
    ];
    for call in CALLS {
        for pos in token_hits(cx.lex, call, false) {
            let Some(lit) = literal_first_arg(cx, pos + call.len()) else {
                continue;
            };
            if !valid_metric_name(&lit) {
                push(
                    cx,
                    out,
                    "metrics-naming",
                    pos,
                    format!(
                        "metric name \"{lit}\" violates the taxonomy \
                         (lowercase dotted snake_case, `{{hole}}`s allowed)"
                    ),
                );
            }
        }
    }
}

/// If the first argument at `from` (raw text) is a string literal —
/// possibly behind `&` and/or `format!(` — return its contents.
fn literal_first_arg(cx: &ScanCx<'_>, mut from: usize) -> Option<String> {
    let raw = cx.raw.as_bytes();
    loop {
        while from < raw.len() && raw[from].is_ascii_whitespace() {
            from += 1;
        }
        if from < raw.len() && raw[from] == b'&' {
            from += 1;
            continue;
        }
        if cx.raw[from..].starts_with("format!") {
            from += "format!".len();
            while from < raw.len() && raw[from].is_ascii_whitespace() {
                from += 1;
            }
            if from < raw.len() && raw[from] == b'(' {
                from += 1;
                continue;
            }
            return None;
        }
        break;
    }
    if from >= raw.len() || raw[from] != b'"' {
        return None;
    }
    cx.lex
        .strings
        .iter()
        .find(|s| s.start == from)
        .map(|s| s.value.clone())
}

/// Lowercase dotted snake_case with `{…}` holes: `host{i}.cab{j}.frames`.
fn valid_metric_name(name: &str) -> bool {
    // Replace format holes with a valid placeholder char so `cab{j}`
    // validates as `cab0` and a whole-segment hole like `{ch}` still
    // counts as a non-empty segment.
    let mut stripped = String::new();
    let mut in_hole = false;
    for c in name.chars() {
        match c {
            '{' if !in_hole => in_hole = true,
            '}' if in_hole => {
                in_hole = false;
                stripped.push('0');
            }
            _ if in_hole => {}
            _ => stripped.push(c),
        }
    }
    if in_hole || stripped.is_empty() {
        return false;
    }
    stripped.split('.').all(|seg| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Rule 5: span accounting on the hot path. A `span_open(` call whose
/// enclosing function never calls `span_close`/`span_close_bytes`/
/// `span_drop` leaks an open span: it will surface as `dropped` at run
/// teardown instead of a measured close. Cross-function open/close pairs
/// belong in the `kernel/mod.rs` helper layer (`span_detour_open` and
/// friends), which this rule deliberately does not match.
fn span_balance(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&cx.rel) {
        return;
    }
    let opens = token_hits(cx.lex, "span_open(", false);
    if opens.is_empty() {
        return;
    }
    let extents = fn_extents(cx.lex.masked.as_bytes());
    for pos in opens {
        // Innermost enclosing function body (extents are in source order,
        // so the last match is the innermost for nested items).
        let body = extents.iter().rev().find(|&&(s, e)| s <= pos && pos < e);
        let balanced = body.is_some_and(|&(s, e)| {
            let body = &cx.lex.masked[s..e];
            ["span_close(", "span_close_bytes(", "span_drop("]
                .iter()
                .any(|close| body.contains(close))
        });
        if !balanced {
            push(
                cx,
                out,
                "span-balance",
                pos,
                "`span_open` with no `span_close`/`span_drop` in the same function \
                 leaks an open span on the hot path; route cross-function pairs \
                 through the kernel span helpers"
                    .to_string(),
            );
        }
    }
}

/// Byte ranges of every `fn` body (`{`..`}`) in the masked text, in source
/// order. Brace matching is done on the masked view, so braces inside
/// strings and comments never unbalance it.
fn fn_extents(hay: &[u8]) -> Vec<(usize, usize)> {
    let mut extents = Vec::new();
    let mut i = 0usize;
    while i + 2 < hay.len() {
        let standalone = hay[i] == b'f'
            && hay[i + 1] == b'n'
            && !is_ident(hay[i + 2])
            && (i == 0 || !is_ident(hay[i - 1]));
        if !standalone {
            i += 1;
            continue;
        }
        // Body opens at the first `{` after the signature; `;` first means
        // a bodiless declaration (trait method, extern).
        let mut j = i + 2;
        while j < hay.len() && hay[j] != b'{' && hay[j] != b';' {
            j += 1;
        }
        if j >= hay.len() || hay[j] == b';' {
            i = j.max(i + 1);
            continue;
        }
        let open = j;
        let mut depth = 0usize;
        while j < hay.len() {
            match hay[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        extents.push((open, j.min(hay.len())));
        i += 2;
    }
    extents
}

/// Rule 6: no direct payload allocation on the frame/cluster hot paths.
/// `netsim::link`, `fault.rs` frame fates, and the mbuf cluster path
/// recycle storage through `sim::pool`; a stray `vec![…]`,
/// `Vec::with_capacity`, or `.to_vec()` there reintroduces the per-frame
/// allocation the pool exists to eliminate.
fn payload_alloc(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    if !PAYLOAD_POOL_FILES.contains(&cx.rel) {
        return;
    }
    const NEEDLES: &[&str] = &["vec!", "Vec::with_capacity", ".to_vec("];
    for needle in NEEDLES {
        for pos in token_hits(cx.lex, needle, false) {
            push(
                cx,
                out,
                "payload-alloc",
                pos,
                format!(
                    "`{needle}` on a payload hot path: frame/cluster storage must \
                     come from sim::pool (pragma a cold path with a reason)"
                ),
            );
        }
    }
}

/// Rule 7: malformed pragmas and pragmas naming unknown rules. Not
/// suppressible (a pragma cannot vouch for itself).
fn bad_pragma(cx: &ScanCx<'_>, out: &mut Vec<Finding>) {
    for issue in &cx.lex.pragma_issues {
        out.push(Finding {
            rule: "bad-pragma",
            file: cx.rel.to_string(),
            line: issue.line,
            message: issue.message.clone(),
            snippet: snippet_at(cx, issue.line),
        });
    }
    for pragma in &cx.lex.pragmas {
        if !RULE_NAMES.contains(&pragma.rule.as_str()) {
            out.push(Finding {
                rule: "bad-pragma",
                file: cx.rel.to_string(),
                line: pragma.line,
                message: format!("pragma allows unknown rule `{}`", pragma.rule),
                snippet: snippet_at(cx, pragma.line),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::valid_metric_name;

    #[test]
    fn metric_name_shapes() {
        assert!(valid_metric_name("tcp.segs_out"));
        assert!(valid_metric_name("world.spans.opened"));
        assert!(valid_metric_name("world.spans.mdma_rx.p99_ns"));
        assert!(valid_metric_name("world.spans.{stage}.bytes"));
        assert!(valid_metric_name("world.chaos.events_applied"));
        assert!(valid_metric_name("world.chaos.down_drops"));
        assert!(valid_metric_name("host{i}.cab{j}.frames_tx"));
        assert!(valid_metric_name("channel.{ch}.frames_tx"));
        assert!(valid_metric_name("world"));
        assert!(!valid_metric_name("Bad Name"));
        assert!(!valid_metric_name("tcp..segs"));
        assert!(!valid_metric_name(".leading"));
        assert!(!valid_metric_name("trailing."));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("host{i"));
        assert!(!valid_metric_name("kebab-case"));
    }
}
