//! A small token-aware pass over Rust source.
//!
//! The rules in [`crate::rules`] are substring matchers; what makes them
//! trustworthy is that they run over a *masked* view of the source in which
//! comments, string literals, and char literals have been blanked out (byte
//! for byte, so offsets and line numbers are unchanged), and that lines
//! inside `#[test]` / `#[cfg(test)]` items are marked so rules can skip
//! them. This is not a full lexer — it only needs to answer "is this byte
//! code or not?" — but it handles the constructs that defeat a plain grep:
//! nested block comments, raw strings (`r#"…"#`), byte strings, escapes,
//! and the char-literal / lifetime ambiguity of `'`.

/// A string literal found in the source (needed by the metrics-naming rule,
/// which must see literal contents even though the masked view blanks them).
#[derive(Clone, Debug)]
pub struct StrLit {
    /// Byte offset of the opening quote.
    pub start: usize,
    /// The literal's contents (raw, escapes not processed).
    pub value: String,
}

/// An inline suppression: `// lint: allow(rule-name, reason)`.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// 1-indexed line the pragma appears on. It suppresses findings of
    /// `rule` on this line and the next.
    pub line: usize,
    /// Rule name being allowed.
    pub rule: String,
    /// Mandatory free-text justification.
    pub reason: String,
}

/// A pragma that could not be parsed (reported as a `bad-pragma` finding).
#[derive(Clone, Debug)]
pub struct PragmaIssue {
    /// 1-indexed line of the malformed pragma.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

/// The masked view of one source file.
#[derive(Debug)]
pub struct LexedFile {
    /// Source with comments and string/char literals blanked to spaces
    /// (newlines preserved, so byte offsets and line numbers still match).
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// String literals, in source order.
    pub strings: Vec<StrLit>,
    /// Well-formed lint pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed lint pragmas.
    pub pragma_issues: Vec<PragmaIssue>,
    /// `test_lines[line - 1]` is true when the line is inside a `#[test]`
    /// or `#[cfg(test)]` item (including the attribute itself).
    pub test_lines: Vec<bool>,
}

impl LexedFile {
    /// 1-indexed line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Is the (1-indexed) line inside a test region?
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.test_lines.get(line - 1).copied().unwrap_or(false)
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for slot in &mut out[from..to] {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// Mask `src` and collect literals, pragmas, and test regions.
pub fn lex(src: &str) -> LexedFile {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut strings = Vec::new();
    let mut line_comments: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let prev_ident = i > 0 && is_ident(b[i - 1]);
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                line_comments.push((start, i));
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                i = mask_plain_string(src, &mut out, &mut strings, i);
            }
            b'r' | b'b' if !prev_ident => {
                if let Some(next) = scan_prefixed_string(src, &mut out, &mut strings, i) {
                    i = next;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                i = mask_char_or_lifetime(src, &mut out, i);
            }
            _ => i += 1,
        }
    }

    let masked = String::from_utf8(out).unwrap_or_else(|e| {
        // Masking only writes ASCII spaces over whole spans; if the input
        // was valid UTF-8 the output is too. Fall back lossily regardless.
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    });

    let mut line_starts = vec![0usize];
    for (pos, ch) in src.bytes().enumerate() {
        if ch == b'\n' {
            line_starts.push(pos + 1);
        }
    }

    let mut lexed = LexedFile {
        masked,
        line_starts,
        strings,
        pragmas: Vec::new(),
        pragma_issues: Vec::new(),
        test_lines: vec![false; src.lines().count().max(1)],
    };
    collect_pragmas(src, &line_comments, &mut lexed);
    mark_test_regions(&mut lexed);
    lexed
}

/// Mask a `"…"` string starting at `start` (the opening quote). Returns the
/// index just past the closing quote.
fn mask_plain_string(src: &str, out: &mut [u8], strings: &mut Vec<StrLit>, start: usize) -> usize {
    let b = src.as_bytes();
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let inner_end = i.saturating_sub(1).max(start + 1);
    strings.push(StrLit {
        start,
        value: src.get(start + 1..inner_end).unwrap_or("").to_string(),
    });
    blank(out, start, i.min(b.len()));
    i
}

/// Handle `r"…"`, `r#"…"#`, `b"…"`, `br"…"` starting at `start` (the `r` or
/// `b`). Returns `None` when the bytes are not actually a string prefix.
fn scan_prefixed_string(
    src: &str,
    out: &mut [u8],
    strings: &mut Vec<StrLit>,
    start: usize,
) -> Option<usize> {
    let b = src.as_bytes();
    let mut i = start;
    if b[i] == b'b' {
        i += 1;
        if i < b.len() && b[i] == b'"' {
            return Some(mask_plain_string(src, out, strings, i).max(start + 1));
        }
    }
    if i >= b.len() || b[i] != b'r' {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return None;
    }
    let inner_start = i + 1;
    i += 1;
    // Find `"` followed by `hashes` hash marks.
    while i < b.len() {
        if b[i] == b'"'
            && src.as_bytes()[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            let inner = src.get(inner_start..i).unwrap_or("").to_string();
            strings.push(StrLit {
                start,
                value: inner,
            });
            let end = i + 1 + hashes;
            blank(out, start, end.min(b.len()));
            return Some(end);
        }
        i += 1;
    }
    blank(out, start, b.len());
    Some(b.len())
}

/// Disambiguate a `'` as char literal (masked) or lifetime (left alone).
fn mask_char_or_lifetime(src: &str, out: &mut [u8], start: usize) -> usize {
    let b = src.as_bytes();
    if start + 1 >= b.len() {
        return start + 1;
    }
    if b[start + 1] == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut i = start + 2;
        while i < b.len() {
            if b[i] == b'\\' {
                i += 2;
            } else if b[i] == b'\'' {
                i += 1;
                break;
            } else {
                i += 1;
            }
        }
        blank(out, start, i.min(b.len()));
        return i;
    }
    // A char literal is `'` + one UTF-8 scalar + `'`; anything else (ident
    // char not followed by a quote) is a lifetime.
    let ch_len = utf8_len(b[start + 1]);
    let close = start + 1 + ch_len;
    if close < b.len() && b[close] == b'\'' {
        blank(out, start, close + 1);
        close + 1
    } else {
        start + 1
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse `// lint: allow(rule, reason)` pragmas out of line comments.
fn collect_pragmas(src: &str, comments: &[(usize, usize)], lexed: &mut LexedFile) {
    for &(start, end) in comments {
        let text = &src[start..end];
        let body = text.trim_start_matches('/').trim_start_matches('!').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let line = lexed.line_of(start);
        let rest = rest.trim();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            lexed.pragma_issues.push(PragmaIssue {
                line,
                message: format!("malformed pragma `{body}`: expected `lint: allow(rule, reason)`"),
            });
            continue;
        };
        let Some((rule, reason)) = args.split_once(',') else {
            lexed.pragma_issues.push(PragmaIssue {
                line,
                message: "pragma missing a reason: `lint: allow(rule, reason)`".to_string(),
            });
            continue;
        };
        let rule = rule.trim().to_string();
        let reason = reason.trim().to_string();
        if rule.is_empty() || reason.is_empty() {
            lexed.pragma_issues.push(PragmaIssue {
                line,
                message: "pragma rule and reason must both be non-empty".to_string(),
            });
            continue;
        }
        lexed.pragmas.push(Pragma { line, rule, reason });
    }
}

/// Is this normalized attribute body a test gate? Conservative exact forms
/// only, so `cfg(not(test))` is never mistaken for one.
fn is_test_attr(normalized: &str) -> bool {
    normalized == "test"
        || normalized == "cfg(test)"
        || normalized.starts_with("cfg(all(test,")
        || normalized == "cfg(all(test))"
}

/// Mark lines covered by `#[test]` / `#[cfg(test)]` items in the masked
/// view (attributes through the end of the decorated item).
fn mark_test_regions(lexed: &mut LexedFile) {
    let mb = lexed.masked.as_bytes().to_vec();
    let mut i = 0usize;
    while i < mb.len() {
        if mb[i] != b'#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        let inner = j < mb.len() && mb[j] == b'!';
        if inner {
            j += 1;
        }
        while j < mb.len() && mb[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= mb.len() || mb[j] != b'[' {
            i += 1;
            continue;
        }
        let (content_end, attr_end) = match balanced(&mb, j, b'[', b']') {
            Some(close) => (close, close + 1),
            None => {
                i += 1;
                continue;
            }
        };
        let normalized: String = lexed.masked[j + 1..content_end]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if !is_test_attr(&normalized) {
            i = attr_end;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is a test module.
            for l in lexed.test_lines.iter_mut() {
                *l = true;
            }
            return;
        }
        let item_end = item_end_after_attrs(&mb, attr_end);
        let first = lexed.line_of(attr_start);
        let last = lexed.line_of(item_end.min(mb.len().saturating_sub(1)));
        for line in first..=last {
            if let Some(slot) = lexed.test_lines.get_mut(line - 1) {
                *slot = true;
            }
        }
        i = item_end;
    }
}

/// Index of the matching closer for the opener at `open_at`.
fn balanced(b: &[u8], open_at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open_at;
    while i < b.len() {
        if b[i] == open {
            depth += 1;
        } else if b[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Find the end of the item decorated by an attribute ending at `from`:
/// skip further attributes, then scan to the item's closing `}` (brace
/// matched) or terminating `;`.
fn item_end_after_attrs(b: &[u8], mut from: usize) -> usize {
    loop {
        while from < b.len() && b[from].is_ascii_whitespace() {
            from += 1;
        }
        if from < b.len() && b[from] == b'#' {
            let mut j = from + 1;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < b.len() && b[j] == b'[' {
                match balanced(b, j, b'[', b']') {
                    Some(close) => {
                        from = close + 1;
                        continue;
                    }
                    None => return b.len(),
                }
            }
        }
        break;
    }
    let mut i = from;
    let mut paren_depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' => paren_depth += 1,
            b')' | b']' => paren_depth = paren_depth.saturating_sub(1),
            b';' if paren_depth == 0 => return i + 1,
            b'{' => {
                return match balanced(b, i, b'{', b'}') {
                    Some(close) => close + 1,
                    None => b.len(),
                };
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

// ---------------------------------------------------------------------------
// Item indexing: functions, impl/trait/mod scopes, and `use` aliases.
//
// The call-graph layer needs to know *where functions live* (name, self
// type, module path, body extent) and *what names are in scope* (`use`
// renames). Like everything else in this crate it works on the masked view,
// so braces inside strings or comments never unbalance the scope stack.
// ---------------------------------------------------------------------------

/// One `fn` item found in a file.
#[derive(Clone, Debug)]
pub struct FnDecl {
    /// The function's bare name.
    pub name: String,
    /// Type (or trait) name of the innermost enclosing `impl`/`trait`
    /// block, when the fn is a method / associated fn.
    pub self_ty: Option<String>,
    /// In-file module path (names of enclosing `mod` blocks, outermost
    /// first). The file's own path supplies the crate-level prefix.
    pub module: Vec<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Byte offset of the `fn` keyword.
    pub sig_start: usize,
    /// Byte range of the `{ … }` body (exclusive end), when the fn has one
    /// (trait-method declarations and `extern` items do not).
    pub body: Option<(usize, usize)>,
    /// Index (into the same `FileIndex::fns`) of the enclosing fn, for
    /// local `fn` items declared inside another fn's body.
    pub parent: Option<usize>,
    /// True when the declaration sits in a `#[test]`/`#[cfg(test)]` region;
    /// such fns are excluded from the call graph.
    pub is_test: bool,
    /// True when the first parameter is a `self` receiver (any of `self`,
    /// `&self`, `&mut self`, `mut self`, `self: …`). Receiver-less
    /// associated fns can never be the target of a `.method()` call.
    pub has_self: bool,
}

/// A `use` rename visible in the file: local name → full path segments.
#[derive(Clone, Debug)]
pub struct UseAlias {
    /// The name the item is known by locally (last segment or `as` alias).
    pub local: String,
    /// The imported path, one segment per element.
    pub path: Vec<String>,
}

/// Per-file symbol index: every fn item plus `use` aliases.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Functions in source order.
    pub fns: Vec<FnDecl>,
    /// `use` aliases in source order.
    pub uses: Vec<UseAlias>,
}

/// Scope-stack entry while walking a file's items.
#[derive(Debug)]
enum Scope {
    /// `mod name { … }`: in-file module.
    Mod(String, usize),
    /// `impl [Trait for] Type { … }` or `trait Name { … }`.
    SelfTy(String, usize),
    /// A fn body (index into `FileIndex::fns`, end offset).
    Fn(usize, usize),
}

impl Scope {
    fn end(&self) -> usize {
        match *self {
            Scope::Mod(_, e) | Scope::SelfTy(_, e) | Scope::Fn(_, e) => e,
        }
    }
}

/// Read the identifier starting at `i`, if any.
fn ident_at(b: &[u8], i: usize) -> Option<&str> {
    if i >= b.len() || !(b[i].is_ascii_alphabetic() || b[i] == b'_') {
        return None;
    }
    let mut j = i;
    while j < b.len() && is_ident(b[j]) {
        j += 1;
    }
    std::str::from_utf8(&b[i..j]).ok()
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Skip a balanced `<…>` generics list starting at `from` (the `<`).
/// Returns the index just past the closing `>`. `->` and comparison
/// operators cannot appear in the positions we call this from (right after
/// `impl`, a type path, or `::`), so plain depth counting suffices.
pub(crate) fn skip_generics(b: &[u8], from: usize) -> usize {
    let mut depth = 0usize;
    let mut i = from;
    while i < b.len() {
        match b[i] {
            b'<' => depth += 1,
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Extract the self-type name from an `impl` header: the last path segment
/// of the implemented-for type (`impl Foo`, `impl<T> Trait for a::b::Foo<T>`
/// → `Foo`).
fn impl_self_ty(header: &str) -> Option<String> {
    let hb = header.as_bytes();
    // Prefer the text after a top-level ` for `; otherwise the whole header.
    let mut depth = 0i32;
    let mut for_at = None;
    let mut k = 0usize;
    while k < hb.len() {
        match hb[k] {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b'f' if depth == 0
                && hb[k..].starts_with(b"for")
                && (k == 0 || !is_ident(hb[k - 1]))
                && (k + 3 >= hb.len() || !is_ident(hb[k + 3])) =>
            {
                for_at = Some(k + 3);
            }
            _ => {}
        }
        k += 1;
    }
    let ty_part = match for_at {
        Some(at) => &header[at..],
        None => {
            // Strip leading generics: `impl<T: Bound> Type`.
            let t = header.trim_start();
            if t.starts_with('<') {
                let past = skip_generics(t.as_bytes(), 0);
                &t[past.min(t.len())..]
            } else {
                t
            }
        }
    };
    // Last identifier that starts a path segment, ignoring generic args:
    // walk segments of the leading path.
    let tb = ty_part.as_bytes();
    let mut i = skip_ws(tb, 0);
    // Skip leading `&`, `dyn`, `crate::` etc. by just scanning idents.
    let mut last = None;
    while i < tb.len() {
        if let Some(id) = ident_at(tb, i) {
            if id != "dyn" && id != "crate" && id != "super" && id != "self" {
                last = Some(id.to_string());
            }
            i += id.len();
            i = skip_ws(tb, i);
            if i + 1 < tb.len() && tb[i] == b':' && tb[i + 1] == b':' {
                i = skip_ws(tb, i + 2);
                continue;
            }
            if i < tb.len() && tb[i] == b'<' {
                break; // generic args of the final segment
            }
            break;
        }
        i += 1;
    }
    last
}

/// Parse the `use` tree starting after the `use` keyword; `prefix` carries
/// the path segments accumulated so far. Flattens groups and records
/// `as` renames.
fn parse_use_tree(text: &str, prefix: &[String], out: &mut Vec<UseAlias>) {
    let text = text.trim();
    // Split off a group suffix: `a::b::{X, Y as Z}`.
    if let Some(brace) = text.find('{') {
        let head = text[..brace].trim().trim_end_matches("::");
        let mut pre = prefix.to_vec();
        for seg in head.split("::").filter(|s| !s.is_empty()) {
            pre.push(seg.trim().to_string());
        }
        let inner = text[brace + 1..].rsplit_once('}').map_or("", |(i, _)| i);
        // Split the group on top-level commas (nested groups are rare in
        // this tree; handle one level of nesting by depth counting).
        let mut depth = 0i32;
        let mut start = 0usize;
        let ib = inner.as_bytes();
        for k in 0..=ib.len() {
            let at_end = k == ib.len();
            let c = if at_end { b',' } else { ib[k] };
            match c {
                b'{' if !at_end => depth += 1,
                b'}' if !at_end => depth -= 1,
                b',' if depth == 0 => {
                    let part = &inner[start..k];
                    if !part.trim().is_empty() {
                        parse_use_tree(part, &pre, out);
                    }
                    start = k + 1;
                }
                _ => {}
            }
        }
        return;
    }
    // Plain path, possibly with a rename: `a::b::C [as D]`.
    let (path_part, alias) = match text.split_once(" as ") {
        Some((p, a)) => (p.trim(), Some(a.trim().to_string())),
        None => (text, None),
    };
    let mut path = prefix.to_vec();
    for seg in path_part.split("::").filter(|s| !s.is_empty()) {
        let seg = seg.trim();
        if seg == "*" {
            return; // glob: nothing nameable to record
        }
        path.push(seg.to_string());
    }
    let Some(last) = path.last().cloned() else {
        return;
    };
    let local = alias.unwrap_or(last);
    if local == "self" {
        // `use a::b::{self}`: module imported under its own name.
        path.pop();
        if let Some(m) = path.last().cloned() {
            out.push(UseAlias { local: m, path });
        }
        return;
    }
    out.push(UseAlias { local, path });
}

/// Index every `fn`, `impl`/`trait` scope, in-file `mod`, and `use` alias.
pub fn index_items(lex: &LexedFile) -> FileIndex {
    let b = lex.masked.as_bytes();
    let mut idx = FileIndex::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        while scopes.last().is_some_and(|s| s.end() <= i) {
            scopes.pop();
        }
        let Some(word) = ident_at(b, i) else {
            i += 1;
            continue;
        };
        let word_start = i;
        let after = i + word.len();
        match word {
            "mod" => {
                let ni = skip_ws(b, after);
                if let Some(name) = ident_at(b, ni) {
                    let mut j = ni + name.len();
                    j = skip_ws(b, j);
                    if j < b.len() && b[j] == b'{' {
                        let end = balanced(b, j, b'{', b'}').map_or(b.len(), |e| e + 1);
                        scopes.push(Scope::Mod(name.to_string(), end));
                        i = j + 1;
                        continue;
                    }
                }
                i = after;
            }
            "impl" => {
                // Header runs to the opening `{` (skip leading generics so
                // a `{` in a const-generic default cannot confuse us; none
                // appear in this tree, but the skip is cheap).
                let mut j = skip_ws(b, after);
                if j < b.len() && b[j] == b'<' {
                    j = skip_generics(b, j);
                }
                let header_start = j;
                while j < b.len() && b[j] != b'{' && b[j] != b';' {
                    j += 1;
                }
                if j < b.len() && b[j] == b'{' {
                    let header = &lex.masked[header_start..j];
                    let end = balanced(b, j, b'{', b'}').map_or(b.len(), |e| e + 1);
                    if let Some(ty) = impl_self_ty(header) {
                        scopes.push(Scope::SelfTy(ty, end));
                    }
                    i = j + 1;
                    continue;
                }
                i = after;
            }
            "trait" => {
                let ni = skip_ws(b, after);
                if let Some(name) = ident_at(b, ni) {
                    let mut j = ni + name.len();
                    while j < b.len() && b[j] != b'{' && b[j] != b';' {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'{' {
                        let end = balanced(b, j, b'{', b'}').map_or(b.len(), |e| e + 1);
                        scopes.push(Scope::SelfTy(name.to_string(), end));
                        i = j + 1;
                        continue;
                    }
                }
                i = after;
            }
            "use" => {
                let mut j = after;
                while j < b.len() && b[j] != b';' {
                    j += 1;
                }
                parse_use_tree(&lex.masked[after..j.min(b.len())], &[], &mut idx.uses);
                i = j;
            }
            "fn" => {
                let ni = skip_ws(b, after);
                let Some(name) = ident_at(b, ni) else {
                    // `fn(u32) -> u32` function-pointer type.
                    i = after;
                    continue;
                };
                // Signature runs to the body `{` or a `;` at paren depth 0
                // (`where` clauses, return types, and default generic args
                // contain no braces in this tree).
                let mut j = ni + name.len();
                let mut depth = 0usize;
                while j < b.len() {
                    match b[j] {
                        b'(' | b'[' | b'<' => depth += 1,
                        b')' | b']' | b'>' => depth = depth.saturating_sub(1),
                        b'{' if depth == 0 => break,
                        b';' if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let body = if j < b.len() && b[j] == b'{' {
                    let close = balanced(b, j, b'{', b'}').map_or(b.len(), |e| e + 1);
                    Some((j, close))
                } else {
                    None
                };
                let line = lex.line_of(word_start);
                let module = scopes
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Mod(m, _) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                let self_ty = scopes.iter().rev().find_map(|s| match s {
                    Scope::SelfTy(t, _) => Some(t.clone()),
                    _ => None,
                });
                let parent = scopes.iter().rev().find_map(|s| match s {
                    Scope::Fn(id, _) => Some(*id),
                    _ => None,
                });
                // Receiver check: first token inside the parameter parens,
                // after `&`, a lifetime, and `mut`, must be `self`.
                let has_self = {
                    let mut k = skip_ws(b, ni + name.len());
                    if k < b.len() && b[k] == b'<' {
                        k = skip_generics(b, k);
                        k = skip_ws(b, k);
                    }
                    if k < b.len() && b[k] == b'(' {
                        let mut p = skip_ws(b, k + 1);
                        if p < b.len() && b[p] == b'&' {
                            p = skip_ws(b, p + 1);
                        }
                        if p < b.len() && b[p] == b'\'' {
                            p += 1;
                            while p < b.len() && is_ident(b[p]) {
                                p += 1;
                            }
                            p = skip_ws(b, p);
                        }
                        if ident_at(b, p) == Some("mut") {
                            p = skip_ws(b, p + 3);
                        }
                        ident_at(b, p) == Some("self")
                    } else {
                        false
                    }
                };
                let fn_id = idx.fns.len();
                idx.fns.push(FnDecl {
                    name: name.to_string(),
                    self_ty,
                    module,
                    line,
                    sig_start: word_start,
                    body,
                    parent,
                    is_test: lex.is_test_line(line),
                    has_self,
                });
                if let Some((open, close)) = body {
                    scopes.push(Scope::Fn(fn_id, close));
                    i = open + 1;
                } else {
                    i = j;
                }
            }
            _ => i = after,
        }
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"panic!\"; // panic!\nlet b = 1; /* .unwrap( */\n";
        let lx = lex(src);
        assert!(!lx.masked.contains("panic!"));
        assert!(!lx.masked.contains(".unwrap("));
        assert!(lx.masked.contains("let a ="));
        assert_eq!(lx.masked.len(), src.len());
        assert_eq!(lx.strings.len(), 1);
        assert_eq!(lx.strings[0].value, "panic!");
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ still */ code(); let s = r#\"x \"quoted\" y\"#;";
        let lx = lex(src);
        assert!(lx.masked.contains("code()"));
        assert!(!lx.masked.contains("still"));
        assert!(!lx.masked.contains("quoted"));
        assert_eq!(lx.strings[0].value, "x \"quoted\" y");
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; let d = '\\n'; }";
        let lx = lex(src);
        assert!(lx.masked.contains("<'a>"));
        assert!(lx.masked.contains("&'a str"));
        assert!(!lx.masked.contains("'y'"));
        assert!(!lx.masked.contains("\\n"));
    }

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn x() { panic!() }\n}\nfn also_hot() {}\n";
        let lx = lex(src);
        assert!(!lx.is_test_line(1));
        assert!(lx.is_test_line(2));
        assert!(lx.is_test_line(3));
        assert!(lx.is_test_line(4));
        assert!(lx.is_test_line(5));
        assert!(!lx.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn hot() { }\n";
        let lx = lex(src);
        assert!(!lx.is_test_line(2));
    }

    #[test]
    fn item_index_sees_methods_and_modules() {
        let src = "mod inner {\n    pub struct T;\n    impl T {\n        pub fn m(&self) {}\n    }\n}\nfn free() {}\nimpl fmt::Display for Wide<u32> {\n    fn fmt(&self) {}\n}\n";
        let idx = index_items(&lex(src));
        let names: Vec<_> = idx
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref(), f.module.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("m", Some("T"), vec!["inner".to_string()]),
                ("free", None, vec![]),
                ("fmt", Some("Wide"), vec![]),
            ]
        );
    }

    #[test]
    fn item_index_tracks_local_fns_and_bodies() {
        let src = "fn outer() {\n    fn local(x: u32) -> u32 { x }\n    local(1);\n}\n";
        let idx = index_items(&lex(src));
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.fns[0].name, "outer");
        assert_eq!(idx.fns[1].name, "local");
        assert_eq!(idx.fns[1].parent, Some(0));
        let (s, e) = idx.fns[0].body.unwrap();
        let (ls, le) = idx.fns[1].body.unwrap();
        assert!(s < ls && le < e, "local body nested in outer body");
    }

    #[test]
    fn item_index_marks_test_fns() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let idx = index_items(&lex(src));
        assert!(!idx.fns[0].is_test);
        assert!(idx.fns[1].is_test);
    }

    #[test]
    fn use_aliases_flatten_groups_and_renames() {
        let src = "use std::collections::{BTreeMap, HashMap as Map};\nuse crate::kernel::output;\n";
        let idx = index_items(&lex(src));
        let by_local: Vec<_> = idx
            .uses
            .iter()
            .map(|u| (u.local.as_str(), u.path.join("::")))
            .collect();
        assert!(by_local.contains(&("BTreeMap", "std::collections::BTreeMap".into())));
        assert!(by_local.contains(&("Map", "std::collections::HashMap".into())));
        assert!(by_local.contains(&("output", "crate::kernel::output".into())));
    }

    #[test]
    fn trait_default_methods_get_the_trait_as_self_ty() {
        let src = "trait Engine {\n    fn kind(&self) -> u8;\n    fn describe(&self) -> u8 { self.kind() }\n}\n";
        let idx = index_items(&lex(src));
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.fns[0].self_ty.as_deref(), Some("Engine"));
        assert!(idx.fns[0].body.is_none());
        assert!(idx.fns[1].body.is_some());
    }

    #[test]
    fn pragmas_parse_and_malformed_ones_are_reported() {
        let src = "// lint: allow(nondet-order, lookup only)\nlet x = 1;\n// lint: allow(oops\n";
        let lx = lex(src);
        assert_eq!(lx.pragmas.len(), 1);
        assert_eq!(lx.pragmas[0].rule, "nondet-order");
        assert_eq!(lx.pragmas[0].line, 1);
        assert_eq!(lx.pragma_issues.len(), 1);
        assert_eq!(lx.pragma_issues[0].line, 3);
    }
}
