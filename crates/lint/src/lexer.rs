//! A small token-aware pass over Rust source.
//!
//! The rules in [`crate::rules`] are substring matchers; what makes them
//! trustworthy is that they run over a *masked* view of the source in which
//! comments, string literals, and char literals have been blanked out (byte
//! for byte, so offsets and line numbers are unchanged), and that lines
//! inside `#[test]` / `#[cfg(test)]` items are marked so rules can skip
//! them. This is not a full lexer — it only needs to answer "is this byte
//! code or not?" — but it handles the constructs that defeat a plain grep:
//! nested block comments, raw strings (`r#"…"#`), byte strings, escapes,
//! and the char-literal / lifetime ambiguity of `'`.

/// A string literal found in the source (needed by the metrics-naming rule,
/// which must see literal contents even though the masked view blanks them).
#[derive(Clone, Debug)]
pub struct StrLit {
    /// Byte offset of the opening quote.
    pub start: usize,
    /// The literal's contents (raw, escapes not processed).
    pub value: String,
}

/// An inline suppression: `// lint: allow(rule-name, reason)`.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// 1-indexed line the pragma appears on. It suppresses findings of
    /// `rule` on this line and the next.
    pub line: usize,
    /// Rule name being allowed.
    pub rule: String,
    /// Mandatory free-text justification.
    pub reason: String,
}

/// A pragma that could not be parsed (reported as a `bad-pragma` finding).
#[derive(Clone, Debug)]
pub struct PragmaIssue {
    /// 1-indexed line of the malformed pragma.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

/// The masked view of one source file.
#[derive(Debug)]
pub struct LexedFile {
    /// Source with comments and string/char literals blanked to spaces
    /// (newlines preserved, so byte offsets and line numbers still match).
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// String literals, in source order.
    pub strings: Vec<StrLit>,
    /// Well-formed lint pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed lint pragmas.
    pub pragma_issues: Vec<PragmaIssue>,
    /// `test_lines[line - 1]` is true when the line is inside a `#[test]`
    /// or `#[cfg(test)]` item (including the attribute itself).
    pub test_lines: Vec<bool>,
}

impl LexedFile {
    /// 1-indexed line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Is the (1-indexed) line inside a test region?
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.test_lines.get(line - 1).copied().unwrap_or(false)
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for slot in &mut out[from..to] {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// Mask `src` and collect literals, pragmas, and test regions.
pub fn lex(src: &str) -> LexedFile {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut strings = Vec::new();
    let mut line_comments: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let prev_ident = i > 0 && is_ident(b[i - 1]);
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                line_comments.push((start, i));
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                i = mask_plain_string(src, &mut out, &mut strings, i);
            }
            b'r' | b'b' if !prev_ident => {
                if let Some(next) = scan_prefixed_string(src, &mut out, &mut strings, i) {
                    i = next;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                i = mask_char_or_lifetime(src, &mut out, i);
            }
            _ => i += 1,
        }
    }

    let masked = String::from_utf8(out).unwrap_or_else(|e| {
        // Masking only writes ASCII spaces over whole spans; if the input
        // was valid UTF-8 the output is too. Fall back lossily regardless.
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    });

    let mut line_starts = vec![0usize];
    for (pos, ch) in src.bytes().enumerate() {
        if ch == b'\n' {
            line_starts.push(pos + 1);
        }
    }

    let mut lexed = LexedFile {
        masked,
        line_starts,
        strings,
        pragmas: Vec::new(),
        pragma_issues: Vec::new(),
        test_lines: vec![false; src.lines().count().max(1)],
    };
    collect_pragmas(src, &line_comments, &mut lexed);
    mark_test_regions(&mut lexed);
    lexed
}

/// Mask a `"…"` string starting at `start` (the opening quote). Returns the
/// index just past the closing quote.
fn mask_plain_string(src: &str, out: &mut [u8], strings: &mut Vec<StrLit>, start: usize) -> usize {
    let b = src.as_bytes();
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let inner_end = i.saturating_sub(1).max(start + 1);
    strings.push(StrLit {
        start,
        value: src.get(start + 1..inner_end).unwrap_or("").to_string(),
    });
    blank(out, start, i.min(b.len()));
    i
}

/// Handle `r"…"`, `r#"…"#`, `b"…"`, `br"…"` starting at `start` (the `r` or
/// `b`). Returns `None` when the bytes are not actually a string prefix.
fn scan_prefixed_string(
    src: &str,
    out: &mut [u8],
    strings: &mut Vec<StrLit>,
    start: usize,
) -> Option<usize> {
    let b = src.as_bytes();
    let mut i = start;
    if b[i] == b'b' {
        i += 1;
        if i < b.len() && b[i] == b'"' {
            return Some(mask_plain_string(src, out, strings, i).max(start + 1));
        }
    }
    if i >= b.len() || b[i] != b'r' {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return None;
    }
    let inner_start = i + 1;
    i += 1;
    // Find `"` followed by `hashes` hash marks.
    while i < b.len() {
        if b[i] == b'"'
            && src.as_bytes()[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            let inner = src.get(inner_start..i).unwrap_or("").to_string();
            strings.push(StrLit {
                start,
                value: inner,
            });
            let end = i + 1 + hashes;
            blank(out, start, end.min(b.len()));
            return Some(end);
        }
        i += 1;
    }
    blank(out, start, b.len());
    Some(b.len())
}

/// Disambiguate a `'` as char literal (masked) or lifetime (left alone).
fn mask_char_or_lifetime(src: &str, out: &mut [u8], start: usize) -> usize {
    let b = src.as_bytes();
    if start + 1 >= b.len() {
        return start + 1;
    }
    if b[start + 1] == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut i = start + 2;
        while i < b.len() {
            if b[i] == b'\\' {
                i += 2;
            } else if b[i] == b'\'' {
                i += 1;
                break;
            } else {
                i += 1;
            }
        }
        blank(out, start, i.min(b.len()));
        return i;
    }
    // A char literal is `'` + one UTF-8 scalar + `'`; anything else (ident
    // char not followed by a quote) is a lifetime.
    let ch_len = utf8_len(b[start + 1]);
    let close = start + 1 + ch_len;
    if close < b.len() && b[close] == b'\'' {
        blank(out, start, close + 1);
        close + 1
    } else {
        start + 1
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse `// lint: allow(rule, reason)` pragmas out of line comments.
fn collect_pragmas(src: &str, comments: &[(usize, usize)], lexed: &mut LexedFile) {
    for &(start, end) in comments {
        let text = &src[start..end];
        let body = text.trim_start_matches('/').trim_start_matches('!').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let line = lexed.line_of(start);
        let rest = rest.trim();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            lexed.pragma_issues.push(PragmaIssue {
                line,
                message: format!("malformed pragma `{body}`: expected `lint: allow(rule, reason)`"),
            });
            continue;
        };
        let Some((rule, reason)) = args.split_once(',') else {
            lexed.pragma_issues.push(PragmaIssue {
                line,
                message: "pragma missing a reason: `lint: allow(rule, reason)`".to_string(),
            });
            continue;
        };
        let rule = rule.trim().to_string();
        let reason = reason.trim().to_string();
        if rule.is_empty() || reason.is_empty() {
            lexed.pragma_issues.push(PragmaIssue {
                line,
                message: "pragma rule and reason must both be non-empty".to_string(),
            });
            continue;
        }
        lexed.pragmas.push(Pragma { line, rule, reason });
    }
}

/// Is this normalized attribute body a test gate? Conservative exact forms
/// only, so `cfg(not(test))` is never mistaken for one.
fn is_test_attr(normalized: &str) -> bool {
    normalized == "test"
        || normalized == "cfg(test)"
        || normalized.starts_with("cfg(all(test,")
        || normalized == "cfg(all(test))"
}

/// Mark lines covered by `#[test]` / `#[cfg(test)]` items in the masked
/// view (attributes through the end of the decorated item).
fn mark_test_regions(lexed: &mut LexedFile) {
    let mb = lexed.masked.as_bytes().to_vec();
    let mut i = 0usize;
    while i < mb.len() {
        if mb[i] != b'#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        let inner = j < mb.len() && mb[j] == b'!';
        if inner {
            j += 1;
        }
        while j < mb.len() && mb[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= mb.len() || mb[j] != b'[' {
            i += 1;
            continue;
        }
        let (content_end, attr_end) = match balanced(&mb, j, b'[', b']') {
            Some(close) => (close, close + 1),
            None => {
                i += 1;
                continue;
            }
        };
        let normalized: String = lexed.masked[j + 1..content_end]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if !is_test_attr(&normalized) {
            i = attr_end;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is a test module.
            for l in lexed.test_lines.iter_mut() {
                *l = true;
            }
            return;
        }
        let item_end = item_end_after_attrs(&mb, attr_end);
        let first = lexed.line_of(attr_start);
        let last = lexed.line_of(item_end.min(mb.len().saturating_sub(1)));
        for line in first..=last {
            if let Some(slot) = lexed.test_lines.get_mut(line - 1) {
                *slot = true;
            }
        }
        i = item_end;
    }
}

/// Index of the matching closer for the opener at `open_at`.
fn balanced(b: &[u8], open_at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open_at;
    while i < b.len() {
        if b[i] == open {
            depth += 1;
        } else if b[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Find the end of the item decorated by an attribute ending at `from`:
/// skip further attributes, then scan to the item's closing `}` (brace
/// matched) or terminating `;`.
fn item_end_after_attrs(b: &[u8], mut from: usize) -> usize {
    loop {
        while from < b.len() && b[from].is_ascii_whitespace() {
            from += 1;
        }
        if from < b.len() && b[from] == b'#' {
            let mut j = from + 1;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < b.len() && b[j] == b'[' {
                match balanced(b, j, b'[', b']') {
                    Some(close) => {
                        from = close + 1;
                        continue;
                    }
                    None => return b.len(),
                }
            }
        }
        break;
    }
    let mut i = from;
    let mut paren_depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' => paren_depth += 1,
            b')' | b']' => paren_depth = paren_depth.saturating_sub(1),
            b';' if paren_depth == 0 => return i + 1,
            b'{' => {
                return match balanced(b, i, b'{', b'}') {
                    Some(close) => close + 1,
                    None => b.len(),
                };
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"panic!\"; // panic!\nlet b = 1; /* .unwrap( */\n";
        let lx = lex(src);
        assert!(!lx.masked.contains("panic!"));
        assert!(!lx.masked.contains(".unwrap("));
        assert!(lx.masked.contains("let a ="));
        assert_eq!(lx.masked.len(), src.len());
        assert_eq!(lx.strings.len(), 1);
        assert_eq!(lx.strings[0].value, "panic!");
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ still */ code(); let s = r#\"x \"quoted\" y\"#;";
        let lx = lex(src);
        assert!(lx.masked.contains("code()"));
        assert!(!lx.masked.contains("still"));
        assert!(!lx.masked.contains("quoted"));
        assert_eq!(lx.strings[0].value, "x \"quoted\" y");
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; let d = '\\n'; }";
        let lx = lex(src);
        assert!(lx.masked.contains("<'a>"));
        assert!(lx.masked.contains("&'a str"));
        assert!(!lx.masked.contains("'y'"));
        assert!(!lx.masked.contains("\\n"));
    }

    #[test]
    fn test_region_covers_cfg_test_module() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn x() { panic!() }\n}\nfn also_hot() {}\n";
        let lx = lex(src);
        assert!(!lx.is_test_line(1));
        assert!(lx.is_test_line(2));
        assert!(lx.is_test_line(3));
        assert!(lx.is_test_line(4));
        assert!(lx.is_test_line(5));
        assert!(!lx.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn hot() { }\n";
        let lx = lex(src);
        assert!(!lx.is_test_line(2));
    }

    #[test]
    fn pragmas_parse_and_malformed_ones_are_reported() {
        let src = "// lint: allow(nondet-order, lookup only)\nlet x = 1;\n// lint: allow(oops\n";
        let lx = lex(src);
        assert_eq!(lx.pragmas.len(), 1);
        assert_eq!(lx.pragmas[0].rule, "nondet-order");
        assert_eq!(lx.pragmas[0].line, 1);
        assert_eq!(lx.pragma_issues.len(), 1);
        assert_eq!(lx.pragma_issues[0].line, 3);
    }
}
