//! Transport checksum helpers shared by TCP and UDP output/input.
//!
//! §4.3 of the paper, distilled: on the single-copy path the transport
//! layer's "checksum routine" does not touch the data. It computes a *seed*
//! covering the fields the host owns — the transport header (with a zeroed
//! checksum field) plus the pseudo-header — and records where the hardware
//! must put the final checksum and how many words to skip. On receive it
//! *adjusts* the hardware's body sum with the pseudo-header and compares.

use outboard_host::{MemFault, UserMemory};
use outboard_mbuf::{Chain, MbufData};
use outboard_wire::checksum::{pseudo_header_sum, Accumulator};
use std::net::Ipv4Addr;

/// The transport seed for outboard checksumming: partial ones-complement
/// sum over pseudo-header + transport header (checksum field zeroed).
pub fn transport_seed(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: u8,
    transport_len: usize,
    header_zero_csum: &[u8],
) -> u16 {
    let pseudo = pseudo_header_sum(src.octets(), dst.octets(), proto, transport_len as u16);
    let mut acc = Accumulator::from_partial(pseudo);
    acc.add_bytes(header_zero_csum);
    acc.partial()
}

/// Validate a received transport segment using the CAB's hardware sum.
///
/// `hw_sum` covers transport header + payload (the receive engine starts at
/// the fixed word offset past the framing and IP headers). Valid iff
/// folding in the pseudo-header yields all-ones.
pub fn verify_hw(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: u8,
    transport_len: usize,
    hw_sum: u16,
) -> bool {
    let pseudo = pseudo_header_sum(src.octets(), dst.octets(), proto, transport_len as u16);
    let mut acc = Accumulator::from_partial(pseudo);
    acc.add_partial(hw_sum);
    acc.partial() == 0xFFFF
}

/// Software checksum over a possibly-mixed chain: the traditional path's
/// `Read_C`. Kernel bytes are summed directly; `M_UIO` bytes are read from
/// user memory (they are mapped — §4.4.1 notes the mapping is needed for
/// exactly this). `M_WCAB` bytes must be resolved by the caller (the bytes
/// live outboard); `resolve_wcab` supplies them.
pub fn software_sum(
    chain: &Chain,
    mem: &dyn UserMemory,
    mut resolve_wcab: impl FnMut(u32, u64, usize, usize, &mut [u8]) -> bool,
) -> Result<u16, MemFault> {
    let mut acc = Accumulator::new();
    for m in chain.iter() {
        match m.data() {
            MbufData::Kernel(b) => acc.add_bytes(b),
            MbufData::Uio(d) => {
                let mut buf = vec![0u8; d.len];
                mem.read_user(d.region.task, d.vaddr(), &mut buf)?;
                acc.add_bytes(&buf);
            }
            MbufData::Wcab(d) => {
                let mut buf = vec![0u8; d.len];
                let ok = resolve_wcab(d.cab, d.packet, d.off, d.len, &mut buf);
                assert!(ok, "WCAB bytes unavailable for software checksum");
                acc.add_bytes(&buf);
            }
        }
    }
    Ok(acc.partial())
}

#[cfg(test)]
mod tests {
    use super::*;
    use outboard_host::HostMem;
    use outboard_mbuf::{Mbuf, TaskId, UioDesc, UioRegion};
    use outboard_wire::checksum::Checksum;

    #[test]
    fn seed_plus_body_equals_direct_checksum() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut hdr = vec![0u8; 20];
        for (i, b) in hdr.iter_mut().enumerate() {
            *b = (i * 3) as u8;
        }
        hdr[16] = 0;
        hdr[17] = 0;
        let body = vec![0x5Au8; 100];
        let seed = transport_seed(src, dst, 6, 120, &hdr);
        // "Hardware": seed + body.
        let mut hw = Accumulator::from_partial(seed);
        hw.add_bytes(&body);
        let outboard = !hw.partial();
        // Direct software computation.
        let pseudo = pseudo_header_sum(src.octets(), dst.octets(), 6, 120);
        let mut sw = Accumulator::from_partial(pseudo);
        sw.add_bytes(&hdr);
        sw.add_bytes(&body);
        assert_eq!(Checksum(outboard), sw.finish());
    }

    #[test]
    fn verify_hw_accepts_and_rejects() {
        let src = Ipv4Addr::new(1, 2, 3, 4);
        let dst = Ipv4Addr::new(5, 6, 7, 8);
        // Build a valid segment: header with checksum + body.
        let mut seg = vec![7u8; 60];
        seg[16] = 0;
        seg[17] = 0;
        let pseudo = pseudo_header_sum(src.octets(), dst.octets(), 6, 60);
        let mut acc = Accumulator::from_partial(pseudo);
        acc.add_bytes(&seg);
        let c = acc.finish();
        seg[16..18].copy_from_slice(&c.to_be_bytes());
        // hw_sum as the CAB computes it: over the stamped segment.
        let mut hw = Accumulator::new();
        hw.add_bytes(&seg);
        assert!(verify_hw(src, dst, 6, 60, hw.partial()));
        // Corrupt a byte.
        seg[30] ^= 0xFF;
        let mut hw2 = Accumulator::new();
        hw2.add_bytes(&seg);
        assert!(!verify_hw(src, dst, 6, 60, hw2.partial()));
    }

    #[test]
    fn software_sum_walks_mixed_chains() {
        let mut hm = HostMem::new();
        let task = TaskId(1);
        hm.create_region(task, 0x1000, 256);
        let user_data = [0xABu8; 64];
        use outboard_host::UserMemory as _;
        hm.write_user(task, 0x1000, &user_data).unwrap();

        let mut chain = Chain::from_slice(&[1, 2, 3, 4]);
        chain.append(Mbuf::uio(UioDesc {
            region: UioRegion { task, base: 0x1000 },
            off: 0,
            len: 64,
            counter: None,
        }));
        let got = software_sum(&chain, &hm, |_, _, _, _, _| false).unwrap();

        let mut expect = Accumulator::new();
        expect.add_bytes(&[1, 2, 3, 4]);
        expect.add_bytes(&user_data);
        assert_eq!(got, expect.partial());
    }
}
