//! Sockets: state for the copy-semantics API.
//!
//! A socket couples two [`SockBuf`]s with a transport control block and the
//! bookkeeping for blocked operations. The single-copy path's defining
//! feature lives in [`BlockedWrite`]/[`BlockedRead`]: a process that wrote
//! or read through the CAB is suspended not on buffer space alone but on
//! the *completion of the DMAs* covering its buffer (§4.4.2).

use crate::sockbuf::SockBuf;
use crate::tcp::Tcb;
use crate::types::{IfaceId, Proto, SockAddr, SockId};
use outboard_mbuf::{Chain, TaskId, UioCounterId, UioRegion};
use std::collections::VecDeque;

/// Who owns a socket: a user process (copy semantics through syscalls) or
/// an in-kernel application (share semantics over mbuf chains, §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Owner {
    /// A user process: copy semantics through syscalls.
    User,
    /// An in-kernel application: share semantics over mbuf chains.
    Kernel,
}

/// A `write` that could not complete synchronously.
#[derive(Clone, Copy, Debug)]
pub struct BlockedWrite {
    /// The writing process.
    pub task: TaskId,
    /// The user buffer being written.
    pub region: UioRegion,
    /// Total bytes the application asked to write.
    pub total: usize,
    /// Bytes already handed to the transport layer (appended to `so_snd`).
    pub appended: usize,
    /// Outstanding-DMA counter (single-copy path only).
    pub counter: Option<UioCounterId>,
    /// True when this write uses `M_UIO` descriptors (single-copy path);
    /// false for the traditional copy path (blocks on space only).
    pub uio_path: bool,
}

/// A `read` blocked on outboard copy-out DMA.
#[derive(Clone, Copy, Debug)]
pub struct BlockedRead {
    /// The reading process.
    pub task: TaskId,
    /// Bytes the application will find in its buffer once woken.
    pub bytes: usize,
    /// Outstanding-DMA counter for the copy-out.
    pub counter: UioCounterId,
    /// Pinned range to release on completion.
    pub pinned_vaddr: u64,
    /// Length of the pinned range.
    pub pinned_len: usize,
}

/// A reader waiting for data to arrive at all.
#[derive(Clone, Copy, Debug)]
pub struct WaitingReader {
    /// The process to wake when data (or EOF) arrives.
    pub task: TaskId,
}

/// An entry in the in-kernel delivery queue (§5): chains are released to
/// the kernel application strictly in arrival order, so a short packet that
/// needed no conversion DMA can never overtake a long one that did.
#[derive(Debug)]
pub struct KqEntry {
    /// Monotone arrival order tag.
    pub serial: u64,
    /// The delivered data (converted in place as DMAs complete).
    pub chain: Chain,
    /// The datagram's source (or the stream peer for TCP).
    pub from: SockAddr,
    /// Bytes still being converted from `M_WCAB` to regular mbufs.
    pub converting: usize,
}

/// One socket.
#[derive(Debug)]
pub struct Socket {
    /// Descriptor.
    pub id: SockId,
    /// Transport protocol.
    pub proto: Proto,
    /// User process or in-kernel application.
    pub owner: Owner,
    /// Bound local endpoint.
    pub local: Option<SockAddr>,
    /// Connected peer.
    pub remote: Option<SockAddr>,
    /// Interface chosen by the connect-time route (may be superseded by a
    /// fresh route lookup per packet — §4.1's point).
    pub iface_hint: Option<IfaceId>,
    /// Send buffer.
    pub so_snd: SockBuf,
    /// Receive buffer.
    pub so_rcv: SockBuf,
    /// TCP control block (None for UDP).
    pub tcb: Option<Tcb>,
    /// Sequence number corresponding to the first byte of `so_snd`.
    pub snd_base_valid: bool,
    /// A write awaiting buffer space or DMA completion.
    pub blocked_write: Option<BlockedWrite>,
    /// A read awaiting copy-out DMA completion.
    pub blocked_read: Option<BlockedRead>,
    /// A reader waiting for any data.
    pub waiting_reader: Option<WaitingReader>,
    /// Task blocked in `connect`.
    pub connector: Option<TaskId>,
    /// Task blocked in `accept`.
    pub acceptor: Option<TaskId>,
    /// Listener: established child sockets awaiting `accept`.
    pub accept_queue: VecDeque<SockId>,
    /// Listener this child was spawned from.
    pub listen_parent: Option<SockId>,
    /// Receive-side EOF (peer FIN consumed).
    pub rcv_eof: bool,
    /// UDP datagram boundaries in `so_rcv`: (len, source).
    pub dgram_bounds: VecDeque<(usize, SockAddr)>,
    /// In-kernel delivery queue (Owner::Kernel).
    pub kq: VecDeque<KqEntry>,
    /// Timer validation generations (stale timer events are ignored).
    pub rexmt_gen: u64,
    /// Delayed-ACK timer generation.
    pub delack_gen: u64,
    /// A retransmission timer is armed for the current generation.
    pub rexmt_armed: bool,
    /// The TIME_WAIT expiry timer has been armed.
    pub time_wait_armed: bool,
}

impl Socket {
    /// A fresh socket with `buf`-byte send/receive buffers.
    pub fn new(id: SockId, proto: Proto, owner: Owner, buf: usize) -> Socket {
        Socket {
            id,
            proto,
            owner,
            local: None,
            remote: None,
            iface_hint: None,
            so_snd: SockBuf::new(buf),
            so_rcv: SockBuf::new(buf),
            tcb: None,
            snd_base_valid: false,
            blocked_write: None,
            blocked_read: None,
            waiting_reader: None,
            connector: None,
            acceptor: None,
            accept_queue: VecDeque::new(),
            listen_parent: None,
            rcv_eof: false,
            dgram_bounds: VecDeque::new(),
            kq: VecDeque::new(),
            rexmt_gen: 0,
            delack_gen: 0,
            rexmt_armed: false,
            time_wait_armed: false,
        }
    }

    /// True when this socket is a TCP listener.
    pub fn is_listener(&self) -> bool {
        self.tcb
            .as_ref()
            .map(|t| t.state == crate::tcp::TcpState::Listen)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StackConfig;

    #[test]
    fn new_socket_defaults() {
        let s = Socket::new(SockId(1), Proto::Tcp, Owner::User, 1024);
        assert_eq!(s.so_snd.space(), 1024);
        assert!(!s.is_listener());
        assert!(s.blocked_write.is_none());
    }

    #[test]
    fn listener_flag_follows_tcb_state() {
        let mut s = Socket::new(SockId(1), Proto::Tcp, Owner::User, 1024);
        let mut tcb = Tcb::new(&StackConfig::single_copy(), 1, true);
        tcb.listen(1460, 1024);
        s.tcb = Some(tcb);
        assert!(s.is_listener());
    }
}
