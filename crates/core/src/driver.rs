//! Interfaces and drivers.
//!
//! Three device classes (Figure 4 of the paper):
//!
//! * [`CabIface`] — the CAB driver state: besides the traditional input and
//!   output entry points it provides the *copy-in* and *copy-out* routines
//!   (§3) that move data between host and network memory, tracks in-flight
//!   SDMA requests by token, manages per-destination logical channels
//!   (§2.1), and keeps the maps that tie outboard packet buffers to the
//!   protocol data referencing them (so transmit buffers are freed on ACK
//!   and receive buffers after the last copy-out);
//! * [`EthIface`] — a conventional Ethernet whose driver copies data and
//!   leaves checksumming to software; `M_UIO` chains are converted to
//!   regular mbufs by a thin layer at its entry (§5);
//! * `Loopback` — frames re-injected into the same kernel.

use crate::types::{SockAddr, SockId};
use outboard_cab::{Cab, ChecksumSpec, PacketId, SgEntry};
use outboard_sim::obs::Scope;
use outboard_wire::ether::MacAddr;
use outboard_wire::hippi::HippiAddr;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Why an SDMA request was issued; consulted on its completion interrupt.
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)] // variant docs describe the payload fields
pub enum SdmaPurpose {
    /// Transmit copy-in of a data segment. On completion the kernel
    /// replaces the `[seq_lo, seq_lo+data_len)` range of the socket's send
    /// queue with an `M_WCAB` descriptor (the paper's "the mbuf type is
    /// changed to M_WCAB after the data has been copied outboard") and
    /// credits the write's UIO counter.
    TxSegment {
        sock: SockId,
        seq_lo: u32,
        data_len: usize,
        packet: PacketId,
        /// Framing + IP + transport header bytes in front of the data.
        hdr_len: usize,
        /// Pinned user range to release (single-copy path).
        pinned: Option<(outboard_host::TaskId, u64, usize)>,
    },
    /// Transmit of a packet whose payload needed no conversion (traditional
    /// path, retransmission header refresh, control segments).
    TxPlain,
    /// Receive copy-out toward a user buffer; credits the read's counter.
    /// `copy_dst` is set on the unaligned fallback: the DMA lands in kernel
    /// memory and the completion handler finishes with a CPU copy to the
    /// user address (§4.5).
    RxToUser {
        sock: SockId,
        bytes: usize,
        copy_dst: Option<(outboard_host::TaskId, u64)>,
    },
    /// Receive conversion for an in-kernel application (§5): the completion
    /// carries the kernel bytes that replace an `M_WCAB` range of queue
    /// entry `serial` on `sock`.
    RxToKernel {
        sock: SockId,
        serial: u64,
        chain_off: usize,
        len: usize,
    },
}

/// A transmission parked after a transient failure, waiting for the
/// retry-backoff timer. The paper's driver treats outboard exhaustion as a
/// "transient out-of-resources condition"; these entries are how the
/// condition stays transient instead of becoming a silent drop.
#[derive(Clone, Debug)]
pub enum PendingTx {
    /// The copy-in (SDMA) itself failed or network memory was exhausted:
    /// everything needed to rebuild the request from scratch. User-memory
    /// scatter/gather entries stay valid because the data is retained in
    /// the socket send queue (and its pages stay pinned) until completion.
    Sdma {
        /// Full frame length (header + data).
        frame_len: usize,
        /// Scatter/gather list, header first.
        sg: Vec<SgEntry>,
        /// Outboard checksum insertion spec, when hardware checksumming.
        csum: Option<ChecksumSpec>,
        /// Destination fabric address.
        dst: HippiAddr,
        /// Logical channel.
        channel: u16,
        /// Completion purpose (its `packet` field is rewritten on re-alloc).
        purpose: SdmaPurpose,
        /// Free the outboard buffer right after the media transfer.
        free_after_mdma: bool,
        /// Payload bytes in the frame.
        data_len: usize,
        /// Header bytes in front of the payload.
        hdr_len: usize,
    },
    /// The copy-in succeeded but the media transfer failed: the packet sits
    /// complete in network memory, only the MDMA needs re-issuing.
    Mdma {
        /// The outboard packet to put on the media.
        packet: PacketId,
        /// Destination fabric address.
        dst: HippiAddr,
        /// Logical channel.
        channel: u16,
        /// Free the outboard buffer after the media transfer.
        free_after: bool,
    },
}

/// Robustness counters for one CAB interface's driver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverFaultStats {
    /// Transmissions re-attempted from the retry queue.
    pub tx_retries: u64,
    /// Cumulative backoff time spent between retry rounds, microseconds.
    pub backoff_us: u64,
    /// Transitions into degraded (traditional-path) mode.
    pub degraded_entries: u64,
    /// Transitions back to the single-copy path.
    pub degraded_exits: u64,
    /// Payload bytes sent through the traditional path while degraded.
    pub fallback_bytes: u64,
    /// Watchdog board resets.
    pub watchdog_resets: u64,
    /// Parked transmissions abandoned to TCP recovery when retries ran out.
    pub abandoned_tx: u64,
    /// Receive copy-outs completed by programmed I/O after a DMA error.
    pub pio_fallbacks: u64,
    /// Outboard bytes rescued into host mbufs during a watchdog reset.
    pub rescued_bytes: u64,
    /// Out-of-band board crashes recovered (chaos `board_crash` events).
    pub board_crashes: u64,
    /// Receive interrupts discarded because a board reset freed the frame's
    /// outboard buffer between arrival and interrupt delivery.
    pub stale_rx_drops: u64,
}

/// Driver-level health state for one CAB interface: degraded-mode flag,
/// retry backoff, and watchdog bookkeeping.
#[derive(Debug, Default)]
pub struct IfaceHealth {
    /// Interface is on the traditional path (host mbuf buffering +
    /// software checksum) until a probe finds the adaptor healthy again.
    pub degraded: bool,
    /// Retry-backoff timer armed.
    pub retry_armed: bool,
    /// Consecutive unsuccessful retry rounds (drives the backoff exponent).
    pub retry_round: u32,
    /// Generation for ignoring stale retry firings.
    pub retry_gen: u64,
    /// Watchdog timer armed.
    pub watchdog_armed: bool,
    /// Generation for ignoring stale watchdog firings.
    pub watchdog_gen: u64,
    /// Generation for ignoring stale probe firings.
    pub probe_gen: u64,
    /// Robustness counters.
    pub stats: DriverFaultStats,
}

/// CAB driver state for one interface.
#[derive(Debug)]
pub struct CabIface {
    /// The device itself.
    pub cab: Cab,
    /// IP → fabric address resolution (static ARP for the simulation).
    // lint: allow(nondet-order, keyed lookup only, never iterated)
    pub arp: HashMap<Ipv4Addr, HippiAddr>,
    next_token: u64,
    // lint: allow(nondet-order, completion lookup by token, never iterated)
    pending: HashMap<u64, SdmaPurpose>,
    /// Logical channel assigned per destination (§2.1).
    // lint: allow(nondet-order, keyed lookup only, never iterated)
    channels: HashMap<HippiAddr, u16>,
    next_channel: u16,
    /// Receive packets: payload bytes not yet copied out of network memory.
    // lint: allow(nondet-order, keyed lookup only, never iterated)
    pub rx_remaining: HashMap<PacketId, usize>,
    /// Transmit packets: data bytes not yet acknowledged (the packet stays
    /// outboard for retransmission until this drains).
    // lint: allow(nondet-order, keyed lookup only, never iterated)
    pub tx_remaining: HashMap<PacketId, usize>,
    /// Transmit packets' header length (for retransmission geometry).
    // lint: allow(nondet-order, keyed lookup only, never iterated)
    pub tx_hdr_len: HashMap<PacketId, usize>,
    /// Transmissions parked for the retry-backoff timer.
    pub retry_q: VecDeque<PendingTx>,
    /// Degraded-mode / retry / watchdog state.
    pub health: IfaceHealth,
}

impl CabIface {
    /// Driver state for a fresh device.
    pub fn new(cab: Cab) -> CabIface {
        CabIface {
            cab,
            arp: HashMap::new(),
            next_token: 1,
            pending: HashMap::new(),
            channels: HashMap::new(),
            next_channel: 0,
            rx_remaining: HashMap::new(),
            tx_remaining: HashMap::new(),
            tx_hdr_len: HashMap::new(),
            retry_q: VecDeque::new(),
            health: IfaceHealth::default(),
        }
    }

    /// Publish the driver's robustness counters into a registry scope.
    pub fn publish_driver_metrics(&self, s: &mut Scope<'_>) {
        let d = &self.health.stats;
        s.counter("drv.tx_retries", d.tx_retries);
        s.counter("drv.backoff_us", d.backoff_us);
        s.counter("drv.degraded_entries", d.degraded_entries);
        s.counter("drv.degraded_exits", d.degraded_exits);
        s.counter("drv.fallback_bytes", d.fallback_bytes);
        s.counter("drv.watchdog_resets", d.watchdog_resets);
        s.counter("drv.abandoned_tx", d.abandoned_tx);
        s.counter("drv.pio_fallbacks", d.pio_fallbacks);
        s.counter("drv.rescued_bytes", d.rescued_bytes);
        s.counter("drv.board_crashes", d.board_crashes);
        s.counter("drv.stale_rx_drops", d.stale_rx_drops);
        s.counter("drv.degraded", u64::from(self.health.degraded));
        s.counter("drv.retry_queue_depth", self.retry_q.len() as u64);
    }

    /// Allocate a completion token for a request with the given purpose.
    pub fn issue(&mut self, purpose: SdmaPurpose) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.pending.insert(t, purpose);
        t
    }

    /// Resolve a completion token.
    pub fn complete(&mut self, token: u64) -> Option<SdmaPurpose> {
        self.pending.remove(&token)
    }

    /// Drop every pending transmit-conversion token (watchdog reset path):
    /// their completions must not rewrite send-queue ranges toward outboard
    /// buffers the reset is about to free. Receive completions carry their
    /// data in the event itself and stay pending. Tokens are drained in
    /// sorted order so the reset is deterministic.
    pub fn drop_pending_tx(&mut self) -> Vec<SdmaPurpose> {
        let mut tokens: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| matches!(p, SdmaPurpose::TxSegment { .. }))
            .map(|(t, _)| *t)
            .collect();
        tokens.sort_unstable();
        tokens
            .into_iter()
            .filter_map(|t| self.pending.remove(&t))
            .collect()
    }

    /// SDMA requests in flight.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The logical channel for a destination: one queue per distinct
    /// destination, assigned round-robin over the hardware's channel set.
    pub fn channel_for(&mut self, dst: HippiAddr) -> u16 {
        let n = self.cab.config().num_channels as u16;
        *self.channels.entry(dst).or_insert_with(|| {
            let c = self.next_channel % n;
            self.next_channel = self.next_channel.wrapping_add(1);
            c
        })
    }
}

/// Conventional Ethernet interface.
#[derive(Debug)]
pub struct EthIface {
    /// This interface's hardware address.
    pub mac: MacAddr,
    /// IP to MAC resolution (static for the simulation).
    // lint: allow(nondet-order, keyed lookup only, never iterated)
    pub arp: HashMap<Ipv4Addr, MacAddr>,
}

impl EthIface {
    /// Driver state for an Ethernet with address `mac`.
    pub fn new(mac: MacAddr) -> EthIface {
        EthIface {
            mac,
            arp: HashMap::new(),
        }
    }
}

/// The device behind an interface.
#[derive(Debug)]
pub enum IfaceKind {
    /// The CAB (single-copy capable).
    Cab(Box<CabIface>),
    /// Conventional Ethernet.
    Eth(EthIface),
    /// Software loopback.
    Loopback,
}

/// One network interface.
#[derive(Debug)]
pub struct Iface {
    /// Index within the kernel's interface table.
    pub id: crate::types::IfaceId,
    /// The interface's IP address.
    pub ip: Ipv4Addr,
    /// Maximum transmission unit, bytes.
    pub mtu: usize,
    /// The device behind it.
    pub kind: IfaceKind,
}

impl Iface {
    /// Does this interface take the single-copy path (outboard buffering
    /// and checksumming)? A degraded CAB answers no: the stack falls back
    /// to the traditional path until a probe finds the adaptor healthy.
    pub fn single_copy_capable(&self) -> bool {
        matches!(&self.kind, IfaceKind::Cab(c) if !c.health.degraded)
    }

    /// Maximum TCP segment this interface supports.
    pub fn tcp_mss(&self) -> usize {
        self.mtu - outboard_wire::ipv4::IPV4_HEADER_LEN - outboard_wire::tcp::TCP_HEADER_LEN
    }

    /// The CAB driver state, when this interface is a CAB.
    pub fn cab(&mut self) -> Option<&mut CabIface> {
        match &mut self.kind {
            IfaceKind::Cab(c) => Some(c),
            _ => None,
        }
    }

    /// Shared view of the CAB driver state, when this interface is a CAB.
    pub fn cab_ref(&self) -> Option<&CabIface> {
        match &self.kind {
            IfaceKind::Cab(c) => Some(c),
            _ => None,
        }
    }
}

/// A parsed destination for in-kernel send APIs.
#[derive(Clone, Copy, Debug)]
pub struct Dest {
    /// The resolved endpoint.
    pub addr: SockAddr,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::IfaceId;
    use outboard_cab::CabConfig;

    fn cab_iface() -> CabIface {
        CabIface::new(Cab::new(1, CabConfig::default()))
    }

    #[test]
    fn token_lifecycle() {
        let mut c = cab_iface();
        let t1 = c.issue(SdmaPurpose::TxPlain);
        let t2 = c.issue(SdmaPurpose::RxToUser {
            sock: SockId(1),
            bytes: 100,
            copy_dst: None,
        });
        assert_ne!(t1, t2);
        assert_eq!(c.pending_count(), 2);
        assert!(matches!(c.complete(t1), Some(SdmaPurpose::TxPlain)));
        assert!(c.complete(t1).is_none(), "token single-use");
        assert_eq!(c.pending_count(), 1);
    }

    #[test]
    fn channels_are_per_destination_and_stable() {
        let mut c = cab_iface();
        let a = c.channel_for(10);
        let b = c.channel_for(20);
        assert_ne!(a, b, "distinct destinations, distinct channels");
        assert_eq!(c.channel_for(10), a, "stable per destination");
        // Channel ids stay within the hardware's channel count.
        for dst in 0..100u32 {
            assert!((c.channel_for(dst) as usize) < c.cab.config().num_channels);
        }
    }

    #[test]
    fn degraded_cab_loses_single_copy_capability() {
        let mut iface = Iface {
            id: IfaceId(0),
            ip: Ipv4Addr::new(10, 0, 0, 1),
            mtu: 32 * 1024,
            kind: IfaceKind::Cab(Box::new(cab_iface())),
        };
        assert!(iface.single_copy_capable());
        iface.cab().unwrap().health.degraded = true;
        assert!(!iface.single_copy_capable());
        iface.cab().unwrap().health.degraded = false;
        assert!(iface.single_copy_capable());
    }

    #[test]
    fn iface_capabilities() {
        let iface = Iface {
            id: IfaceId(0),
            ip: Ipv4Addr::new(10, 0, 0, 1),
            mtu: 32 * 1024,
            kind: IfaceKind::Cab(Box::new(cab_iface())),
        };
        assert!(iface.single_copy_capable());
        assert_eq!(iface.tcp_mss(), 32 * 1024 - 40);
        let eth = Iface {
            id: IfaceId(1),
            ip: Ipv4Addr::new(192, 168, 0, 1),
            mtu: 1500,
            kind: IfaceKind::Eth(EthIface::new(MacAddr::local(1))),
        };
        assert!(!eth.single_copy_capable());
        assert_eq!(eth.tcp_mss(), 1460);
    }
}
