//! Shared stack types: identifiers, configuration, effects, errors.

use bytes::Bytes;
use outboard_cab::CabEvent;
use outboard_host::Charge;
use outboard_mbuf::TaskId;
use outboard_sim::Dur;
use std::net::Ipv4Addr;

/// Socket descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockId(pub u32);

/// Interface index within one kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub u32);

/// Transport protocol of a socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Proto {
    /// Reliable byte stream.
    Tcp,
    /// Datagrams.
    Udp,
}

/// An IPv4 endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SockAddr {
    /// Host address.
    pub ip: Ipv4Addr,
    /// Transport port.
    pub port: u16,
}

impl SockAddr {
    /// An endpoint from its parts.
    pub fn new(ip: Ipv4Addr, port: u16) -> SockAddr {
        SockAddr { ip, port }
    }
}

impl std::fmt::Display for SockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Which data path the stack uses (the paper's two measured configurations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackMode {
    /// The original Net2 BSD behaviour: the socket layer copies user data
    /// into kernel mbufs and TCP/UDP checksum in software; the CAB is used
    /// as a dumb DMA device.
    Unmodified,
    /// The paper's single-copy path: `M_UIO` descriptors through the stack,
    /// outboard buffering and checksumming.
    SingleCopy,
}

/// Stack-level tunables.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// Which data path this stack uses.
    pub mode: StackMode,
    /// Writes at least this large take the single-copy path; smaller writes
    /// are copied through kernel mbufs (§4.4.3). Ignored when
    /// `force_single_copy` is set (the paper's measurements force it).
    pub uio_threshold: usize,
    /// Always use the single-copy path regardless of size (§7.2: "the
    /// measurements for the modified stack always use the single-copy
    /// path").
    pub force_single_copy: bool,
    /// Keep user pages pinned across operations (§4.4.1 lazy unpinning).
    pub lazy_vm: bool,
    /// §4.5's unimplemented optimization, built here as an extension: a
    /// misaligned large write first sends a short copied fragment to
    /// realign, then DMAs the (now word-aligned) bulk directly — "we can
    /// send a first packet of 16 bits ... the remainder of the data can be
    /// DMAed since it is now word aligned".
    pub align_split: bool,
    /// Nagle coalescing for sub-MSS segments (traditional path only; a
    /// single-copy write must be transmitted to unblock its writer).
    pub nagle: bool,
    /// Socket buffer high-water mark / TCP window, bytes (paper: 512 KB).
    pub sock_buf: usize,
    /// ACK every `delack_every`-th in-order segment immediately; otherwise
    /// defer to the delayed-ACK timer.
    pub delack_every: u32,
    /// Delayed-ACK timeout (BSD fast timer: 200 ms).
    pub delack_timeout: Dur,
    /// Initial retransmission timeout.
    pub rto_initial: Dur,
    /// Minimum RTO.
    pub rto_min: Dur,
    /// TIME_WAIT hold (shortened from 2MSL for simulation practicality).
    pub time_wait: Dur,
    /// First CAB driver retry delay; doubles per round (exponential
    /// backoff) while transmissions fail on transient DMA errors or
    /// netmem exhaustion.
    pub cab_retry_base: Dur,
    /// Retry rounds before the driver gives up and degrades the interface
    /// to the traditional (host-buffered, software-checksum) path.
    pub cab_retry_max: u32,
    /// How often a degraded interface probes the adaptor for recovery.
    pub cab_probe_interval: Dur,
    /// How long the driver waits for a wedged engine before resetting the
    /// board and rebuilding transmit from the socket send queues.
    pub cab_watchdog_timeout: Dur,
}

impl StackConfig {
    /// The paper's modified stack (single-copy path available).
    pub fn single_copy() -> StackConfig {
        StackConfig {
            mode: StackMode::SingleCopy,
            uio_threshold: 16 * 1024,
            force_single_copy: false,
            lazy_vm: false,
            align_split: false,
            nagle: true,
            sock_buf: 512 * 1024,
            delack_every: 2,
            delack_timeout: Dur::millis(200),
            rto_initial: Dur::secs(1),
            // BSD's minimum RTO sits well above the delayed-ACK timer, so
            // an odd trailing segment never triggers a spurious timeout.
            rto_min: Dur::millis(500),
            time_wait: Dur::secs(1),
            cab_retry_base: Dur::millis(2),
            cab_retry_max: 5,
            cab_probe_interval: Dur::millis(10),
            cab_watchdog_timeout: Dur::millis(20),
        }
    }

    /// The baseline Net2 BSD behaviour.
    pub fn unmodified() -> StackConfig {
        StackConfig {
            mode: StackMode::Unmodified,
            ..StackConfig::single_copy()
        }
    }
}

/// Timer identities (owner plus a generation to ignore stale firings).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field names (sock/iface, generation) are the documentation
pub enum TimerKind {
    /// Retransmission timeout.
    TcpRexmt { sock: SockId, generation: u64 },
    /// Delayed-ACK (fast) timer.
    TcpDelack { sock: SockId, generation: u64 },
    /// TIME_WAIT expiry.
    TcpTimeWait { sock: SockId, generation: u64 },
    /// CAB driver retry backoff: re-attempt transmissions parked after a
    /// transient DMA error or netmem exhaustion.
    CabRetry { iface: IfaceId, generation: u64 },
    /// Degraded-mode probe: test whether the adaptor has recovered and the
    /// interface can return to the single-copy path.
    CabProbe { iface: IfaceId, generation: u64 },
    /// Watchdog for a wedged DMA engine: reset the board if it is still
    /// stuck when this fires.
    CabWatchdog { iface: IfaceId, generation: u64 },
}

impl TimerKind {
    /// The socket the timer belongs to, for TCP timers.
    pub fn sock(&self) -> Option<SockId> {
        match self {
            TimerKind::TcpRexmt { sock, .. }
            | TimerKind::TcpDelack { sock, .. }
            | TimerKind::TcpTimeWait { sock, .. } => Some(*sock),
            TimerKind::CabRetry { .. }
            | TimerKind::CabProbe { .. }
            | TimerKind::CabWatchdog { .. } => None,
        }
    }
}

/// Side effects a kernel entry point hands back to the harness.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // the variant docs describe the payload fields
pub enum Effect {
    /// Charge CPU time on this host.
    Cpu { dur: Dur, charge: Charge },
    /// A device event from this host's CAB (already timestamped by the
    /// device model): SDMA completions loop back into
    /// [`crate::Kernel::sdma_done`], `FrameOut`s go onto the fabric,
    /// `RxReady`s loop back into [`crate::Kernel::rx_interrupt`].
    Cab { iface: IfaceId, event: CabEvent },
    /// A frame for a conventional serializing link (Ethernet).
    EthTx { iface: IfaceId, frame: Bytes },
    /// A frame looped back to this same kernel (loopback interface);
    /// deliver via `frame_arrive` after a tiny scheduling delay.
    Loop { iface: IfaceId, frame: Bytes },
    /// Wake a process blocked in a syscall on this socket.
    Wake { task: TaskId, sock: SockId },
    /// Arm a timer `after` from now.
    Timer { after: Dur, kind: TimerKind },
    /// An in-kernel application's delivery queue has a ready entry (§5).
    KernelReady { sock: SockId },
}

/// Outcome of `sys_write`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum WriteResult {
    /// All bytes accepted; the call returns to the application immediately.
    Done { bytes: usize },
    /// The calling process must block; it will receive a `Wake` when the
    /// write's data has been fully copied/DMAed (copy semantics, §4.4.2) or
    /// when buffer space frees up for the remainder.
    Blocked { accepted: usize },
}

/// Outcome of `sys_read`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ReadResult {
    /// `bytes` are in the user buffer (kernel-resident data was copied
    /// synchronously).
    Done { bytes: usize },
    /// Data is being DMAed from outboard memory into the user buffer; the
    /// process blocks until the end-of-DMA wake (§2.2), after which `bytes`
    /// will be available.
    BlockedDma { bytes: usize },
    /// No data available; the process blocks until data arrives.
    WouldBlock,
    /// The peer closed and no more data will arrive.
    Eof,
}

/// Stack errors surfaced to callers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackError {
    /// Unknown socket descriptor.
    BadSocket,
    /// Operation requires an established connection.
    NotConnected,
    /// Socket already has a peer.
    AlreadyConnected,
    /// Port already bound.
    AddrInUse,
    /// No route to the destination.
    NoRoute,
    /// Operation not valid in the socket's current state.
    InvalidState(&'static str),
    /// Peer reset the connection.
    ConnectionReset,
    /// Datagram exceeds the UDP/IP maximum.
    MessageTooBig,
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for StackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets() {
        let sc = StackConfig::single_copy();
        assert_eq!(sc.mode, StackMode::SingleCopy);
        assert_eq!(sc.sock_buf, 512 * 1024);
        let un = StackConfig::unmodified();
        assert_eq!(un.mode, StackMode::Unmodified);
        assert_eq!(un.sock_buf, sc.sock_buf);
    }

    #[test]
    fn timer_kind_sock_accessor() {
        let k = TimerKind::TcpRexmt {
            sock: SockId(3),
            generation: 9,
        };
        assert_eq!(k.sock(), Some(SockId(3)));
        let w = TimerKind::CabWatchdog {
            iface: IfaceId(0),
            generation: 1,
        };
        assert_eq!(w.sock(), None);
    }

    #[test]
    fn sockaddr_display() {
        let a = SockAddr::new(Ipv4Addr::new(10, 0, 0, 1), 5001);
        assert_eq!(a.to_string(), "10.0.0.1:5001");
    }
}
