//! Kernel receive paths: frame arrival, the CAB receive interrupt, IP
//! input (validation, reassembly, forwarding, demux), TCP/UDP segment
//! input, SDMA completion handling (including the `M_UIO` → `M_WCAB`
//! conversion that realizes §4.2), and TCP timers.

use super::{Kernel, TxMeta};
use crate::driver::{IfaceKind, SdmaPurpose};
use crate::ip::FragKey;
use crate::socket::{KqEntry, Owner};
use crate::tcp::{AckMode, SegmentPlan, TcpState};
use crate::types::{Effect, IfaceId, Proto, SockAddr, SockId, TimerKind};
use bytes::Bytes;
use outboard_cab::{CabError, PacketId, SdmaDst, SdmaRx};
use outboard_host::{Charge, HostMem, TaskId, UserMemory};
use outboard_mbuf::{Chain, Mbuf, MbufData, WcabDesc};
use outboard_sim::span::{FlowId, Stage};
use outboard_sim::{Dur, Time};
use outboard_wire::hippi::{HippiHeader, HIPPI_HEADER_LEN};
use outboard_wire::ipv4::Ipv4Header;
use outboard_wire::tcp::{TcpFlags, TcpHeader};
use outboard_wire::udp::{UdpHeader, UDP_HEADER_LEN};
use outboard_wire::{proto, EtherHeader};
use std::net::Ipv4Addr;

/// Everything IP input needs to know about where a packet's bytes are.
struct RxPacket {
    iface: IfaceId,
    /// Kernel-resident prefix, starting at the IP header (the Ethernet
    /// driver delivers the whole packet here; the CAB delivers the auto-DMA
    /// words).
    prefix: Bytes,
    /// Outboard remainder: packet id and the full frame length.
    outboard: Option<(PacketId, usize)>,
    /// Hardware checksum over the transport area, when the frame came
    /// through a CAB.
    hw_csum: Option<u16>,
    /// Byte offset of the IP header within the original frame (HIPPI
    /// framing length for CAB packets; irrelevant otherwise).
    frame_ip_off: usize,
    /// Loopback frames skip checksum verification (BSD does too).
    trusted: bool,
}

impl Kernel {
    // ------------------------------------------------------------------
    // frame arrival
    // ------------------------------------------------------------------

    /// A frame arrives from the medium at this interface.
    pub fn frame_arrive(
        &mut self,
        iface: IfaceId,
        frame: Bytes,
        mem: &mut HostMem,
        now: Time,
    ) -> Vec<Effect> {
        match &self.ifaces[iface.0 as usize].kind {
            IfaceKind::Cab(_) => {
                // Hardware path: no CPU until the receive interrupt.
                let flow = if self.spans.on() {
                    super::frame_flow(&frame, HIPPI_HEADER_LEN)
                } else {
                    FlowId::NONE
                };
                let frame_len = frame.len() as u64;
                self.with_cab(iface, |k, cab| {
                    let ev = cab.cab.receive_frame(frame, now);
                    if k.spans.on() {
                        k.spans.span(flow, Stage::MdmaRx, now, ev.at(), frame_len);
                    }
                    k.fx.push(Effect::Cab { iface, event: ev });
                });
            }
            IfaceKind::Eth(_) => {
                // Conventional device: interrupt + copy into mbufs.
                self.cpu(self.machine.cost_interrupt_us, Charge::Interrupt);
                let copy = self.memsys.copy_cost(frame.len(), frame.len().max(4096));
                self.cpu_dur(copy, Charge::Interrupt);
                match EtherHeader::parse(&frame) {
                    Ok(_) => {
                        let rx = RxPacket {
                            iface,
                            prefix: frame.slice(outboard_wire::ether::ETHER_HEADER_LEN..),
                            outboard: None,
                            hw_csum: None,
                            frame_ip_off: 0,
                            trusted: false,
                        };
                        self.ip_input(rx, mem, now);
                    }
                    Err(_) => self.stats.ip_errors += 1,
                }
            }
            IfaceKind::Loopback => {
                self.cpu(self.machine.cost_interrupt_us, Charge::Interrupt);
                let rx = RxPacket {
                    iface,
                    prefix: frame,
                    outboard: None,
                    hw_csum: None,
                    frame_ip_off: 0,
                    trusted: true,
                };
                self.ip_input(rx, mem, now);
            }
        }
        self.take_effects()
    }

    /// The CAB's receive interrupt: the first L words are in host memory,
    /// the body checksum is computed, large packets wait outboard (§2.2).
    #[allow(clippy::too_many_arguments)]
    pub fn rx_interrupt(
        &mut self,
        iface: IfaceId,
        packet: Option<PacketId>,
        autodma: Bytes,
        hw_csum: u16,
        frame_len: usize,
        mem: &mut HostMem,
        now: Time,
    ) -> Vec<Effect> {
        self.cpu(self.machine.cost_interrupt_us, Charge::Interrupt);
        // A board reset between this frame's arrival and its interrupt frees
        // the outboard buffer, but the interrupt (with its pre-reset hardware
        // checksum) still lands. Trusting it would queue a descriptor whose
        // checksum verifies against bytes that no longer exist — silent
        // corruption at the application. The frame died with the reset:
        // discard it here and let the transport retransmit.
        if let Some(p) = packet {
            let stale = self.with_cab(iface, |_k, cab| {
                if cab.cab.packet_exists(p) {
                    false
                } else {
                    cab.health.stats.stale_rx_drops += 1;
                    true
                }
            });
            if stale {
                return self.take_effects();
            }
        }
        if autodma.len() < HIPPI_HEADER_LEN {
            self.stats.ip_errors += 1;
            return self.take_effects();
        }
        match HippiHeader::parse(&autodma) {
            Ok(_) => {}
            Err(_) if frame_len > autodma.len() => {
                // d2_size extends beyond the auto-DMA prefix: fine.
            }
            Err(_) => {
                self.stats.ip_errors += 1;
                return self.take_effects();
            }
        }
        // The unmodified stack ignores the hardware checksum — verifying
        // in software is exactly the per-byte cost the paper measures it
        // paying.
        let hw = (self.cfg.mode == crate::types::StackMode::SingleCopy).then_some(hw_csum);
        if self.spans.on() {
            // The demux stage covers the interrupt + IP + transport input
            // CPU work charged on this path.
            let flow = super::frame_flow(&autodma, HIPPI_HEADER_LEN);
            let us = self.machine.cost_interrupt_us
                + self.machine.cost_ip_us
                + self.machine.cost_tcp_input_us;
            let end = now + Dur::from_micros_f64(us);
            self.spans
                .span(flow, Stage::Demux, now, end, frame_len as u64);
        }
        let rx = RxPacket {
            iface,
            prefix: autodma.slice(HIPPI_HEADER_LEN..),
            outboard: packet.map(|p| (p, frame_len)),
            hw_csum: hw,
            frame_ip_off: HIPPI_HEADER_LEN,
            trusted: false,
        };
        self.ip_input(rx, mem, now);
        self.take_effects()
    }

    // ------------------------------------------------------------------
    // IP input
    // ------------------------------------------------------------------

    fn is_local_ip(&self, ip: Ipv4Addr) -> bool {
        self.ifaces.iter().any(|i| i.ip == ip)
    }

    fn ip_input(&mut self, rx: RxPacket, mem: &mut HostMem, now: Time) {
        self.cpu(self.machine.cost_ip_us, Charge::Interrupt);
        self.stats.rx_packets += 1;
        let available = rx
            .outboard
            .map(|(_, flen)| flen - rx.frame_ip_off)
            .unwrap_or(rx.prefix.len());
        let hdr = match Ipv4Header::parse_with_limit(&rx.prefix, available) {
            Ok(h) => h,
            Err(_) => {
                self.stats.ip_errors += 1;
                self.discard_outboard(&rx, now);
                return;
            }
        };
        self.stats.rx_bytes += hdr.total_len as u64;

        if !self.is_local_ip(hdr.dst) {
            self.ip_forward(rx, hdr, mem, now);
            return;
        }

        // Build the payload chain: kernel prefix + outboard remainder.
        let ihl = hdr.header_len as usize;
        let total = hdr.total_len as usize;
        let payload = self.build_rx_chain(&rx, ihl, total, now);

        if hdr.is_fragment() {
            self.stats.frags_reassembled += 1;
            let key = FragKey {
                src: hdr.src,
                dst: hdr.dst,
                proto: hdr.protocol,
                id: hdr.id,
            };
            // Per-fragment hardware partials combine across the datagram.
            let frag_hw = rx
                .hw_csum
                .filter(|_| rx.outboard.is_some() || rx.hw_csum.is_some());
            if let Some(done) = self.reass.feed(key, &hdr, payload, frag_hw) {
                self.dispatch_transport(
                    rx.iface,
                    hdr.src,
                    hdr.dst,
                    hdr.protocol,
                    done.payload,
                    done.hw_sum,
                    rx.trusted,
                    mem,
                    now,
                );
            }
            return;
        }
        self.dispatch_transport(
            rx.iface,
            hdr.src,
            hdr.dst,
            hdr.protocol,
            payload,
            rx.hw_csum,
            rx.trusted,
            mem,
            now,
        );
    }

    /// Assemble the receive chain: the paper's mbuf holding the first 176
    /// words, plus an `M_WCAB` descriptor for the outboard remainder.
    ///
    /// The *unmodified* stack does not know about `M_WCAB`: its driver
    /// DMAs the whole packet into kernel mbufs at receive time (the CAB
    /// used as a conventional device), so the chain it builds is all
    /// kernel-resident.
    fn build_rx_chain(&mut self, rx: &RxPacket, ihl: usize, total: usize, now: Time) -> Chain {
        let mut chain = Chain::new();
        let kernel_end = rx.prefix.len().min(total);
        if kernel_end > ihl {
            chain.append(Mbuf::kernel(rx.prefix.slice(ihl..kernel_end)));
        }
        if let Some((packet, _flen)) = rx.outboard {
            let out_len = total - kernel_end;
            if out_len > 0 && self.cfg.mode == crate::types::StackMode::Unmodified {
                // Traditional receive: copy-in to kernel buffers via DMA
                // and free the outboard buffer immediately.
                let iface = rx.iface;
                let src_off = rx.frame_ip_off + kernel_end;
                let data = self.with_cab(iface, |k, cab| {
                    let token = cab.issue(SdmaPurpose::TxPlain);
                    let req = SdmaRx {
                        packet,
                        src_off,
                        len: out_len,
                        dst: SdmaDst::Kernel,
                        free_packet: true,
                        interrupt_on_complete: false,
                        token,
                    };
                    let mut dummy = outboard_host::HostMem::new();
                    match cab.cab.sdma_rx(req, now, &mut dummy) {
                        Ok(ev) => {
                            let data = match &ev {
                                outboard_cab::CabEvent::SdmaDone { data, .. } => {
                                    data.as_ref().cloned().unwrap_or_default()
                                }
                                _ => Bytes::new(),
                            };
                            k.fx.push(Effect::Cab { iface, event: ev });
                            data
                        }
                        Err(e) => {
                            // Engine refused the copy-in: fall back to
                            // programmed I/O so the packet still arrives.
                            Kernel::watchdog_on_wedge(k, cab, iface, &e);
                            cab.complete(token);
                            let (mut buf, ticket) = k.cluster_alloc(out_len);
                            let _ = cab.cab.read_packet(packet, src_off, &mut buf);
                            let cost = k.memsys.read_cost(out_len, out_len.max(4096));
                            k.cpu_dur(cost, Charge::Interrupt);
                            // A wedged SDMA engine still owns the buffer;
                            // the watchdog's board reset will reclaim it.
                            if !matches!(e, CabError::EngineWedged(_)) {
                                cab.cab.free_packet(packet, now);
                            }
                            cab.health.stats.pio_fallbacks += 1;
                            k.cluster_freeze(buf, ticket)
                        }
                    }
                });
                let m = Mbuf::kernel(data);
                self.mbuf_stats.count(&m);
                chain.append(m);
                return chain;
            }
            if out_len > 0 {
                let desc = WcabDesc {
                    cab: rx.iface.0,
                    packet: packet.0,
                    off: rx.frame_ip_off + kernel_end,
                    len: out_len,
                    hw_csum: rx.hw_csum.unwrap_or(0),
                    valid_len: out_len,
                };
                let m = Mbuf::wcab(desc);
                self.mbuf_stats.count(&m);
                chain.append(m);
                self.with_cab(rx.iface, |_k, cab| {
                    cab.rx_remaining.insert(packet, out_len);
                });
            } else {
                // Nothing left outboard: release immediately.
                self.with_cab(rx.iface, |_k, cab| {
                    cab.cab.free_packet(packet, now);
                });
            }
        }
        chain
    }

    /// Free an outboard buffer for a packet we are dropping.
    fn discard_outboard(&mut self, rx: &RxPacket, now: Time) {
        if let Some((packet, _)) = rx.outboard {
            self.with_cab(rx.iface, |_k, cab| {
                cab.rx_remaining.remove(&packet);
                cab.cab.free_packet(packet, now);
            });
        }
    }

    /// Discard a payload chain, releasing any outboard buffers it covers.
    /// The chain is owned, so its descriptors are walked in place — no
    /// intermediate `Vec` of descriptors.
    fn discard_chain(&mut self, chain: Chain, now: Time) {
        for m in chain.iter() {
            let MbufData::Wcab(d) = m.data() else {
                continue;
            };
            let d = *d;
            let packet = PacketId(d.packet);
            self.with_cab(IfaceId(d.cab), |_k, cab| {
                let done = match cab.rx_remaining.get_mut(&packet) {
                    Some(rem) => {
                        *rem = rem.saturating_sub(d.len);
                        *rem == 0
                    }
                    None => false,
                };
                if done {
                    cab.rx_remaining.remove(&packet);
                    cab.cab.free_packet(packet, now);
                }
            });
        }
    }

    /// Forward a packet between interfaces (§4.1's argument for one stack).
    fn ip_forward(&mut self, rx: RxPacket, mut hdr: Ipv4Header, mem: &mut HostMem, now: Time) {
        if hdr.ttl <= 1 {
            self.stats.ip_errors += 1;
            self.discard_outboard(&rx, now);
            return;
        }
        let Some(out_iface) = self.routes.lookup(hdr.dst) else {
            self.stats.ip_errors += 1;
            self.discard_outboard(&rx, now);
            return;
        };
        let ihl = hdr.header_len as usize;
        let total = hdr.total_len as usize;
        let payload = self.build_rx_chain(&rx, ihl, total, now);
        // Decrement TTL (ip_output rebuilds the header checksum; a real
        // stack would use the RFC 1624 incremental update).
        hdr.ttl -= 1;
        // Materialize through the conversion layer and retransmit. The
        // payload chain may reference outboard memory; flatten reads it.
        let flat = self.flatten_for_legacy(&payload, mem);
        self.discard_chain(payload, now);
        let chain = Chain::from_slice(&flat);
        self.cpu(self.machine.cost_ip_us, Charge::Interrupt);
        self.ip_output(
            hdr.src,
            hdr.dst,
            hdr.protocol,
            chain,
            out_iface,
            TxMeta::plain(),
            mem,
            now,
        );
    }

    // ------------------------------------------------------------------
    // transport demux
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn dispatch_transport(
        &mut self,
        iface: IfaceId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: u8,
        payload: Chain,
        hw_csum: Option<u16>,
        trusted: bool,
        mem: &mut HostMem,
        now: Time,
    ) {
        match protocol {
            proto::TCP => self.tcp_rx(iface, src, dst, payload, hw_csum, trusted, mem, now),
            proto::UDP => self.udp_rx(iface, src, dst, payload, hw_csum, trusted, mem, now),
            proto::ICMP => self.icmp_rx(src, dst, payload, mem, now),
            p => {
                // Raw-IP in-kernel handlers (§5).
                if let Some(&sock) = self.raw_protos.get(&p) {
                    let from = SockAddr::new(src, 0);
                    self.deliver_to_kernel_queue(sock, payload, from, mem, now);
                } else {
                    self.stats.no_socket_drops += 1;
                    self.discard_chain(payload, now);
                }
            }
        }
    }

    /// Pull the transport header bytes out of the chain's kernel prefix.
    /// Zero-copy: `Bytes::slice` just bumps the refcount on the backing
    /// buffer, so demux never duplicates header bytes.
    fn transport_header_bytes(&self, chain: &Chain, max: usize) -> Option<Bytes> {
        let first = chain.iter().next()?;
        let b = first.kernel_bytes()?;
        Some(b.slice(..b.len().min(max)))
    }

    #[allow(clippy::too_many_arguments)]
    fn tcp_rx(
        &mut self,
        iface: IfaceId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        mut payload: Chain,
        hw_csum: Option<u16>,
        trusted: bool,
        mem: &mut HostMem,
        now: Time,
    ) {
        self.cpu(self.machine.cost_tcp_input_us, Charge::Interrupt);
        let transport_len = payload.len();
        let Some(hdr_bytes) = self.transport_header_bytes(&payload, 60) else {
            self.stats.ip_errors += 1;
            self.discard_chain(payload, now);
            return;
        };
        let Ok(thdr) = TcpHeader::parse(&hdr_bytes) else {
            self.stats.ip_errors += 1;
            self.discard_chain(payload, now);
            return;
        };
        // Checksum verification (§4.3): hardware sum adjusted by the
        // pseudo-header, or a software read on the traditional path.
        let valid = if trusted {
            true
        } else if let Some(hw) = hw_csum {
            crate::udp::verify_hw(src, dst, proto::TCP, transport_len, hw)
        } else {
            // Freshly-DMAed data is cache-cold: no locality for the read.
            let cold = self.memsys.config().read_nolocality_at;
            let cost = self.memsys.read_cost(transport_len, cold);
            self.cpu_dur(cost, Charge::Interrupt);
            let pseudo = outboard_wire::checksum::pseudo_header_sum(
                src.octets(),
                dst.octets(),
                proto::TCP,
                transport_len as u16,
            );
            let sum = self.software_chain_sum(&payload, mem);
            outboard_wire::checksum::add16(pseudo, sum) == 0xFFFF
        };
        if !valid {
            self.stats.csum_errors += 1;
            self.discard_chain(payload, now);
            return;
        }
        payload.drop_front((thdr.header_len as usize).min(payload.len()));

        let local = SockAddr::new(dst, thdr.dst_port);
        let remote = SockAddr::new(src, thdr.src_port);
        let sock = self
            .conns
            .get(&(Proto::Tcp, local, remote))
            .copied()
            .or_else(|| {
                self.ports
                    .get(&(Proto::Tcp, thdr.dst_port))
                    .copied()
                    .filter(|s| {
                        self.sockets
                            .get(s)
                            .map(|s| s.is_listener())
                            .unwrap_or(false)
                    })
            });
        let Some(sock) = sock else {
            // No one listening: RST per RFC 793.
            self.discard_chain(payload, now);
            let data_len = transport_len - thdr.header_len as usize;
            let (seq, ack, flags) = if thdr.flags.ack() {
                (thdr.ack, 0, TcpFlags::RST)
            } else {
                (
                    0,
                    thdr.seq
                        .wrapping_add(data_len as u32)
                        .wrapping_add(u32::from(thdr.flags.syn())),
                    TcpFlags::RST | TcpFlags::ACK,
                )
            };
            self.emit_rst(local, remote, seq, ack, flags, mem, now);
            return;
        };

        // A SYN to a listener spawns a child connection (§4.1's single
        // stack: the child lives on whatever interface the SYN arrived on).
        let sock = if self.sockets[&sock].is_listener() && thdr.flags.syn() && !thdr.flags.ack() {
            self.spawn_child(sock, iface, local, remote)
        } else {
            sock
        };

        self.tcp_input_segment(sock, &thdr, payload, mem, now);
    }

    fn spawn_child(
        &mut self,
        listener: SockId,
        iface: IfaceId,
        local: SockAddr,
        remote: SockAddr,
    ) -> SockId {
        let child = self.kernelish_child(listener);
        let iface_mss = self.ifaces[iface.0 as usize].tcp_mss();
        let buf = self.cfg.sock_buf;
        let nagle = self.effective_nagle();
        let iss = self.next_iss();
        let mut tcb = crate::tcp::Tcb::new(&self.cfg, iss, nagle);
        tcb.listen(iface_mss, buf);
        let Some(s) = self.sockets.get_mut(&child) else {
            return child;
        };
        s.local = Some(local);
        s.remote = Some(remote);
        s.iface_hint = Some(iface);
        s.listen_parent = Some(listener);
        s.tcb = Some(tcb);
        self.conns.insert((Proto::Tcp, local, remote), child);
        child
    }

    fn kernelish_child(&mut self, listener: SockId) -> SockId {
        let owner = self.sockets[&listener].owner;
        match owner {
            Owner::User => self.sys_socket(Proto::Tcp),
            Owner::Kernel => self.kernel_socket(Proto::Tcp),
        }
    }

    /// Core TCP segment processing against a socket's TCB.
    pub(crate) fn tcp_input_segment(
        &mut self,
        sock: SockId,
        thdr: &TcpHeader,
        data: Chain,
        mem: &mut HostMem,
        now: Time,
    ) {
        let r = {
            let Some(s) = self.sockets.get_mut(&sock) else {
                self.discard_chain(data, now);
                return;
            };
            let rcv_space = s.so_rcv.space();
            let Some(tcb) = s.tcb.as_mut() else {
                self.discard_chain(data, now);
                return;
            };
            tcb.input(thdr, data, rcv_space, now)
        };

        // RST out for pathological segments.
        if let Some((seq, ack, flags)) = r.rst_out {
            let endpoints = self.sockets.get(&sock).and_then(|s| s.local.zip(s.remote));
            if let Some((local, remote)) = endpoints {
                self.emit_rst(local, remote, seq, ack, flags, mem, now);
            }
        }

        // Newly acknowledged data: drop from so_snd, free outboard buffers.
        if r.acked_bytes > 0 {
            self.span_ack(sock, r.acked_bytes as u64, now);
            self.ack_free(sock, r.acked_bytes, now);
            // Restart the retransmission timer from the new left edge.
            if let Some(s) = self.sockets.get_mut(&sock) {
                s.rexmt_armed = false;
                s.rexmt_gen += 1;
            }
        }

        // Deliver in-order data.
        let mut delivered = false;
        for c in r.deliver {
            delivered = true;
            self.deliver_data(sock, c, None, now);
        }

        // Connection events.
        if r.connected {
            self.on_connected(sock);
        }
        if r.fin_reached {
            if let Some(s) = self.sockets.get_mut(&sock) {
                s.rcv_eof = true;
                if let Some(w) = s.waiting_reader.take() {
                    self.wake(w.task, sock, Charge::Interrupt);
                }
            }
        }
        if delivered {
            let (waker, kernel_chain) = {
                let Some(s) = self.sockets.get_mut(&sock) else {
                    return;
                };
                let waker = s.waiting_reader.take();
                let kernel_chain = if s.owner == Owner::Kernel {
                    // TCP in-kernel applications read the byte stream via
                    // the ordered conversion queue.
                    let chain = s.so_rcv.chain.split_front(s.so_rcv.chain.len());
                    let from = s.remote.unwrap_or(SockAddr::new(Ipv4Addr::UNSPECIFIED, 0));
                    Some((chain, from))
                } else {
                    None
                };
                (waker, kernel_chain)
            };
            if let Some(w) = waker {
                self.wake(w.task, sock, Charge::Interrupt);
            }
            if let Some((chain, from)) = kernel_chain {
                self.deliver_to_kernel_queue(sock, chain, from, mem, now);
            }
        }

        // Writers may continue when ACKs freed space.
        if r.writer_space_freed {
            self.append_write_chunks(sock, mem, Charge::Interrupt, now);
            // Traditional-path writes complete once fully copied.
            let wake = {
                match self.sockets.get_mut(&sock) {
                    Some(s) => match s.blocked_write {
                        Some(bw) if !bw.uio_path && bw.appended == bw.total => {
                            s.blocked_write = None;
                            Some(bw.task)
                        }
                        _ => None,
                    },
                    None => None,
                }
            };
            if let Some(task) = wake {
                self.wake(task, sock, Charge::Interrupt);
            }
        }

        if r.closed {
            self.teardown(sock, now);
            return;
        }

        // Output follow-ups: forced ACK / window-opened transmission.
        let force = r.ack == AckMode::Now;
        if force || r.need_output || r.writer_space_freed {
            self.tcp_send(sock, mem, now, force);
        } else if r.ack == AckMode::Delayed {
            self.arm_tcp_timers(sock, now);
        }

        // TIME_WAIT arming.
        let tw = {
            let s = self.sockets.get_mut(&sock);
            match s {
                Some(s) => {
                    let is_tw = s
                        .tcb
                        .as_ref()
                        .map(|t| t.state == TcpState::TimeWait)
                        .unwrap_or(false);
                    if is_tw && !s.time_wait_armed {
                        s.time_wait_armed = true;
                        s.rexmt_gen += 1;
                        Some(s.rexmt_gen)
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        if let Some(generation) = tw {
            self.fx.push(Effect::Timer {
                after: self.cfg.time_wait,
                kind: TimerKind::TcpTimeWait { sock, generation },
            });
        }
    }

    /// Append received data to `so_rcv` (datagram bounds for UDP).
    fn deliver_data(
        &mut self,
        sock: SockId,
        chain: Chain,
        dgram_from: Option<SockAddr>,
        now: Time,
    ) {
        let Some(s) = self.sockets.get_mut(&sock) else {
            self.discard_chain(chain, now);
            return;
        };
        let blen = chain.len() as u64;
        // Kernel-owner sockets drain so_rcv synchronously (conversion
        // queue), so only user sockets accrue sockbuf-dwell spans.
        let track = s.owner != Owner::Kernel;
        if let Some(from) = dgram_from {
            s.dgram_bounds.push_back((chain.len(), from));
        }
        s.so_rcv.chain.concat(chain);
        if track {
            self.span_sockbuf_enqueue(sock, blen, now);
        }
    }

    fn on_connected(&mut self, sock: SockId) {
        let (connector, parent) = {
            let Some(s) = self.sockets.get_mut(&sock) else {
                return;
            };
            (s.connector.take(), s.listen_parent)
        };
        if let Some(task) = connector {
            self.wake(task, sock, Charge::Interrupt);
        }
        if let Some(parent) = parent {
            let acceptor = {
                let Some(p) = self.sockets.get_mut(&parent) else {
                    return;
                };
                p.accept_queue.push_back(sock);
                p.acceptor.take()
            };
            if let Some(task) = acceptor {
                self.wake(task, parent, Charge::Interrupt);
            }
        }
    }

    /// ACK processing: drop acknowledged bytes from the send queue and free
    /// the outboard packets they lived in.
    fn ack_free(&mut self, sock: SockId, bytes: usize, now: Time) {
        let dropped = {
            let Some(s) = self.sockets.get_mut(&sock) else {
                return;
            };
            let n = bytes.min(s.so_snd.chain.len());
            s.so_snd.chain.split_front(n)
        };
        for m in dropped.iter() {
            if let MbufData::Wcab(d) = m.data() {
                let packet = PacketId(d.packet);
                let iface = IfaceId(d.cab);
                self.with_cab(iface, |_k, cab| {
                    let free = match cab.tx_remaining.get_mut(&packet) {
                        Some(rem) => {
                            *rem = rem.saturating_sub(d.len);
                            *rem == 0
                        }
                        None => false,
                    };
                    if free {
                        cab.tx_remaining.remove(&packet);
                        cab.tx_hdr_len.remove(&packet);
                        cab.cab.free_packet(packet, now);
                    }
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // UDP input
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn udp_rx(
        &mut self,
        _iface: IfaceId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        mut payload: Chain,
        hw_csum: Option<u16>,
        trusted: bool,
        mem: &mut HostMem,
        now: Time,
    ) {
        self.cpu(self.machine.cost_udp_us, Charge::Interrupt);
        let transport_len = payload.len();
        let Some(hdr_bytes) = self.transport_header_bytes(&payload, UDP_HEADER_LEN) else {
            self.stats.ip_errors += 1;
            self.discard_chain(payload, now);
            return;
        };
        let Ok(uhdr) = UdpHeader::parse_with_available(&hdr_bytes, transport_len) else {
            self.stats.ip_errors += 1;
            self.discard_chain(payload, now);
            return;
        };
        let valid = if trusted || uhdr.checksum == 0 {
            true
        } else if let Some(hw) = hw_csum {
            crate::udp::verify_hw(src, dst, proto::UDP, transport_len, hw)
        } else {
            let cold = self.memsys.config().read_nolocality_at;
            let cost = self.memsys.read_cost(transport_len, cold);
            self.cpu_dur(cost, Charge::Interrupt);
            let pseudo = outboard_wire::checksum::pseudo_header_sum(
                src.octets(),
                dst.octets(),
                proto::UDP,
                transport_len as u16,
            );
            let sum = self.software_chain_sum(&payload, mem);
            outboard_wire::checksum::add16(pseudo, sum) == 0xFFFF
        };
        if !valid {
            self.stats.csum_errors += 1;
            self.discard_chain(payload, now);
            return;
        }
        payload.drop_front(UDP_HEADER_LEN.min(payload.len()));
        payload.truncate(payload.len().min(uhdr.payload_len()));

        let Some(&sock) = self.ports.get(&(Proto::Udp, uhdr.dst_port)) else {
            self.stats.no_socket_drops += 1;
            self.discard_chain(payload, now);
            return;
        };
        let from = SockAddr::new(src, uhdr.src_port);
        self.stats.udp_datagrams_in += 1;
        let owner = self.sockets[&sock].owner;
        match owner {
            Owner::Kernel => self.deliver_to_kernel_queue(sock, payload, from, mem, now),
            Owner::User => {
                // Respect the receive buffer (datagrams drop when full).
                let fits = {
                    let s = &self.sockets[&sock];
                    s.so_rcv.space() >= payload.len()
                };
                if !fits {
                    self.stats.no_socket_drops += 1;
                    self.discard_chain(payload, now);
                    return;
                }
                self.deliver_data(sock, payload, Some(from), now);
                let waker = self
                    .sockets
                    .get_mut(&sock)
                    .and_then(|s| s.waiting_reader.take());
                if let Some(w) = waker {
                    self.wake(w.task, sock, Charge::Interrupt);
                }
            }
        }
    }

    /// §5: queue a chain for an in-kernel application, converting `M_WCAB`
    /// descriptors to regular mbufs by asynchronous DMA while preserving
    /// arrival order.
    pub(crate) fn deliver_to_kernel_queue(
        &mut self,
        sock: SockId,
        chain: Chain,
        from: SockAddr,
        mem: &mut HostMem,
        now: Time,
    ) {
        let serial = self.kq_serial;
        self.kq_serial += 1;
        // Issue conversions before queueing (chain offsets are stable: the
        // entry chain is not consumed until fully converted).
        let mut converting = 0usize;
        let mut chain_off = 0usize;
        for m in chain.iter() {
            let off = chain_off;
            chain_off += m.len();
            let MbufData::Wcab(d) = m.data() else {
                continue;
            };
            let d = *d;
            converting += d.len;
            self.stats.wcab_to_regular += 1;
            let packet = PacketId(d.packet);
            let iface = IfaceId(d.cab);
            let purpose = SdmaPurpose::RxToKernel {
                sock,
                serial,
                chain_off: off,
                len: d.len,
            };
            self.with_cab(iface, |k, cab| {
                let free = {
                    match cab.rx_remaining.get_mut(&packet) {
                        Some(rem) => {
                            *rem = rem.saturating_sub(d.len);
                            *rem == 0
                        }
                        None => false,
                    }
                };
                if free {
                    cab.rx_remaining.remove(&packet);
                }
                let token = cab.issue(purpose);
                let req = SdmaRx {
                    packet,
                    src_off: d.off,
                    len: d.len,
                    dst: SdmaDst::Kernel,
                    free_packet: free,
                    interrupt_on_complete: true,
                    token,
                };
                Kernel::sdma_rx_resilient(k, cab, iface, req, now, mem);
            });
        }
        let ready = converting == 0;
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        s.kq.push_back(KqEntry {
            serial,
            chain,
            from,
            converting,
        });
        if ready && s.kq.len() == 1 {
            self.fx.push(Effect::KernelReady { sock });
        }
    }

    // ------------------------------------------------------------------
    // ICMP (the resident in-kernel application)
    // ------------------------------------------------------------------

    fn icmp_rx(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: Chain,
        mem: &mut HostMem,
        now: Time,
    ) {
        // ICMP messages are small; flatten through the conversion layer.
        let flat = self.flatten_for_legacy(&payload, mem);
        self.discard_chain(payload, now);
        if let Some((kind, ident, seq, data)) = crate::ip::icmp::parse_echo(&flat) {
            if kind == crate::ip::icmp::ECHO_REQUEST {
                // Reply goes out from our address to the requester.
                self.icmp_reply(dst, src, ident, seq, data, mem, now);
            }
        } else {
            self.stats.ip_errors += 1;
        }
    }

    // ------------------------------------------------------------------
    // SDMA completion
    // ------------------------------------------------------------------

    /// An SDMA request completed (the end-of-DMA notification, §4.4.2).
    #[allow(clippy::too_many_arguments)]
    pub fn sdma_done(
        &mut self,
        iface: IfaceId,
        token: u64,
        interrupt: bool,
        data: Option<Bytes>,
        mem: &mut HostMem,
        now: Time,
    ) -> Vec<Effect> {
        if interrupt {
            self.cpu(self.machine.cost_interrupt_us, Charge::Interrupt);
        }
        let purpose = self.with_cab(iface, |_k, cab| cab.complete(token));
        let Some(purpose) = purpose else {
            return self.take_effects();
        };
        match purpose {
            SdmaPurpose::TxPlain => {}
            SdmaPurpose::TxSegment {
                sock,
                seq_lo,
                data_len,
                packet,
                hdr_len,
                pinned,
            } => {
                self.convert_uio_to_wcab(sock, iface, seq_lo, data_len, packet, hdr_len);
                if let Some((task, vaddr, len)) = pinned {
                    let cost = self.vm.release(task, vaddr, len);
                    self.cpu_dur(cost, Charge::Interrupt);
                }
            }
            SdmaPurpose::RxToUser {
                sock,
                bytes,
                copy_dst,
            } => {
                if let (Some(bytes_data), Some((task, vaddr))) = (&data, copy_dst) {
                    // §4.5 unaligned fallback: finish with a CPU copy.
                    let cost = self
                        .memsys
                        .copy_cost(bytes_data.len(), bytes_data.len().max(4096));
                    self.cpu_dur(cost, Charge::Interrupt);
                    if mem.write_user(task, vaddr, bytes_data).is_err() {
                        self.stats.user_mem_faults += 1;
                    }
                }
                let done = {
                    let Some(s) = self.sockets.get(&sock) else {
                        return self.take_effects();
                    };
                    s.blocked_read
                        .map(|br| (br.counter, br.task, br.pinned_vaddr, br.pinned_len))
                };
                if let Some((counter, task, pv, pl)) = done {
                    if self.uio.complete(counter, bytes).is_some() {
                        let cost = self.vm.release(task, pv, pl);
                        self.cpu_dur(cost, Charge::Interrupt);
                        if let Some(s) = self.sockets.get_mut(&sock) {
                            s.blocked_read = None;
                        }
                        self.span_recv_complete(sock, now);
                        self.wake(task, sock, Charge::Interrupt);
                    }
                }
            }
            SdmaPurpose::RxToKernel {
                sock,
                serial,
                chain_off,
                len,
            } => {
                // A fallback completion with a missing or short payload
                // yields zeros of the right geometry; the consumer's
                // integrity checks reject the content, not the kernel.
                let bytes = match data {
                    Some(b) if b.len() == len => b,
                    _ => {
                        let (buf, ticket) = self.cluster_alloc(len);
                        self.cluster_freeze(buf, ticket)
                    }
                };
                let ready = {
                    let Some(s) = self.sockets.get_mut(&sock) else {
                        return self.take_effects();
                    };
                    let Some(entry) = s.kq.iter_mut().find(|e| e.serial == serial) else {
                        return self.take_effects();
                    };
                    let chain = std::mem::take(&mut entry.chain);
                    entry.chain = if chain_off + len <= chain.len() {
                        replace_range(chain, chain_off, len, Mbuf::kernel(bytes))
                    } else {
                        chain
                    };
                    entry.converting = entry.converting.saturating_sub(len);
                    entry.converting == 0 && s.kq.front().map(|e| e.serial) == Some(serial)
                };
                if ready {
                    self.fx.push(Effect::KernelReady { sock });
                }
            }
        }
        self.take_effects()
    }

    /// §4.2: after the data is copied outboard, the `M_UIO` range of the
    /// send queue becomes an `M_WCAB` descriptor (retransmittable without
    /// host memory), and the write's UIO counter is credited.
    fn convert_uio_to_wcab(
        &mut self,
        sock: SockId,
        iface: IfaceId,
        seq_lo: u32,
        data_len: usize,
        packet: PacketId,
        hdr_len: usize,
    ) {
        use outboard_wire::tcp::seq;
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        let Some(tcb) = s.tcb.as_ref() else { return };
        let base = tcb.snd_una;
        // Clamp to the still-queued range.
        let (skip_front, off_in_q) = if seq::lt(seq_lo, base) {
            (seq::diff(base, seq_lo) as usize, 0usize)
        } else {
            (0usize, seq::diff(seq_lo, base) as usize)
        };
        if skip_front >= data_len {
            return;
        }
        let len = (data_len - skip_front).min(s.so_snd.chain.len().saturating_sub(off_in_q));
        if len == 0 {
            return;
        }
        let chain = std::mem::take(&mut s.so_snd.chain);
        let (new_chain, removed) = replace_range_take(
            chain,
            off_in_q,
            len,
            Mbuf::wcab(WcabDesc {
                cab: iface.0,
                packet: packet.0,
                off: hdr_len + skip_front,
                len,
                hw_csum: 0,
                valid_len: len,
            }),
        );
        s.so_snd.chain = new_chain;
        self.stats.uio_to_wcab += 1;
        // Credit the UIO counters of the replaced descriptors.
        let mut wakes: Vec<(TaskId, SockId)> = Vec::new();
        for m in removed.iter() {
            if let MbufData::Uio(d) = m.data() {
                if let Some(c) = d.counter {
                    if let Some(st) = self.uio.complete(c, d.len) {
                        wakes.push((st.task, st.sock));
                    }
                }
            }
        }
        for (task, wsock) in wakes {
            if let Some(s) = self.sockets.get_mut(&wsock) {
                s.blocked_write = None;
            }
            self.wake(task, wsock, Charge::Interrupt);
        }
    }

    // ------------------------------------------------------------------
    // timers
    // ------------------------------------------------------------------

    /// A TCP timer fired (harness callback); stale generations are ignored.
    pub fn timer_fire(&mut self, kind: TimerKind, mem: &mut HostMem, now: Time) -> Vec<Effect> {
        match kind {
            TimerKind::TcpRexmt { sock, generation } => {
                let valid = self
                    .sockets
                    .get(&sock)
                    .map(|s| s.rexmt_armed && s.rexmt_gen == generation)
                    .unwrap_or(false);
                if valid {
                    self.cpu(self.machine.cost_interrupt_us, Charge::Interrupt);
                    let (window_closed, has_data) = {
                        let Some(s) = self.sockets.get_mut(&sock) else {
                            return self.take_effects();
                        };
                        s.rexmt_armed = false;
                        let Some(tcb) = s.tcb.as_mut() else {
                            return self.take_effects();
                        };
                        tcb.on_rexmt_timeout();
                        (tcb.snd_wnd == 0, !s.so_snd.chain.is_empty())
                    };
                    self.trace
                        .record(now, "tcp", "rto", format!("sock {sock:?}"));
                    if window_closed && has_data {
                        self.send_window_probe(sock, mem, now);
                    } else {
                        self.tcp_send(sock, mem, now, false);
                    }
                    self.arm_tcp_timers(sock, now);
                }
            }
            TimerKind::TcpDelack { sock, generation } => {
                let fire = self
                    .sockets
                    .get_mut(&sock)
                    .filter(|s| s.delack_gen == generation)
                    .and_then(|s| s.tcb.as_mut())
                    .map(|t| t.take_delack())
                    .unwrap_or(false);
                if fire {
                    self.cpu(self.machine.cost_interrupt_us, Charge::Interrupt);
                    self.tcp_send(sock, mem, now, true);
                }
            }
            TimerKind::TcpTimeWait { sock, generation } => {
                let expire = self
                    .sockets
                    .get_mut(&sock)
                    .filter(|s| s.rexmt_gen == generation)
                    .and_then(|s| s.tcb.as_mut())
                    .map(|t| t.on_time_wait_expired())
                    .unwrap_or(false);
                if expire {
                    self.teardown(sock, now);
                }
            }
            TimerKind::CabRetry { iface, generation } => {
                let valid = self
                    .ifaces
                    .get(iface.0 as usize)
                    .and_then(|i| i.cab_ref())
                    .map(|c| c.health.retry_armed && c.health.retry_gen == generation)
                    .unwrap_or(false);
                if valid {
                    self.cpu(self.machine.cost_interrupt_us, Charge::Interrupt);
                    self.cab_retry_fire(iface, mem, now);
                }
            }
            TimerKind::CabProbe { iface, generation } => {
                let valid = self
                    .ifaces
                    .get(iface.0 as usize)
                    .and_then(|i| i.cab_ref())
                    .map(|c| c.health.degraded && c.health.probe_gen == generation)
                    .unwrap_or(false);
                if valid {
                    self.cpu(self.machine.cost_interrupt_us, Charge::Interrupt);
                    self.cab_probe_fire(iface, now);
                }
            }
            TimerKind::CabWatchdog { iface, generation } => {
                let valid = self
                    .ifaces
                    .get(iface.0 as usize)
                    .and_then(|i| i.cab_ref())
                    .map(|c| c.health.watchdog_armed && c.health.watchdog_gen == generation)
                    .unwrap_or(false);
                if valid {
                    self.cab_watchdog_fire(iface, mem, now);
                }
            }
        }
        self.take_effects()
    }

    /// Zero-window probe: one byte past the window forces the peer to
    /// re-advertise (BSD's persist logic, folded into the rexmt timer).
    fn send_window_probe(&mut self, sock: SockId, mem: &mut HostMem, now: Time) {
        let (local, remote, plan) = {
            let Some(s) = self.sockets.get(&sock) else {
                return;
            };
            let Some(tcb) = s.tcb.as_ref() else {
                return;
            };
            let plan = SegmentPlan {
                seq: tcb.snd_una,
                ack: tcb.rcv_nxt,
                flags: TcpFlags::ACK,
                window: ((s.so_rcv.space() >> tcb.rcv_scale).min(0xFFFF)) as u16,
                data_off: 0,
                data_len: 1.min(s.so_snd.chain.len()),
                mss_opt: None,
                ws_opt: None,
                retransmit: true,
            };
            let (Some(local), Some(remote)) = (s.local, s.remote) else {
                return;
            };
            (local, remote, plan)
        };
        self.trace
            .record(now, "tcp", "window_probe", format!("sock {sock:?}"));
        self.emit_segment_for_probe(sock, local, remote, &plan, mem, now);
    }

    fn emit_segment_for_probe(
        &mut self,
        sock: SockId,
        local: SockAddr,
        remote: SockAddr,
        plan: &SegmentPlan,
        mem: &mut HostMem,
        now: Time,
    ) {
        // Same machinery as regular emission; lives here to keep the
        // borrow of the plan local.
        self.cpu(self.machine.cost_tcp_output_us, Charge::Interrupt);
        let data = {
            let Some(s) = self.sockets.get(&sock) else {
                return;
            };
            s.so_snd.chain.copy_range(plan.data_off, plan.data_len)
        };
        let mut hdr = outboard_wire::tcp::TcpHeader::new(
            local.port,
            remote.port,
            plan.seq,
            plan.ack,
            plan.flags,
        );
        hdr.window = plan.window;
        let flow = if self.spans.on() {
            let group = FlowId::group_of(
                local.ip.octets(),
                local.port,
                remote.ip.octets(),
                remote.port,
            );
            FlowId::from_parts(group, plan.seq)
        } else {
            FlowId::NONE
        };
        let meta = TxMeta {
            sock: Some(sock),
            seq_lo: plan.seq,
            retransmit: plan.retransmit,
            free_after_mdma: plan.data_len == 0,
            flow,
        };
        self.transport_output(
            local.ip,
            remote.ip,
            proto::TCP,
            hdr.build(),
            outboard_wire::tcp::TCP_CSUM_OFFSET,
            data,
            meta,
            mem,
            now,
        );
    }
}

/// Rebuild `chain` with `[off, off+len)` replaced by `replacement`.
fn replace_range(chain: Chain, off: usize, len: usize, replacement: Mbuf) -> Chain {
    replace_range_take(chain, off, len, replacement).0
}

/// Like [`replace_range`] but also returns the removed middle chain.
pub(crate) fn replace_range_take(
    mut chain: Chain,
    off: usize,
    len: usize,
    replacement: Mbuf,
) -> (Chain, Chain) {
    assert!(off + len <= chain.len());
    let mut head = chain.split_front(off);
    let removed = chain.split_front(len);
    // split_front migrates the packet header to the first split; restore it
    // onto the rebuilt chain's front.
    head.hdr = std::mem::take(&mut chain.hdr);
    let mut out = head;
    out.append(replacement);
    out.concat(chain);
    (out, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_range_substitutes_descriptors() {
        let mut c = Chain::from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        c.append(Mbuf::kernel_copy(&[9, 10]));
        let (out, removed) = replace_range_take(c, 2, 5, Mbuf::kernel_copy(&[0xAA; 5]));
        assert_eq!(out.len(), 10);
        assert_eq!(removed.len(), 5);
        let flat = out.flatten_kernel().unwrap();
        assert_eq!(flat, vec![1, 2, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 8, 9, 10]);
        assert_eq!(removed.flatten_kernel().unwrap(), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn replace_entire_chain() {
        let c = Chain::from_slice(&[1, 2, 3]);
        let out = replace_range(c, 0, 3, Mbuf::kernel_copy(&[7, 7, 7]));
        assert_eq!(out.flatten_kernel().unwrap(), vec![7, 7, 7]);
    }
}
