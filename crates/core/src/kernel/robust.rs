//! CAB driver robustness: bounded retry with exponential backoff for
//! transient DMA failures and network-memory exhaustion, degraded mode
//! (fall back to the traditional host-buffered, software-checksum path)
//! with periodic recovery probes, and a watchdog that resets a board whose
//! engine has wedged and rebuilds transmit state from the socket send
//! queues.
//!
//! The paper's driver treats outboard-resource exhaustion as "a transient
//! out-of-resources condition" (§4.4.3); this module applies that
//! philosophy to every failure the device model can produce. Nothing here
//! panics: a sick adaptor costs throughput, never the kernel.

use super::Kernel;
use crate::driver::{CabIface, PendingTx, SdmaPurpose};
use crate::types::{Effect, IfaceId, SockId, TimerKind};
use outboard_cab::{CabError, CabEvent, PacketId, SdmaDst, SdmaRx, SdmaTx};
use outboard_host::{Charge, HostMem, UserMemory};
use outboard_mbuf::{Chain, Mbuf, MbufData};
use outboard_sim::span::Stage;
use outboard_sim::{Dur, Time};

/// Which buffer of a socket the watchdog rescue is walking: the send
/// queue, the receive queue, or one TCP reassembly chain (by sequence).
enum RescueChain {
    Snd,
    Rcv,
    Reass(u32),
}

impl RescueChain {
    fn chain<'a>(&self, s: &'a crate::socket::Socket) -> Option<&'a Chain> {
        match self {
            RescueChain::Snd => Some(&s.so_snd.chain),
            RescueChain::Rcv => Some(&s.so_rcv.chain),
            RescueChain::Reass(seq) => s.tcb.as_ref()?.reass_chain(*seq),
        }
    }

    fn chain_mut<'a>(&self, s: &'a mut crate::socket::Socket) -> Option<&'a mut Chain> {
        match self {
            RescueChain::Snd => Some(&mut s.so_snd.chain),
            RescueChain::Rcv => Some(&mut s.so_rcv.chain),
            RescueChain::Reass(seq) => s.tcb.as_mut()?.reass_chain_mut(*seq),
        }
    }
}

impl Kernel {
    /// Backoff delay for the given retry round (base × 2^round).
    fn cab_backoff(&self, round: u32) -> Dur {
        self.cfg.cab_retry_base * (1u64 << round.min(16))
    }

    /// Arm the wedged-engine watchdog (idempotent while armed).
    pub(crate) fn arm_watchdog(k: &mut Kernel, cab: &mut CabIface, iface: IfaceId) {
        if cab.health.watchdog_armed {
            return;
        }
        cab.health.watchdog_armed = true;
        cab.health.watchdog_gen += 1;
        k.fx.push(Effect::Timer {
            after: k.cfg.cab_watchdog_timeout,
            kind: TimerKind::CabWatchdog {
                iface,
                generation: cab.health.watchdog_gen,
            },
        });
    }

    /// Arm the watchdog when the error indicates a wedged engine.
    pub(crate) fn watchdog_on_wedge(
        k: &mut Kernel,
        cab: &mut CabIface,
        iface: IfaceId,
        e: &CabError,
    ) {
        if matches!(e, CabError::EngineWedged(_)) {
            Kernel::arm_watchdog(k, cab, iface);
        }
    }

    /// Park a transmission on the retry queue and arm the backoff timer.
    pub(crate) fn park_tx(
        k: &mut Kernel,
        cab: &mut CabIface,
        iface: IfaceId,
        entry: PendingTx,
        now: Time,
    ) {
        cab.retry_q.push_back(entry);
        k.span_detour_open(iface, Stage::RetryDwell, now);
        if cab.health.retry_armed {
            return;
        }
        cab.health.retry_armed = true;
        cab.health.retry_gen += 1;
        let after = k.cab_backoff(cab.health.retry_round);
        cab.health.stats.backoff_us += after.as_micros_f64() as u64;
        k.fx.push(Effect::Timer {
            after,
            kind: TimerKind::CabRetry {
                iface,
                generation: cab.health.retry_gen,
            },
        });
    }

    /// Release a transmit purpose's pinned user pages (the completion that
    /// would have released them will never run).
    fn release_purpose_pins(&mut self, purpose: &SdmaPurpose) -> Option<SockId> {
        if let SdmaPurpose::TxSegment { sock, pinned, .. } = purpose {
            if let Some((task, vaddr, len)) = *pinned {
                let cost = self.vm.release(task, vaddr, len);
                self.cpu_dur(cost, Charge::Interrupt);
            }
            Some(*sock)
        } else {
            None
        }
    }

    /// Re-attempt one parked transmission. On failure the entry goes back
    /// on the retry queue (without re-arming: the caller owns the timer) or
    /// is dropped when the device says it can never succeed.
    fn submit_pending(
        k: &mut Kernel,
        cab: &mut CabIface,
        iface: IfaceId,
        entry: PendingTx,
        now: Time,
        mem: &mut HostMem,
    ) {
        k.cpu(k.machine.cost_driver_pkt_us, Charge::Interrupt);
        match entry {
            PendingTx::Mdma {
                packet,
                dst,
                channel,
                free_after,
            } => match cab.cab.mdma_tx(packet, dst, channel, now, free_after) {
                Ok(ev) => k.fx.push(Effect::Cab { iface, event: ev }),
                Err(e) => {
                    Kernel::watchdog_on_wedge(k, cab, iface, &e);
                    if e.is_transient() || matches!(e, CabError::EngineWedged(_)) {
                        cab.retry_q.push_back(PendingTx::Mdma {
                            packet,
                            dst,
                            channel,
                            free_after,
                        });
                    } else {
                        // The packet vanished (board reset) or the request
                        // is malformed: nothing a retry can fix.
                        cab.health.stats.abandoned_tx += 1;
                        if free_after {
                            cab.cab.free_packet(packet, now);
                        }
                    }
                }
            },
            PendingTx::Sdma {
                frame_len,
                sg,
                csum,
                dst,
                channel,
                mut purpose,
                free_after_mdma,
                data_len,
                hdr_len,
            } => {
                let Some(packet) = cab.cab.alloc_packet(frame_len) else {
                    cab.retry_q.push_back(PendingTx::Sdma {
                        frame_len,
                        sg,
                        csum,
                        dst,
                        channel,
                        purpose,
                        free_after_mdma,
                        data_len,
                        hdr_len,
                    });
                    return;
                };
                if let SdmaPurpose::TxSegment { packet: p, .. } = &mut purpose {
                    *p = packet;
                }
                let interrupt = matches!(purpose, SdmaPurpose::TxSegment { .. });
                let token = cab.issue(purpose);
                if !free_after_mdma && data_len > 0 {
                    cab.tx_remaining.insert(packet, data_len);
                    cab.tx_hdr_len.insert(packet, hdr_len);
                }
                let req = SdmaTx {
                    packet,
                    sg: sg.clone(),
                    csum,
                    reuse_body_csum: false,
                    interrupt_on_complete: interrupt,
                    token,
                };
                match cab.cab.sdma_tx(req, now, mem) {
                    Ok(ev) => {
                        let sdma_done = ev.at();
                        k.fx.push(Effect::Cab { iface, event: ev });
                        match cab
                            .cab
                            .mdma_tx(packet, dst, channel, sdma_done, free_after_mdma)
                        {
                            Ok(ev) => k.fx.push(Effect::Cab { iface, event: ev }),
                            Err(e) => {
                                Kernel::watchdog_on_wedge(k, cab, iface, &e);
                                cab.retry_q.push_back(PendingTx::Mdma {
                                    packet,
                                    dst,
                                    channel,
                                    free_after: free_after_mdma,
                                });
                            }
                        }
                    }
                    Err(e) => {
                        cab.complete(token);
                        cab.tx_remaining.remove(&packet);
                        cab.tx_hdr_len.remove(&packet);
                        // A wedge seizes the buffer; the reset reclaims it.
                        if !matches!(e, CabError::EngineWedged(_)) {
                            cab.cab.free_packet(packet, now);
                        }
                        Kernel::watchdog_on_wedge(k, cab, iface, &e);
                        cab.retry_q.push_back(PendingTx::Sdma {
                            frame_len,
                            sg,
                            csum,
                            dst,
                            channel,
                            purpose,
                            free_after_mdma,
                            data_len,
                            hdr_len,
                        });
                    }
                }
            }
        }
    }

    /// The retry-backoff timer fired: re-attempt every parked transmission;
    /// whatever fails again waits for the next (doubled) round, and after
    /// `cab_retry_max` rounds the driver gives up and degrades.
    pub(crate) fn cab_retry_fire(&mut self, iface_id: IfaceId, mem: &mut HostMem, now: Time) {
        // Every parked transmission's dwell ends here; if some re-park, a
        // fresh dwell span covers the queue until the next round.
        self.span_detour_close_all(iface_id, Stage::RetryDwell, now);
        let give_up = self.with_cab(iface_id, |k, cab| {
            cab.health.retry_armed = false;
            let parked: Vec<PendingTx> = cab.retry_q.drain(..).collect();
            for entry in parked {
                cab.health.stats.tx_retries += 1;
                Kernel::submit_pending(k, cab, iface_id, entry, now, mem);
            }
            if cab.retry_q.is_empty() {
                cab.health.retry_round = 0;
                return false;
            }
            cab.health.retry_round += 1;
            if cab.health.retry_round >= k.cfg.cab_retry_max {
                return true;
            }
            k.span_detour_open(iface_id, Stage::RetryDwell, now);
            cab.health.retry_armed = true;
            cab.health.retry_gen += 1;
            let after = k.cab_backoff(cab.health.retry_round);
            cab.health.stats.backoff_us += after.as_micros_f64() as u64;
            k.fx.push(Effect::Timer {
                after,
                kind: TimerKind::CabRetry {
                    iface: iface_id,
                    generation: cab.health.retry_gen,
                },
            });
            false
        });
        if give_up {
            self.cab_give_up(iface_id, mem, now);
        }
    }

    /// Retries exhausted: abandon the parked transmissions to TCP recovery,
    /// enter degraded mode, and rebuild transmit through the traditional
    /// path so progress continues without the adaptor.
    fn cab_give_up(&mut self, iface_id: IfaceId, mem: &mut HostMem, now: Time) {
        let mut affected = self.with_cab(iface_id, |k, cab| {
            cab.health.retry_round = 0;
            let parked: Vec<PendingTx> = cab.retry_q.drain(..).collect();
            let mut purposes = Vec::new();
            for entry in parked {
                cab.health.stats.abandoned_tx += 1;
                match entry {
                    PendingTx::Sdma { purpose, .. } => purposes.push(purpose),
                    PendingTx::Mdma {
                        packet, free_after, ..
                    } => {
                        // If an engine is wedged this packet may be seized
                        // mid-transfer; the board reset reclaims it instead.
                        if free_after && !cab.cab.any_engine_wedged() {
                            cab.cab.free_packet(packet, now);
                        }
                    }
                }
            }
            if !cab.health.degraded {
                cab.health.degraded = true;
                cab.health.stats.degraded_entries += 1;
                k.span_detour_open(iface_id, Stage::Degraded, now);
            }
            cab.health.probe_gen += 1;
            k.fx.push(Effect::Timer {
                after: k.cfg.cab_probe_interval,
                kind: TimerKind::CabProbe {
                    iface: iface_id,
                    generation: cab.health.probe_gen,
                },
            });
            purposes
        });
        let mut socks: Vec<SockId> = Vec::new();
        for p in affected.drain(..) {
            if let Some(s) = self.release_purpose_pins(&p) {
                socks.push(s);
            }
        }
        self.trace.record(
            now,
            "cab.driver",
            "degraded_enter",
            format!("iface {} retries exhausted", iface_id.0),
        );
        self.rebuild_transmit(socks, mem, now);
    }

    /// Rewind each connection to its unacknowledged left edge and push it
    /// back through the output path (now the traditional one if degraded).
    fn rebuild_transmit(&mut self, mut socks: Vec<SockId>, mem: &mut HostMem, now: Time) {
        socks.sort();
        socks.dedup();
        for sock in socks {
            if let Some(tcb) = self.sockets.get_mut(&sock).and_then(|s| s.tcb.as_mut()) {
                tcb.rewind_for_rebuild();
            }
            self.tcp_send(sock, mem, now, false);
        }
    }

    /// The degraded-mode probe fired: test the adaptor (engines unwedged
    /// and an allocation succeeds) and either return to the single-copy
    /// path or re-arm the probe.
    pub(crate) fn cab_probe_fire(&mut self, iface_id: IfaceId, now: Time) {
        let recovered = self.with_cab(iface_id, |k, cab| {
            if !cab.health.degraded {
                return false;
            }
            let healthy = !cab.cab.any_engine_wedged()
                && match cab.cab.alloc_packet(1) {
                    Some(p) => {
                        cab.cab.free_packet(p, now);
                        true
                    }
                    None => false,
                };
            if healthy {
                cab.health.degraded = false;
                cab.health.stats.degraded_exits += 1;
                k.span_detour_close_all(iface_id, Stage::Degraded, now);
            } else {
                cab.health.probe_gen += 1;
                k.fx.push(Effect::Timer {
                    after: k.cfg.cab_probe_interval,
                    kind: TimerKind::CabProbe {
                        iface: iface_id,
                        generation: cab.health.probe_gen,
                    },
                });
            }
            healthy
        });
        if recovered {
            self.trace.record(
                now,
                "cab.driver",
                "degraded_exit",
                format!("iface {} probe healthy", iface_id.0),
            );
        }
    }

    /// The watchdog fired: if an engine is still wedged, rescue outboard
    /// bytes referenced by socket buffers via programmed I/O, reset the
    /// board (dropping all outboard state), enter degraded mode, and
    /// rebuild transmit from the socket send queues.
    pub(crate) fn cab_watchdog_fire(&mut self, iface_id: IfaceId, mem: &mut HostMem, now: Time) {
        let still_wedged = self.with_cab(iface_id, |_k, cab| {
            cab.health.watchdog_armed = false;
            cab.cab.any_engine_wedged()
        });
        if !still_wedged {
            return;
        }
        self.cab_reset_recover(iface_id, mem, now, "watchdog_reset");
    }

    /// The board crashed out of band (chaos `board_crash`): run the same
    /// rescue-reset-degrade-rebuild sequence the watchdog uses, immediately
    /// and unconditionally. The rescue step matters even for a dead board —
    /// network memory stays host-addressable, so PIO-ing the socket-buffer
    /// bytes out *before* the reset is what keeps the rebuilt segments
    /// carrying real data instead of zeros under valid checksums.
    pub fn cab_board_crash(
        &mut self,
        iface_id: IfaceId,
        mem: &mut HostMem,
        now: Time,
    ) -> Vec<Effect> {
        let idx = iface_id.0 as usize;
        if self.ifaces.get_mut(idx).and_then(|i| i.cab()).is_none() {
            return self.take_effects(); // not a CAB interface: nothing to crash
        }
        self.with_cab(iface_id, |_k, cab| {
            cab.health.stats.board_crashes += 1;
        });
        self.cab_reset_recover(iface_id, mem, now, "board_crash");
        self.take_effects()
    }

    /// Shared recovery sequence: PIO-rescue outboard socket-buffer bytes,
    /// drop in-flight conversions and parked retries, reset the board,
    /// enter degraded mode with a recovery probe, and rebuild transmit from
    /// the socket send queues.
    fn cab_reset_recover(
        &mut self,
        iface_id: IfaceId,
        mem: &mut HostMem,
        now: Time,
        reason: &'static str,
    ) {
        self.cpu(self.machine.cost_interrupt_us, Charge::Interrupt);
        self.span_detour(Stage::WatchdogReset, now, now, 0);
        // Parked transmissions die with the reset; their dwell is abandoned.
        self.span_detour_drop_all(iface_id, Stage::RetryDwell, now);

        // 1. Rescue: network memory stays host-addressable even with the
        //    DMA engines stuck, so every M_WCAB descriptor (this interface)
        //    still in a socket buffer is read out by PIO into host mbufs
        //    before the reset frees its backing packet.
        let mut to_rescue: Vec<SockId> = self.sockets.keys().copied().collect();
        to_rescue.sort();
        let mut affected: Vec<SockId> = Vec::new();
        for sock in to_rescue {
            if self.rescue_sock_buffers(sock, iface_id) {
                affected.push(sock);
            }
        }

        // 2. Drop in-flight transmit conversions and parked retries, then
        //    reset. Their sockets rewind and resend below.
        let mut more = self.with_cab(iface_id, |k, cab| {
            let mut purposes = cab.drop_pending_tx();
            for entry in std::mem::take(&mut cab.retry_q) {
                cab.health.stats.abandoned_tx += 1;
                match entry {
                    PendingTx::Sdma { purpose, .. } => purposes.push(purpose),
                    PendingTx::Mdma { .. } => {} // its packet dies with the reset
                }
            }
            cab.health.retry_armed = false;
            cab.health.retry_gen += 1;
            cab.health.retry_round = 0;
            cab.cab.reset();
            cab.tx_remaining.clear();
            cab.tx_hdr_len.clear();
            cab.rx_remaining.clear();
            cab.health.stats.watchdog_resets += 1;
            if !cab.health.degraded {
                cab.health.degraded = true;
                cab.health.stats.degraded_entries += 1;
                k.span_detour_open(iface_id, Stage::Degraded, now);
            }
            cab.health.probe_gen += 1;
            k.fx.push(Effect::Timer {
                after: k.cfg.cab_probe_interval,
                kind: TimerKind::CabProbe {
                    iface: iface_id,
                    generation: cab.health.probe_gen,
                },
            });
            purposes
        });
        for p in more.drain(..) {
            if let Some(s) = self.release_purpose_pins(&p) {
                affected.push(s);
            }
        }
        self.trace.record(
            now,
            "cab.driver",
            reason,
            format!("iface {} board reset", iface_id.0),
        );
        self.rebuild_transmit(affected, mem, now);
    }

    /// Replace this interface's outboard descriptors in `sock`'s buffers
    /// with host mbufs read out by programmed I/O. Returns whether anything
    /// was rescued.
    ///
    /// Covers the send queue, the receive queue, AND the TCP out-of-order
    /// reassembly queue: reassembled chains are appended to `so_rcv` long
    /// after their segment checksum was verified, so an outboard buffer
    /// lost to a board reset would otherwise surface as silent zeros at
    /// the application (found by chaos seed 9: receiver-side MDMA wedge
    /// while a gap was queued).
    fn rescue_sock_buffers(&mut self, sock: SockId, iface_id: IfaceId) -> bool {
        let mut rescued = false;
        let mut targets = vec![RescueChain::Snd, RescueChain::Rcv];
        if let Some(tcb) = self.sockets.get(&sock).and_then(|s| s.tcb.as_ref()) {
            targets.extend(tcb.reass_keys().into_iter().map(RescueChain::Reass));
        }
        for which in targets {
            loop {
                // Locate the first outboard descriptor of this interface.
                let found = {
                    let Some(s) = self.sockets.get(&sock) else {
                        break;
                    };
                    let Some(chain) = which.chain(s) else {
                        break;
                    };
                    let mut off = 0usize;
                    let mut hit = None;
                    for m in chain.iter() {
                        if let MbufData::Wcab(d) = m.data() {
                            if d.cab == iface_id.0 {
                                hit = Some((off, *d));
                                break;
                            }
                        }
                        off += m.len();
                    }
                    hit
                };
                let Some((off, d)) = found else {
                    break;
                };
                let (mut buf, ticket) = self.cluster_alloc(d.len);
                self.with_cab(iface_id, |k, cab| {
                    // A buffer already gone reads as zeros; the peer's
                    // checksum rejects any segment built from it.
                    let _ = cab.cab.read_packet(PacketId(d.packet), d.off, &mut buf);
                    cab.health.stats.rescued_bytes += d.len as u64;
                    let cost = k.memsys.read_cost(d.len, d.len.max(4096));
                    k.cpu_dur(cost, Charge::Interrupt);
                });
                let rescued_mbuf = Mbuf::kernel(self.cluster_freeze(buf, ticket));
                let Some(s) = self.sockets.get_mut(&sock) else {
                    break;
                };
                let Some(chain) = which.chain_mut(s) else {
                    break;
                };
                let taken = std::mem::take(chain);
                let (new_chain, _removed) =
                    super::replace_range_take(taken, off, d.len, rescued_mbuf);
                *chain = new_chain;
                rescued = true;
            }
        }
        rescued
    }

    /// Issue a receive copy-out, falling back to programmed I/O with a
    /// synthesized completion event when the engine refuses the request.
    /// The data still reaches its destination; only the transfer is slower
    /// (and charged to the CPU instead of the engine).
    pub(crate) fn sdma_rx_resilient(
        k: &mut Kernel,
        cab: &mut CabIface,
        iface: IfaceId,
        req: SdmaRx,
        now: Time,
        mem: &mut HostMem,
    ) {
        match cab.cab.sdma_rx(req, now, mem) {
            Ok(ev) => k.fx.push(Effect::Cab { iface, event: ev }),
            Err(e) => {
                Kernel::watchdog_on_wedge(k, cab, iface, &e);
                let (mut buf, ticket) = k.cluster_alloc(req.len);
                let _ = cab.cab.read_packet(req.packet, req.src_off, &mut buf);
                let cost = k.memsys.read_cost(req.len, req.len.max(4096));
                k.cpu_dur(cost, Charge::Interrupt);
                let data = match req.dst {
                    SdmaDst::User { task, vaddr } => {
                        if mem.write_user(task, vaddr, &buf).is_err() {
                            k.stats.user_mem_faults += 1;
                        }
                        if let (Some(p), Some(t)) = (&k.pool, ticket) {
                            p.release(buf, t);
                        }
                        None
                    }
                    SdmaDst::Kernel => Some(k.cluster_freeze(buf, ticket)),
                };
                // A wedged engine holds the buffer until board reset; PIO
                // may still read the bytes, but the host must not free.
                if req.free_packet && !matches!(e, CabError::EngineWedged(_)) {
                    cab.cab.free_packet(req.packet, now);
                }
                cab.health.stats.pio_fallbacks += 1;
                k.span_detour(Stage::PioFallback, now, now, req.len as u64);
                k.fx.push(Effect::Cab {
                    iface,
                    event: CabEvent::SdmaDone {
                        at: now,
                        token: req.token,
                        interrupt: req.interrupt_on_complete,
                        data,
                    },
                });
            }
        }
    }
}
