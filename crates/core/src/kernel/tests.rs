//! Kernel unit tests: syscall error paths, socket lifecycle, loopback
//! traffic, and stats — exercised against a single kernel with a manual
//! effect pump (no testbed).

use super::*;
use crate::types::{Effect, Proto, ReadResult, SockAddr, StackError, WriteResult};
use outboard_host::{HostMem, MachineConfig, UserMemory};
use outboard_mbuf::TaskId;
use outboard_sim::{Dur, Time};
use std::net::Ipv4Addr;

const LO: Ipv4Addr = Ipv4Addr::new(127, 0, 0, 1);

struct Rig {
    k: Kernel,
    mem: HostMem,
    now: Time,
    /// Wakes observed while pumping.
    wakes: Vec<TaskId>,
}

impl Rig {
    fn loopback(cfg: StackConfig) -> Rig {
        let mut k = Kernel::new("rig", MachineConfig::alpha_3000_400(), cfg);
        let lo = k.add_loopback(LO);
        k.add_route(LO, 32, lo);
        Rig {
            k,
            mem: HostMem::new(),
            now: Time::ZERO,
            wakes: Vec::new(),
        }
    }

    /// Interpret effects: re-inject loopback frames, fire timers late,
    /// record wakes. Loops until quiescent.
    fn pump(&mut self, mut fx: Vec<Effect>) {
        let mut timers = Vec::new();
        for _ in 0..10_000 {
            let mut next = Vec::new();
            for e in fx {
                match e {
                    Effect::Loop { iface, frame } => {
                        self.now += Dur::micros(1);
                        next.extend(self.k.frame_arrive(iface, frame, &mut self.mem, self.now));
                    }
                    Effect::Wake { task, .. } => self.wakes.push(task),
                    Effect::Timer { after, kind } => timers.push((self.now + after, kind)),
                    Effect::Cpu { .. } | Effect::Cab { .. } | Effect::EthTx { .. } => {}
                    Effect::KernelReady { .. } => {}
                }
            }
            if next.is_empty() {
                // Fire due (or all pending) timers once traffic quiesces:
                // delayed ACKs keep the loopback handshake moving.
                if let Some((at, kind)) = timers.pop() {
                    self.now = self.now.max(at);
                    next = self.k.timer_fire(kind, &mut self.mem, self.now);
                } else {
                    return;
                }
            }
            fx = next;
        }
        panic!("pump did not quiesce");
    }
}

fn established_loopback_pair(rig: &mut Rig) -> (crate::types::SockId, crate::types::SockId) {
    let l = rig.k.sys_socket(Proto::Tcp);
    rig.k.sys_bind(l, 80).unwrap();
    rig.k.sys_listen(l).unwrap();
    let c = rig.k.sys_socket(Proto::Tcp);
    let fx = rig
        .k
        .sys_connect(c, TaskId(1), SockAddr::new(LO, 80), &mut rig.mem, rig.now)
        .unwrap();
    rig.pump(fx);
    let child = rig
        .k
        .sys_accept(l, TaskId(2))
        .unwrap()
        .expect("loopback handshake completed");
    (c, child)
}

#[test]
fn bind_conflicts_are_rejected() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let a = rig.k.sys_socket(Proto::Tcp);
    let b = rig.k.sys_socket(Proto::Tcp);
    rig.k.sys_bind(a, 80).unwrap();
    assert_eq!(rig.k.sys_bind(b, 80), Err(StackError::AddrInUse));
    // Different proto: fine.
    let u = rig.k.sys_socket(Proto::Udp);
    assert!(rig.k.sys_bind(u, 80).is_ok());
}

#[test]
fn listen_requires_tcp() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let u = rig.k.sys_socket(Proto::Udp);
    assert!(matches!(
        rig.k.sys_listen(u),
        Err(StackError::InvalidState(_))
    ));
}

#[test]
fn connect_without_route_fails() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let c = rig.k.sys_socket(Proto::Tcp);
    let err = rig
        .k
        .sys_connect(
            c,
            TaskId(1),
            SockAddr::new(Ipv4Addr::new(8, 8, 8, 8), 53),
            &mut rig.mem,
            Time::ZERO,
        )
        .unwrap_err();
    assert_eq!(err, StackError::NoRoute);
}

#[test]
fn bad_socket_ids_error() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let bogus = crate::types::SockId(999);
    assert_eq!(rig.k.sys_bind(bogus, 1), Err(StackError::BadSocket));
    assert!(rig
        .k
        .sys_write(bogus, TaskId(1), 0, 10, &mut rig.mem, Time::ZERO)
        .is_err());
    assert!(rig
        .k
        .sys_read(bogus, TaskId(1), 0, 10, &mut rig.mem, Time::ZERO)
        .is_err());
}

#[test]
fn write_before_connect_fails() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let c = rig.k.sys_socket(Proto::Tcp);
    rig.mem.create_region(TaskId(1), 0x1000, 4096);
    assert_eq!(
        rig.k
            .sys_write(c, TaskId(1), 0x1000, 10, &mut rig.mem, Time::ZERO)
            .unwrap_err(),
        StackError::NotConnected
    );
}

#[test]
fn loopback_tcp_round_trip() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let (c, child) = established_loopback_pair(&mut rig);

    rig.mem.create_region(TaskId(1), 0x1000, 8192);
    let data: Vec<u8> = (0..5000u32).map(|i| (i * 3) as u8).collect();
    rig.mem.write_user(TaskId(1), 0x1000, &data).unwrap();
    let (r, fx) = rig
        .k
        .sys_write(c, TaskId(1), 0x1000, 5000, &mut rig.mem, rig.now)
        .unwrap();
    // A non-single-copy interface takes the traditional path: the write
    // completes as soon as the copy into kernel mbufs is done.
    assert_eq!(r, WriteResult::Done { bytes: 5000 });
    rig.pump(fx);

    rig.mem.create_region(TaskId(2), 0x9000, 8192);
    let (r, _fx) = rig
        .k
        .sys_read(child, TaskId(2), 0x9000, 8192, &mut rig.mem, rig.now)
        .unwrap();
    match r {
        ReadResult::Done { bytes } => assert_eq!(bytes, 5000),
        other => panic!("loopback data not delivered: {other:?}"),
    }
    let mut buf = vec![0u8; 5000];
    rig.mem.read_user(TaskId(2), 0x9000, &mut buf).unwrap();
    assert_eq!(buf, data);
    // Loopback path never touched a checksum engine...
    assert_eq!(rig.k.stats.hw_checksums, 0);
    // ...and never built M_UIO descriptors either: the socket layer sees a
    // non-single-copy interface and copies through kernel mbufs (§4.4.3).
    assert_eq!(rig.k.stats.uio_to_wcab, 0);
    assert_eq!(rig.k.mbuf_stats.uio_allocs, 0);
}

#[test]
fn loopback_udp_datagram() {
    let mut rig = Rig::loopback(StackConfig::unmodified());
    let srv = rig.k.sys_socket(Proto::Udp);
    rig.k.sys_bind(srv, 9000).unwrap();
    let cli = rig.k.sys_socket(Proto::Udp);
    rig.k.sys_connect_udp(cli, SockAddr::new(LO, 9000)).unwrap();
    rig.mem.create_region(TaskId(1), 0x1000, 4096);
    rig.mem
        .write_user(TaskId(1), 0x1000, b"hello dgram")
        .unwrap();
    let (r, fx) = rig
        .k
        .sys_write(cli, TaskId(1), 0x1000, 11, &mut rig.mem, rig.now)
        .unwrap();
    assert_eq!(r, WriteResult::Done { bytes: 11 });
    rig.pump(fx);
    rig.mem.create_region(TaskId(2), 0x9000, 4096);
    let (r, _) = rig
        .k
        .sys_read(srv, TaskId(2), 0x9000, 4096, &mut rig.mem, rig.now)
        .unwrap();
    assert_eq!(r, ReadResult::Done { bytes: 11 });
    let mut buf = [0u8; 11];
    rig.mem.read_user(TaskId(2), 0x9000, &mut buf).unwrap();
    assert_eq!(&buf, b"hello dgram");
}

#[test]
fn read_on_empty_socket_registers_waiter_and_wakes() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let (c, child) = established_loopback_pair(&mut rig);
    rig.mem.create_region(TaskId(2), 0x9000, 4096);
    let (r, _) = rig
        .k
        .sys_read(child, TaskId(2), 0x9000, 4096, &mut rig.mem, rig.now)
        .unwrap();
    assert_eq!(r, ReadResult::WouldBlock);
    // Data arrives -> the waiting reader is woken.
    rig.mem.create_region(TaskId(1), 0x1000, 4096);
    rig.mem.write_user(TaskId(1), 0x1000, &[7u8; 100]).unwrap();
    let (_, fx) = rig
        .k
        .sys_write(c, TaskId(1), 0x1000, 100, &mut rig.mem, rig.now)
        .unwrap();
    rig.pump(fx);
    assert!(
        rig.wakes.contains(&TaskId(2)),
        "reader not woken: {:?}",
        rig.wakes
    );
}

#[test]
fn close_tears_down_after_fin_handshake() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let (c, child) = established_loopback_pair(&mut rig);
    let fx = rig.k.sys_close(c, &mut rig.mem, rig.now);
    rig.pump(fx);
    // The child sees EOF.
    rig.mem.create_region(TaskId(2), 0x9000, 64);
    let (r, _) = rig
        .k
        .sys_read(child, TaskId(2), 0x9000, 64, &mut rig.mem, rig.now)
        .unwrap();
    assert_eq!(r, ReadResult::Eof);
    let fx = rig.k.sys_close(child, &mut rig.mem, rig.now);
    rig.pump(fx);
    // The closing side lingers in TIME_WAIT; the passive closer is gone.
    assert!(rig.k.socket_ref(child).is_none(), "LAST_ACK side torn down");
}

#[test]
fn syn_to_closed_port_gets_rst() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let c = rig.k.sys_socket(Proto::Tcp);
    let fx = rig
        .k
        .sys_connect(c, TaskId(1), SockAddr::new(LO, 4444), &mut rig.mem, rig.now)
        .unwrap();
    rig.pump(fx);
    assert!(rig.k.stats.rst_sent > 0, "no RST for refused connection");
    // The connecting socket collapsed back to Closed.
    let s = rig.k.socket_ref(c);
    assert!(s.is_none() || s.unwrap().tcb.as_ref().unwrap().state == crate::tcp::TcpState::Closed);
}

#[test]
fn udp_message_too_big() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let cli = rig.k.sys_socket(Proto::Udp);
    rig.k.sys_connect_udp(cli, SockAddr::new(LO, 9000)).unwrap();
    rig.mem.create_region(TaskId(1), 0x1000, 70_000);
    assert_eq!(
        rig.k
            .sys_write(cli, TaskId(1), 0x1000, 66_000, &mut rig.mem, rig.now)
            .unwrap_err(),
        StackError::MessageTooBig
    );
}

#[test]
fn concurrent_writes_are_rejected() {
    // Two outstanding writes on one socket is a caller bug in this model
    // (one process per socket); surfaced as InvalidState, not corruption.
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let (c, _child) = established_loopback_pair(&mut rig);
    rig.mem.create_region(TaskId(1), 0x1000, 1 << 20);
    // Fill the socket buffer so a write stays blocked.
    let big = rig.k.cfg.sock_buf + 4096;
    let data = vec![1u8; big];
    rig.mem.region_mut(TaskId(1)).unwrap()[..big].copy_from_slice(&data);
    let (r, _fx) = rig
        .k
        .sys_write(c, TaskId(1), 0x1000, big, &mut rig.mem, rig.now)
        .unwrap();
    if matches!(r, WriteResult::Blocked { .. }) {
        assert!(matches!(
            rig.k
                .sys_write(c, TaskId(1), 0x1000, 10, &mut rig.mem, rig.now)
                .unwrap_err(),
            StackError::InvalidState(_)
        ));
    }
}

#[test]
fn accept_queue_and_acceptor_registration() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let l = rig.k.sys_socket(Proto::Tcp);
    rig.k.sys_bind(l, 80).unwrap();
    rig.k.sys_listen(l).unwrap();
    // No pending connection: registers the acceptor.
    assert_eq!(rig.k.sys_accept(l, TaskId(5)).unwrap(), None);
    let c = rig.k.sys_socket(Proto::Tcp);
    let fx = rig
        .k
        .sys_connect(c, TaskId(1), SockAddr::new(LO, 80), &mut rig.mem, rig.now)
        .unwrap();
    rig.pump(fx);
    assert!(rig.wakes.contains(&TaskId(5)), "acceptor woken");
    assert!(rig.k.sys_accept(l, TaskId(5)).unwrap().is_some());
}

#[test]
fn stats_count_packets_both_ways() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let (_c, _child) = established_loopback_pair(&mut rig);
    // Handshake alone moves at least 3 packets through tx and rx.
    assert!(rig.k.stats.tx_packets >= 3);
    assert!(rig.k.stats.rx_packets >= 3);
}

#[test]
fn effective_nagle_depends_on_mode() {
    let rig = Rig::loopback(StackConfig::single_copy());
    assert!(!rig.k.effective_nagle(), "single-copy never coalesces");
    let rig = Rig::loopback(StackConfig::unmodified());
    assert!(rig.k.effective_nagle());
    let mut cfg = StackConfig::unmodified();
    cfg.nagle = false;
    let rig = Rig::loopback(cfg);
    assert!(!rig.k.effective_nagle());
}

#[test]
fn sendto_recvfrom_unconnected_udp() {
    let mut rig = Rig::loopback(StackConfig::unmodified());
    let srv = rig.k.sys_socket(Proto::Udp);
    rig.k.sys_bind(srv, 9000).unwrap();
    let cli = rig.k.sys_socket(Proto::Udp);
    rig.mem.create_region(TaskId(1), 0x1000, 4096);
    rig.mem.write_user(TaskId(1), 0x1000, b"dgram one").unwrap();
    let (r, fx) = rig
        .k
        .sys_sendto(
            cli,
            TaskId(1),
            0x1000,
            9,
            SockAddr::new(LO, 9000),
            &mut rig.mem,
            rig.now,
        )
        .unwrap();
    assert_eq!(r, WriteResult::Done { bytes: 9 });
    rig.pump(fx);
    rig.mem.create_region(TaskId(2), 0x9000, 4096);
    let (r, from, _fx) = rig
        .k
        .sys_recvfrom(srv, TaskId(2), 0x9000, 4096, &mut rig.mem, rig.now)
        .unwrap();
    assert_eq!(r, ReadResult::Done { bytes: 9 });
    let from = from.expect("source reported");
    assert_eq!(from.ip, LO);
    // The client got an ephemeral port.
    assert!(from.port >= 20_000);
    // sendto on a TCP socket is rejected.
    let t = rig.k.sys_socket(Proto::Tcp);
    assert!(matches!(
        rig.k
            .sys_sendto(
                t,
                TaskId(1),
                0x1000,
                4,
                SockAddr::new(LO, 9000),
                &mut rig.mem,
                rig.now
            )
            .unwrap_err(),
        StackError::InvalidState(_)
    ));
}

#[test]
fn setsockbuf_resizes_and_locks_after_handshake() {
    let mut rig = Rig::loopback(StackConfig::single_copy());
    let c = rig.k.sys_socket(Proto::Tcp);
    rig.k.sys_setsockbuf(c, 64 * 1024).unwrap();
    assert_eq!(rig.k.socket_ref(c).unwrap().so_rcv.hiwat, 64 * 1024);
    let l = rig.k.sys_socket(Proto::Tcp);
    rig.k.sys_bind(l, 80).unwrap();
    rig.k.sys_listen(l).unwrap();
    let fx = rig
        .k
        .sys_connect(c, TaskId(1), SockAddr::new(LO, 80), &mut rig.mem, rig.now)
        .unwrap();
    rig.pump(fx);
    assert!(matches!(
        rig.k.sys_setsockbuf(c, 128 * 1024),
        Err(StackError::InvalidState(_))
    ));
}
