//! The kernel façade: sockets + TCP/UDP/IP + drivers on one host.
//!
//! Every public entry point is one of the arrows in the paper's Figure 4:
//! syscalls from user applications, the in-kernel application interface,
//! frame arrivals from devices, DMA-completion interrupts, and timers. Each
//! mutates protocol state and returns [`Effect`]s for the harness.
//!
//! CPU costs are charged per the machine model as the code walks the same
//! layers the real kernel would: syscall entry, socket layer (including VM
//! pin/map on the single-copy path, or the data copy on the traditional
//! path), transport output/input (including the software checksum read on
//! the traditional path), IP, and driver work.
//!
//! Split across submodules: construction + syscalls here, the transmit path
//! in `output`, the receive/completion/timer paths in `input`.

mod input;
mod output;
mod robust;
#[cfg(test)]
mod tests;

pub(crate) use input::replace_range_take;

use crate::driver::{CabIface, EthIface, Iface, IfaceKind, SdmaPurpose};
use crate::ip::Reassembler;
use crate::route::RouteTable;
use crate::sockbuf::UioCounters;
use crate::socket::{BlockedRead, BlockedWrite, Owner, Socket, WaitingReader};
use crate::tcp::{Tcb, TcpState, TcpStats};
use crate::types::{
    Effect, IfaceId, Proto, ReadResult, SockAddr, SockId, StackConfig, StackError, StackMode,
    WriteResult,
};
use bytes::Bytes;
use outboard_cab::{Cab, PacketId, SdmaDst, SdmaRx};
use outboard_host::{Charge, HostMem, MachineConfig, MemorySystem, TaskId, UserMemory, VmSystem};
use outboard_mbuf::{Chain, Mbuf, MbufData, MbufStats, UioDesc, UioRegion, WcabDesc};
use outboard_sim::span::{FlowId, SpanSink, Stage};
use outboard_sim::trace::Trace;
use outboard_sim::{BufPool, Dur, Ticket, Time};
use outboard_wire::ether::MacAddr;
use outboard_wire::ipv4::IPV4_HEADER_LEN;
use outboard_wire::udp::UDP_HEADER_LEN;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Kernel-level statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// IP packets transmitted.
    pub tx_packets: u64,
    /// IP packets received.
    pub rx_packets: u64,
    /// IP bytes transmitted.
    pub tx_bytes: u64,
    /// IP bytes received.
    pub rx_bytes: u64,
    /// Segments rejected by checksum verification.
    pub csum_errors: u64,
    /// Malformed/undeliverable IP packets.
    pub ip_errors: u64,
    /// Packets with no matching socket.
    pub no_socket_drops: u64,
    /// Transmissions dropped: CAB network memory exhausted.
    pub tx_nomem_drops: u64,
    /// RST segments emitted.
    pub rst_sent: u64,
    /// Send-queue ranges converted `M_UIO` to `M_WCAB` (§4.2).
    pub uio_to_wcab: u64,
    /// `M_UIO` chains copied to regular mbufs at a legacy driver (§5).
    pub uio_to_regular: u64,
    /// `M_WCAB` chains converted for legacy consumers (§5).
    pub wcab_to_regular: u64,
    /// Software (Read_C) checksums computed.
    pub sw_checksums: u64,
    /// Outboard checksum insertions used.
    pub hw_checksums: u64,
    /// IP fragments emitted.
    pub frags_sent: u64,
    /// IP fragments received into the reassembler.
    pub frags_reassembled: u64,
    /// ICMP echo replies generated.
    pub icmp_echo_replies: u64,
    /// Writes/reads that fell back to the traditional path on alignment.
    pub aligned_fallbacks: u64,
    /// Misaligned writes realigned by the §4.5 align-split extension.
    pub align_splits: u64,
    /// Retransmissions that re-DMAed only a fresh header (§4.3).
    pub retransmit_header_only: u64,
    /// Retransmissions that rebuilt a full packet (partial/misaligned).
    pub retransmit_slow_path: u64,
    /// TCP segments emitted (first transmissions and retransmissions).
    pub tcp_segs_out: u64,
    /// TCP segments emitted that were retransmissions.
    pub tcp_retransmit_segs: u64,
    /// UDP datagrams emitted.
    pub udp_datagrams_out: u64,
    /// UDP datagrams delivered to a socket.
    pub udp_datagrams_in: u64,
    /// User-memory accesses that faulted (bad mapping); the affected bytes
    /// read/write as zeros and the transfer continues.
    pub user_mem_faults: u64,
}

/// Metadata accompanying a transmit packet down to the driver.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TxMeta {
    pub sock: Option<SockId>,
    /// First sequence number of the payload (TCP).
    pub seq_lo: u32,
    /// True for TCP retransmissions (enables the header-only path).
    pub retransmit: bool,
    /// Free the outboard buffer right after MDMA (no retransmission need).
    pub free_after_mdma: bool,
    /// Causal-trace flow id ([`FlowId::NONE`] when tracing is disabled).
    pub flow: FlowId,
}

impl TxMeta {
    pub fn plain() -> TxMeta {
        TxMeta {
            sock: None,
            seq_lo: 0,
            retransmit: false,
            free_after_mdma: true,
            flow: FlowId::NONE,
        }
    }
}

/// One simulated host's kernel.
pub struct Kernel {
    /// Host name (diagnostics).
    pub name: String,
    /// The machine cost model.
    pub machine: MachineConfig,
    /// Stack configuration.
    pub cfg: StackConfig,
    /// Per-byte cost model.
    pub memsys: MemorySystem,
    /// VM pin/map bookkeeping and costs.
    pub vm: VmSystem,
    // BTreeMap: socket-table sweeps (degraded-mode rescue, stats rollup)
    // iterate this map, so its order reaches the event stream.
    pub(crate) sockets: BTreeMap<SockId, Socket>,
    next_sock: u32,
    next_port: u16,
    /// Bound (listener / datagram) sockets by port.
    // lint: allow(nondet-order, keyed demux lookup only, never iterated)
    pub(crate) ports: HashMap<(Proto, u16), SockId>,
    /// Fully-specified connections (proto, local, remote).
    // lint: allow(nondet-order, keyed demux lookup only, never iterated)
    pub(crate) conns: HashMap<(Proto, SockAddr, SockAddr), SockId>,
    /// Raw-IP protocol handlers: protocol number → kernel socket whose
    /// queue receives matching datagrams' payloads (§5: in-kernel
    /// applications "use TCP or UDP over IP, or raw IP").
    // lint: allow(nondet-order, keyed demux lookup only, never iterated)
    pub(crate) raw_protos: HashMap<u8, SockId>,
    /// Network interfaces, indexed by [`IfaceId`].
    pub ifaces: Vec<Iface>,
    /// The routing table.
    pub routes: RouteTable,
    pub(crate) reass: Reassembler,
    pub(crate) uio: UioCounters,
    pub(crate) fx: Vec<Effect>,
    pub(crate) ip_id: u16,
    iss: u32,
    pub(crate) kq_serial: u64,
    /// Protocol statistics.
    pub stats: KernelStats,
    /// TCP counters folded in from torn-down connections (see
    /// [`Kernel::tcp_stats`] for the live + closed aggregate).
    pub(crate) tcp_closed: TcpStats,
    /// Mbuf allocation statistics.
    pub mbuf_stats: MbufStats,
    /// Mechanism-level event trace.
    pub trace: Trace,
    /// Per-packet causal span sink (disabled by default; see `sim::span`).
    pub spans: SpanSink,
    /// Reusable scratch buffer for header assembly and descriptor reads on
    /// the transmit/checksum hot paths (grown once, then recycled).
    pub(crate) scratch: Vec<u8>,
    /// Shared buffer pool for mbuf cluster storage (kernel copies of user
    /// data, PIO fallbacks, rescue reads); `None` keeps plain allocation.
    pub(crate) pool: Option<Arc<BufPool>>,
}

impl Kernel {
    /// A kernel with no interfaces, routes, or sockets.
    pub fn new(name: &str, machine: MachineConfig, cfg: StackConfig) -> Kernel {
        Kernel {
            name: name.to_string(),
            memsys: MemorySystem::new(machine.clone()),
            vm: VmSystem::new(machine.clone(), cfg.lazy_vm),
            machine,
            cfg,
            sockets: BTreeMap::new(),
            next_sock: 1,
            next_port: 20_000,
            ports: HashMap::new(),
            conns: HashMap::new(),
            raw_protos: HashMap::new(),
            ifaces: Vec::new(),
            routes: RouteTable::new(),
            reass: Reassembler::new(),
            uio: UioCounters::new(),
            fx: Vec::new(),
            ip_id: 1,
            iss: 10_000,
            kq_serial: 1,
            stats: KernelStats::default(),
            tcp_closed: TcpStats::default(),
            mbuf_stats: MbufStats::default(),
            trace: Trace::new(16 * 1024),
            spans: SpanSink::disabled(),
            scratch: Vec::new(),
            pool: None,
        }
    }

    /// Recycle mbuf cluster storage through a shared [`BufPool`] so the
    /// copy paths stop allocating per segment.
    pub fn set_pool(&mut self, pool: Arc<BufPool>) {
        self.pool = Some(pool);
    }

    /// Zero-filled cluster storage (pooled when a pool is installed) plus
    /// the ticket [`Kernel::cluster_freeze`] needs to recycle it.
    pub(crate) fn cluster_alloc(&self, len: usize) -> (Vec<u8>, Option<Ticket>) {
        match &self.pool {
            Some(p) => {
                let (buf, t) = p.acquire(len);
                (buf, Some(t))
            }
            None => (vec![0u8; len], None),
        }
    }

    /// Freeze cluster storage into [`Bytes`]; pooled storage returns to the
    /// pool when the last view drops.
    pub(crate) fn cluster_freeze(&self, buf: Vec<u8>, ticket: Option<Ticket>) -> Bytes {
        match (&self.pool, ticket) {
            (Some(p), Some(t)) => p.freeze(buf, t),
            _ => Bytes::from(buf),
        }
    }

    // ------------------------------------------------------------------
    // configuration
    // ------------------------------------------------------------------

    /// The CAB configuration for this machine (Turbochannel speed applied).
    pub fn cab_config(&self) -> outboard_cab::CabConfig {
        outboard_cab::CabConfig {
            tc_speed_scale: self.machine.tc_speed_scale,
            ..outboard_cab::CabConfig::default()
        }
    }

    /// Attach a CAB interface (build the device via [`Kernel::cab_config`]).
    pub fn add_cab_iface(&mut self, ip: Ipv4Addr, cab: Cab, mtu: usize) -> IfaceId {
        let id = IfaceId(self.ifaces.len() as u32);
        self.ifaces.push(Iface {
            id,
            ip,
            mtu,
            kind: IfaceKind::Cab(Box::new(CabIface::new(cab))),
        });
        id
    }

    /// Attach a conventional Ethernet interface.
    pub fn add_eth_iface(&mut self, ip: Ipv4Addr, mac: MacAddr, mtu: usize) -> IfaceId {
        let id = IfaceId(self.ifaces.len() as u32);
        self.ifaces.push(Iface {
            id,
            ip,
            mtu,
            kind: IfaceKind::Eth(EthIface::new(mac)),
        });
        id
    }

    /// Attach a loopback interface.
    pub fn add_loopback(&mut self, ip: Ipv4Addr) -> IfaceId {
        let id = IfaceId(self.ifaces.len() as u32);
        self.ifaces.push(Iface {
            id,
            ip,
            mtu: 32 * 1024,
            kind: IfaceKind::Loopback,
        });
        id
    }

    /// Install a route.
    pub fn add_route(&mut self, dest: Ipv4Addr, prefix_len: u8, iface: IfaceId) {
        self.routes.add(dest, prefix_len, iface);
    }

    /// Static ARP entries for the HIPPI fabric / Ethernet segment.
    pub fn add_arp_hippi(&mut self, iface: IfaceId, ip: Ipv4Addr, addr: u32) {
        if let Some(cab) = self.ifaces[iface.0 as usize].cab() {
            cab.arp.insert(ip, addr);
        }
    }

    /// Static ARP entry for an Ethernet segment.
    pub fn add_arp_ether(&mut self, iface: IfaceId, ip: Ipv4Addr, mac: MacAddr) {
        if let IfaceKind::Eth(e) = &mut self.ifaces[iface.0 as usize].kind {
            e.arp.insert(ip, mac);
        }
    }

    /// Look up an interface.
    pub fn iface(&self, id: IfaceId) -> &Iface {
        &self.ifaces[id.0 as usize]
    }

    /// Inspect a socket (tests and harnesses).
    pub fn socket_ref(&self, id: SockId) -> Option<&Socket> {
        self.sockets.get(&id)
    }

    /// Take the accumulated effects.
    pub fn take_effects(&mut self) -> Vec<Effect> {
        std::mem::take(&mut self.fx)
    }

    // ------------------------------------------------------------------
    // internal helpers
    // ------------------------------------------------------------------

    /// Socket entry for an id already validated at syscall entry. Sockets
    /// leave the table only through `sys_close`, which cannot interleave
    /// with an in-flight syscall, so the entry outlives the whole call.
    fn sock_mut(&mut self, sock: SockId) -> &mut Socket {
        self.sockets
            .get_mut(&sock)
            // lint: allow(panic-hot-path, socket validated at syscall entry and close cannot interleave)
            .expect("socket present for in-flight syscall")
    }

    /// Issue bytes on a UIO counter created earlier in the same syscall.
    /// The counter cannot have drained yet: `complete` only runs from DMA
    /// completions, which are events the current call has not returned to.
    fn uio_issue(&mut self, counter: outboard_mbuf::UioCounterId, bytes: usize) {
        // lint: allow(panic-hot-path, counter created in this syscall and DMA completions cannot preempt it)
        self.uio.issue(counter, bytes).expect("live uio counter");
    }

    pub(crate) fn cpu(&mut self, us: f64, charge: Charge) {
        if us > 0.0 {
            self.fx.push(Effect::Cpu {
                dur: Dur::from_micros_f64(us),
                charge,
            });
        }
    }

    pub(crate) fn cpu_dur(&mut self, dur: Dur, charge: Charge) {
        if !dur.is_zero() {
            self.fx.push(Effect::Cpu { dur, charge });
        }
    }

    pub(crate) fn wake(&mut self, task: TaskId, sock: SockId, charge: Charge) {
        self.cpu(self.machine.cost_wakeup_us, charge);
        self.fx.push(Effect::Wake { task, sock });
    }

    /// Temporarily detach a CAB interface so device calls can run while
    /// other kernel state is borrowed.
    pub(crate) fn with_cab<R>(
        &mut self,
        iface: IfaceId,
        f: impl FnOnce(&mut Kernel, &mut CabIface) -> R,
    ) -> R {
        let idx = iface.0 as usize;
        let kind = std::mem::replace(&mut self.ifaces[idx].kind, IfaceKind::Loopback);
        let IfaceKind::Cab(mut cab) = kind else {
            // lint: allow(panic-hot-path, caller contract - with_cab is only invoked on ifaces routed as CABs)
            panic!("iface {iface:?} is not a CAB");
        };
        let r = f(self, &mut cab);
        self.ifaces[idx].kind = IfaceKind::Cab(cab);
        r
    }

    // ------------------------------------------------------------------
    // socket syscalls
    // ------------------------------------------------------------------

    fn alloc_sock(&mut self, proto: Proto, owner: Owner) -> SockId {
        let id = SockId(self.next_sock);
        self.next_sock += 1;
        self.sockets
            .insert(id, Socket::new(id, proto, owner, self.cfg.sock_buf));
        id
    }

    /// `socket(2)`: create an unbound user socket.
    pub fn sys_socket(&mut self, proto: Proto) -> SockId {
        self.alloc_sock(proto, Owner::User)
    }

    /// Create an in-kernel socket (share-semantics mbuf interface, §5).
    pub fn kernel_socket(&mut self, proto: Proto) -> SockId {
        self.alloc_sock(proto, Owner::Kernel)
    }

    /// `bind(2)`: claim a local port.
    pub fn sys_bind(&mut self, sock: SockId, port: u16) -> Result<(), StackError> {
        let proto = self.sockets.get(&sock).ok_or(StackError::BadSocket)?.proto;
        if self.ports.contains_key(&(proto, port)) {
            return Err(StackError::AddrInUse);
        }
        self.ports.insert((proto, port), sock);
        let s = self.sock_mut(sock);
        s.local = Some(SockAddr::new(Ipv4Addr::UNSPECIFIED, port));
        Ok(())
    }

    /// Nagle coalescing applies only to the traditional stack: a
    /// single-copy write blocks until its data is transmitted, so holding
    /// sub-MSS tails would deadlock the writer against the delayed-ACK
    /// timer (and §7.2 notes the modified stack "does not coalesce").
    pub(crate) fn effective_nagle(&self) -> bool {
        self.cfg.nagle && self.cfg.mode == StackMode::Unmodified
    }

    /// `listen(2)`: turn a bound TCP socket into a listener.
    pub fn sys_listen(&mut self, sock: SockId) -> Result<(), StackError> {
        let nagle = self.effective_nagle();
        let s = self.sockets.get(&sock).ok_or(StackError::BadSocket)?;
        let buf = s.so_rcv.hiwat;
        if s.proto != Proto::Tcp {
            return Err(StackError::InvalidState("listen on non-TCP socket"));
        }
        let mut tcb = Tcb::new(&self.cfg, 0, nagle);
        tcb.listen(536, buf);
        let s = self.sockets.get_mut(&sock).ok_or(StackError::BadSocket)?;
        s.tcb = Some(tcb);
        Ok(())
    }

    pub(crate) fn alloc_port(&mut self, proto: Proto) -> u16 {
        loop {
            let p = self.next_port;
            self.next_port = self.next_port.wrapping_add(1).max(20_000);
            if !self.ports.contains_key(&(proto, p)) {
                return p;
            }
        }
    }

    pub(crate) fn next_iss(&mut self) -> u32 {
        self.iss = self.iss.wrapping_add(64_000);
        self.iss
    }

    /// Active open. The caller blocks until the `Wake` for this socket.
    pub fn sys_connect(
        &mut self,
        sock: SockId,
        task: TaskId,
        dst: SockAddr,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<Vec<Effect>, StackError> {
        self.cpu(self.machine.cost_syscall_us, Charge::Syscall);
        let iface_id = self.routes.lookup(dst.ip).ok_or(StackError::NoRoute)?;
        let iface = &self.ifaces[iface_id.0 as usize];
        let local_ip = iface.ip;
        let mss = iface.tcp_mss();
        let port = self.alloc_port(Proto::Tcp);
        let local = SockAddr::new(local_ip, port);

        let nagle = self.effective_nagle();
        let iss = self.next_iss();
        {
            let s = self.sockets.get(&sock).ok_or(StackError::BadSocket)?;
            if s.remote.is_some() {
                return Err(StackError::AlreadyConnected);
            }
        }
        let mut tcb = Tcb::new(&self.cfg, iss, nagle);
        {
            let s = self.sockets.get_mut(&sock).ok_or(StackError::BadSocket)?;
            let buf = s.so_rcv.hiwat;
            s.local = Some(local);
            s.remote = Some(dst);
            s.iface_hint = Some(iface_id);
            tcb.connect(mss, buf);
            s.tcb = Some(tcb);
            s.connector = Some(task);
        }
        self.conns.insert((Proto::Tcp, local, dst), sock);
        self.ports.insert((Proto::Tcp, port), sock);
        self.tcp_send(sock, mem, now, false);
        Ok(self.take_effects())
    }

    /// Accept an established connection from a listener's queue; `None`
    /// registers the task for a wake when one arrives.
    pub fn sys_accept(
        &mut self,
        listener: SockId,
        task: TaskId,
    ) -> Result<Option<SockId>, StackError> {
        let s = self
            .sockets
            .get_mut(&listener)
            .ok_or(StackError::BadSocket)?;
        if let Some(child) = s.accept_queue.pop_front() {
            s.acceptor = None;
            Ok(Some(child))
        } else {
            s.acceptor = Some(task);
            Ok(None)
        }
    }

    /// `setsockopt(SO_SNDBUF/SO_RCVBUF)`: resize both socket buffers. Only
    /// valid before a TCP connection is established (the window scale is
    /// negotiated from the buffer size on SYN).
    pub fn sys_setsockbuf(&mut self, sock: SockId, bytes: usize) -> Result<(), StackError> {
        let s = self.sockets.get_mut(&sock).ok_or(StackError::BadSocket)?;
        if s.tcb
            .as_ref()
            .map(|t| t.state.is_synchronized())
            .unwrap_or(false)
        {
            return Err(StackError::InvalidState("buffers fixed after handshake"));
        }
        s.so_snd.hiwat = bytes;
        s.so_rcv.hiwat = bytes;
        Ok(())
    }

    /// `sendto(2)`: one datagram to an explicit destination from an
    /// unconnected UDP socket (binds an ephemeral local port on first use).
    #[allow(clippy::too_many_arguments)]
    pub fn sys_sendto(
        &mut self,
        sock: SockId,
        task: TaskId,
        vaddr: u64,
        len: usize,
        dst: SockAddr,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<(WriteResult, Vec<Effect>), StackError> {
        self.cpu(self.machine.cost_syscall_us, Charge::Syscall);
        {
            let s = self.sockets.get(&sock).ok_or(StackError::BadSocket)?;
            if s.proto != Proto::Udp {
                return Err(StackError::InvalidState("sendto is UDP-only"));
            }
        }
        // Ensure a local binding and a per-destination iface hint.
        let iface_id = self.routes.lookup(dst.ip).ok_or(StackError::NoRoute)?;
        let local_ip = self.ifaces[iface_id.0 as usize].ip;
        let local = match self.sockets[&sock].local {
            Some(l) if l.ip != Ipv4Addr::UNSPECIFIED => l,
            Some(l) => {
                // Bound port, unspecified address: fill in per route.
                let local = SockAddr::new(local_ip, l.port);
                self.sock_mut(sock).local = Some(local);
                local
            }
            None => {
                let port = self.alloc_port(Proto::Udp);
                let local = SockAddr::new(local_ip, port);
                self.sock_mut(sock).local = Some(local);
                self.ports.insert((Proto::Udp, port), sock);
                local
            }
        };
        {
            let s = self.sock_mut(sock);
            s.iface_hint = Some(iface_id);
            s.remote = Some(dst);
        }
        // Reuse the connected-UDP write machinery.
        let r = self.udp_write(sock, task, vaddr, len, mem, now);
        let _ = local;
        r
    }

    /// `recvfrom(2)`: like `sys_read` but also reports the datagram's
    /// source address.
    #[allow(clippy::too_many_arguments)]
    pub fn sys_recvfrom(
        &mut self,
        sock: SockId,
        task: TaskId,
        vaddr: u64,
        len: usize,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<(ReadResult, Option<SockAddr>, Vec<Effect>), StackError> {
        let from = self
            .sockets
            .get(&sock)
            .ok_or(StackError::BadSocket)?
            .dgram_bounds
            .front()
            .map(|(_, f)| *f);
        let (r, fx) = self.sys_read(sock, task, vaddr, len, mem, now)?;
        Ok((r, from, fx))
    }

    /// Bind a UDP socket's default destination.
    pub fn sys_connect_udp(&mut self, sock: SockId, dst: SockAddr) -> Result<(), StackError> {
        let iface_id = self.routes.lookup(dst.ip).ok_or(StackError::NoRoute)?;
        let local_ip = self.ifaces[iface_id.0 as usize].ip;
        let port = self.alloc_port(Proto::Udp);
        let s = self.sockets.get_mut(&sock).ok_or(StackError::BadSocket)?;
        s.local = Some(SockAddr::new(local_ip, port));
        s.remote = Some(dst);
        s.iface_hint = Some(iface_id);
        self.ports.insert((Proto::Udp, port), sock);
        Ok(())
    }

    /// Application close.
    pub fn sys_close(&mut self, sock: SockId, mem: &mut HostMem, now: Time) -> Vec<Effect> {
        self.cpu(self.machine.cost_syscall_us, Charge::Syscall);
        let has_tcb = self
            .sockets
            .get(&sock)
            .map(|s| s.tcb.is_some())
            .unwrap_or(false);
        if has_tcb {
            let closed = {
                let s = self.sock_mut(sock);
                let tcb = s.tcb.as_mut().unwrap();
                tcb.close();
                tcb.state == TcpState::Closed
            };
            if closed {
                self.teardown(sock, now);
            } else {
                self.tcp_send(sock, mem, now, false);
            }
        } else if self.sockets.contains_key(&sock) {
            self.teardown(sock, now);
        }
        self.take_effects()
    }

    /// `write(2)`.
    pub fn sys_write(
        &mut self,
        sock: SockId,
        task: TaskId,
        vaddr: u64,
        len: usize,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<(WriteResult, Vec<Effect>), StackError> {
        self.cpu(self.machine.cost_syscall_us, Charge::Syscall);
        let proto = self.sockets.get(&sock).ok_or(StackError::BadSocket)?.proto;
        if self.spans.on() {
            let flow = self.flow_id_tx(sock);
            let end = now + Dur::from_micros_f64(self.machine.cost_syscall_us);
            self.spans.span(flow, Stage::Syscall, now, end, len as u64);
        }
        match proto {
            Proto::Tcp => self.tcp_write(sock, task, vaddr, len, mem, now),
            Proto::Udp => self.udp_write(sock, task, vaddr, len, mem, now),
        }
    }

    fn tcp_write(
        &mut self,
        sock: SockId,
        task: TaskId,
        vaddr: u64,
        len: usize,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<(WriteResult, Vec<Effect>), StackError> {
        {
            let s = self.sockets.get(&sock).ok_or(StackError::BadSocket)?;
            let tcb = s.tcb.as_ref().ok_or(StackError::NotConnected)?;
            if !tcb.state.can_send() {
                return Err(StackError::NotConnected);
            }
            if s.blocked_write.is_some() {
                return Err(StackError::InvalidState("write already in progress"));
            }
        }
        let uio_path = self.use_uio_path(sock, vaddr, len);
        let region = UioRegion { task, base: vaddr };
        let counter = if uio_path {
            Some(self.uio.create(task, sock, len))
        } else {
            None
        };
        {
            let s = self.sock_mut(sock);
            s.blocked_write = Some(BlockedWrite {
                task,
                region,
                total: len,
                appended: 0,
                counter,
                uio_path,
            });
        }
        self.append_write_chunks(sock, mem, Charge::Syscall, now);
        self.tcp_send(sock, mem, now, false);

        let s = self.sock_mut(sock);
        // The legacy conversion layer may have completed the write
        // synchronously (UIO data copied at the driver boundary, counter
        // drained, blocked_write cleared).
        let Some(bw) = s.blocked_write.as_ref().copied() else {
            return Ok((WriteResult::Done { bytes: len }, self.take_effects()));
        };
        // Single-copy writes complete only when the DMA counter drains,
        // which is never synchronous; traditional writes complete once the
        // data is copied into the socket buffer.
        if !bw.uio_path && bw.appended == bw.total {
            s.blocked_write = None;
            Ok((WriteResult::Done { bytes: len }, self.take_effects()))
        } else {
            Ok((
                WriteResult::Blocked {
                    accepted: bw.appended,
                },
                self.take_effects(),
            ))
        }
    }

    /// §4.4.3 + §4.5: which path does this write take?
    fn use_uio_path(&mut self, sock: SockId, vaddr: u64, len: usize) -> bool {
        if self.cfg.mode != StackMode::SingleCopy {
            return false;
        }
        let s = &self.sockets[&sock];
        let iface_ok = s
            .iface_hint
            .map(|i| self.ifaces[i.0 as usize].single_copy_capable())
            .unwrap_or(false);
        if !iface_ok {
            return false;
        }
        // Word alignment is a hard constraint (§4.5) — unless the
        // align-split extension is on, which realigns with a short copied
        // fragment and DMAs the rest ("might pay off for very large
        // writes"; the paper left it unimplemented).
        if !vaddr.is_multiple_of(4) {
            if self.cfg.align_split && (self.cfg.force_single_copy || len >= self.cfg.uio_threshold)
            {
                self.stats.align_splits += 1;
                return true;
            }
            self.stats.aligned_fallbacks += 1;
            return false;
        }
        self.cfg.force_single_copy || len >= self.cfg.uio_threshold
    }

    /// Move as much as possible of the blocked write into `so_snd`,
    /// mapping/pinning (single-copy) or copying (traditional) as we go —
    /// "one socket buffer worth at a time, as data is handed down" (§4.4.1).
    pub(crate) fn append_write_chunks(
        &mut self,
        sock: SockId,
        mem: &mut HostMem,
        charge: Charge,
        now: Time,
    ) {
        loop {
            let Some(s) = self.sockets.get(&sock) else {
                return;
            };
            let Some(bw) = s.blocked_write else { return };
            let space = s.so_snd.space();
            let remaining = bw.total - bw.appended;
            if space == 0 || remaining == 0 {
                return;
            }
            let mss = s.tcb.as_ref().map(|t| t.mss).unwrap_or(1460);
            let chunk = remaining.min(space).min(mss);
            // Socket-layer per-packet work.
            self.cpu(self.machine.cost_socket_pkt_us, charge);
            let cur_addr = bw.region.base + bw.appended as u64;
            if bw.uio_path && !cur_addr.is_multiple_of(4) {
                // Align-split extension (§4.5): copy the 1-3 bytes up to
                // the next word boundary through a kernel mbuf so the rest
                // of the write can be DMAed.
                assert!(self.cfg.align_split, "unaligned UIO without align_split");
                let fix = (4 - (cur_addr % 4) as usize).min(remaining);
                let cost = self.memsys.copy_cost(fix, fix.max(64));
                self.cpu_dur(cost, charge);
                let (mut buf, ticket) = self.cluster_alloc(fix);
                mem.read_user(bw.region.task, cur_addr, &mut buf)
                    // lint: allow(panic-hot-path, syscall-time access to the caller's live buffer; zero-fill fault tolerance applies only at DMA time)
                    .expect("user write buffer readable");
                let m = Mbuf::kernel(self.cluster_freeze(buf, ticket));
                self.mbuf_stats.count(&m);
                self.sock_mut(sock).so_snd.chain.append(m);
                // The copy satisfies copy semantics for these bytes now.
                if let Some(c) = bw.counter {
                    self.uio_issue(c, fix);
                    if let Some(st) = self.uio.complete(c, fix) {
                        // A sub-word write drained entirely via the copy.
                        let s = self.sock_mut(sock);
                        s.blocked_write = None;
                        self.wake(st.task, st.sock, charge);
                        return;
                    }
                }
                let s = self.sock_mut(sock);
                // lint: allow(panic-hot-path, blocked_write installed at sys_write entry; only completion clears it, which returned above)
                s.blocked_write.as_mut().unwrap().appended += fix;
                // Flush the fragment as its own short packet (the paper:
                // "send a first packet of 16 bits") so every subsequent
                // segment boundary lands word-aligned in user space.
                self.tcp_send(sock, mem, now, false);
                continue;
            }
            if bw.uio_path {
                // Pin + map the chunk's pages in the caller's context.
                let cost =
                    self.vm
                        .prepare(bw.region.task, bw.region.base + bw.appended as u64, chunk);
                self.cpu_dur(cost, charge);
                let desc = UioDesc {
                    region: bw.region,
                    off: bw.appended as u64,
                    len: chunk,
                    counter: bw.counter,
                };
                if let Some(c) = bw.counter {
                    self.uio_issue(c, chunk);
                }
                let m = Mbuf::uio(desc);
                self.mbuf_stats.count(&m);
                self.sock_mut(sock).so_snd.chain.append(m);
            } else {
                // Traditional path: copy through kernel buffers.
                let cost = self.memsys.copy_cost(chunk, bw.total.max(chunk));
                self.cpu_dur(cost, charge);
                let (mut buf, ticket) = self.cluster_alloc(chunk);
                mem.read_user(
                    bw.region.task,
                    bw.region.base + bw.appended as u64,
                    &mut buf,
                )
                // lint: allow(panic-hot-path, syscall-time access to the caller's live buffer; zero-fill fault tolerance applies only at DMA time)
                .expect("user write buffer readable");
                let m = Mbuf::kernel(self.cluster_freeze(buf, ticket));
                self.mbuf_stats.count(&m);
                self.sock_mut(sock).so_snd.chain.append(m);
            }
            let s = self.sock_mut(sock);
            // lint: allow(panic-hot-path, blocked_write installed at sys_write entry; only completion clears it, which returned above)
            s.blocked_write.as_mut().unwrap().appended += chunk;
        }
    }

    /// `read(2)`.
    pub fn sys_read(
        &mut self,
        sock: SockId,
        task: TaskId,
        vaddr: u64,
        len: usize,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<(ReadResult, Vec<Effect>), StackError> {
        self.cpu(self.machine.cost_syscall_us, Charge::Syscall);
        let take = {
            let s = self.sockets.get_mut(&sock).ok_or(StackError::BadSocket)?;
            if s.blocked_read.is_some() {
                return Err(StackError::InvalidState("read already in progress"));
            }
            if s.so_rcv.is_empty() {
                if s.rcv_eof {
                    return Ok((ReadResult::Eof, self.take_effects()));
                }
                s.waiting_reader = Some(WaitingReader { task });
                return Ok((ReadResult::WouldBlock, self.take_effects()));
            }
            match s.proto {
                Proto::Udp => {
                    let so_rcv_len = s.so_rcv.len();
                    match s.dgram_bounds.front_mut() {
                        Some((dlen_mut, _)) => {
                            let take = (*dlen_mut).min(len).min(so_rcv_len);
                            *dlen_mut -= take;
                            if *dlen_mut == 0 {
                                s.dgram_bounds.pop_front();
                            }
                            take
                        }
                        // Defensive: bounds track the chain one-to-one, so a
                        // non-empty buffer always has a front bound; drain
                        // what is queued if the invariant ever slips.
                        None => so_rcv_len.min(len),
                    }
                }
                Proto::Tcp => s.so_rcv.len().min(len),
            }
        };
        let chunk = {
            let s = self.sock_mut(sock);
            s.so_rcv.chain.split_front(take)
        };
        self.spans
            .span_close_bytes(sock.0 as u64, Stage::Sockbuf, now, take as u64);

        let mut dma_bytes = 0usize;
        let mut dst_off = 0usize;
        for m in chunk.iter() {
            let mlen = m.len();
            match m.data() {
                MbufData::Kernel(b) => {
                    let cost = self.memsys.copy_cost(b.len(), take);
                    self.cpu_dur(cost, Charge::Syscall);
                    mem.write_user(task, vaddr + dst_off as u64, b)
                        // lint: allow(panic-hot-path, syscall-time access to the caller's live buffer; zero-fill fault tolerance applies only at DMA time)
                        .expect("user read buffer writable");
                }
                MbufData::Wcab(d) => {
                    let user_dst = vaddr + dst_off as u64;
                    dma_bytes += d.len;
                    let aligned = user_dst.is_multiple_of(4);
                    if aligned {
                        let cost = self.vm.prepare(task, user_dst, d.len);
                        self.cpu_dur(cost, Charge::Syscall);
                    } else {
                        self.stats.aligned_fallbacks += 1;
                    }
                    self.issue_rx_copyout(sock, *d, task, user_dst, aligned, mem, now);
                }
                // lint: allow(panic-hot-path, receive chains hold only kernel or WCAB mbufs; M_UIO exists solely on send queues)
                MbufData::Uio(_) => unreachable!("M_UIO never appears in so_rcv"),
            }
            self.cpu(self.machine.cost_socket_pkt_us, Charge::Syscall);
            dst_off += mlen;
        }
        // Receive-window update: tell the peer about the space we freed.
        self.maybe_window_update(sock, mem, now);

        if dma_bytes > 0 {
            let counter = self.uio.create(task, sock, dma_bytes);
            self.uio_issue(counter, dma_bytes);
            let s = self.sock_mut(sock);
            s.blocked_read = Some(BlockedRead {
                task,
                bytes: take,
                counter,
                pinned_vaddr: vaddr,
                pinned_len: take,
            });
            if self.spans.on() {
                let flow = self.flow_id_rx(sock);
                self.spans
                    .span_open(sock.0 as u64, flow, Stage::SysRecv, now, take as u64);
            }
            Ok((ReadResult::BlockedDma { bytes: take }, self.take_effects()))
        } else {
            if self.spans.on() {
                let flow = self.flow_id_rx(sock);
                self.spans.span(flow, Stage::SysRecv, now, now, take as u64);
            }
            Ok((ReadResult::Done { bytes: take }, self.take_effects()))
        }
    }

    /// Issue the copy-out SDMA for one `M_WCAB` descriptor of a read.
    #[allow(clippy::too_many_arguments)]
    fn issue_rx_copyout(
        &mut self,
        sock: SockId,
        d: WcabDesc,
        task: TaskId,
        user_dst: u64,
        aligned: bool,
        mem: &mut HostMem,
        now: Time,
    ) {
        self.cpu(self.machine.cost_driver_pkt_us, Charge::Syscall);
        let iface_id = IfaceId(d.cab);
        let packet = PacketId(d.packet);
        self.with_cab(iface_id, |k, cab| {
            // Free the outboard buffer once every payload byte is out.
            let free = match cab.rx_remaining.get_mut(&packet) {
                Some(rem) => {
                    *rem = rem.saturating_sub(d.len);
                    *rem == 0
                }
                // Untracked (e.g. a watchdog reset cleared the table):
                // never free on this path.
                None => false,
            };
            if free {
                cab.rx_remaining.remove(&packet);
            }
            let dst = if aligned {
                SdmaDst::User {
                    task,
                    vaddr: user_dst,
                }
            } else {
                // §4.5: unaligned reads fall back through kernel buffers;
                // the completion handler finishes with a CPU copy.
                SdmaDst::Kernel
            };
            let token = cab.issue(SdmaPurpose::RxToUser {
                sock,
                bytes: d.len,
                copy_dst: (!aligned).then_some((task, user_dst)),
            });
            let req = SdmaRx {
                packet,
                src_off: d.off,
                len: d.len,
                dst,
                free_packet: free,
                interrupt_on_complete: true,
                token,
            };
            Kernel::sdma_rx_resilient(k, cab, iface_id, req, now, mem);
        });
    }

    /// Advertise newly-freed receive space when it has grown enough
    /// (BSD: by two segments or half the buffer).
    pub(crate) fn maybe_window_update(&mut self, sock: SockId, mem: &mut HostMem, now: Time) {
        let needs = {
            let Some(s) = self.sockets.get(&sock) else {
                return;
            };
            let Some(tcb) = s.tcb.as_ref() else { return };
            if !tcb.state.is_synchronized() {
                return;
            }
            let space = s.so_rcv.space();
            let adv = outboard_wire::tcp::seq::diff(tcb.rcv_adv, tcb.rcv_nxt) as usize;
            space >= adv + 2 * tcb.mss || space >= adv + self.cfg.sock_buf / 2
        };
        if needs {
            self.tcp_send(sock, mem, now, true);
        }
    }

    // ------------------------------------------------------------------
    // in-kernel application interface (§5)
    // ------------------------------------------------------------------

    /// Share-semantics send over UDP: the chain's mbufs are handed to the
    /// stack as-is.
    pub fn kernel_sendto(
        &mut self,
        sock: SockId,
        chain: Chain,
        dst: SockAddr,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<Vec<Effect>, StackError> {
        {
            let s = self.sockets.get(&sock).ok_or(StackError::BadSocket)?;
            assert_eq!(s.owner, Owner::Kernel, "kernel_sendto on a user socket");
        }
        let local = match self.sockets[&sock].local {
            Some(l) => l,
            None => {
                let port = self.alloc_port(Proto::Udp);
                let iface_id = self.routes.lookup(dst.ip).ok_or(StackError::NoRoute)?;
                let local = SockAddr::new(self.ifaces[iface_id.0 as usize].ip, port);
                let s = self.sock_mut(sock);
                s.local = Some(local);
                self.ports.insert((Proto::Udp, port), sock);
                local
            }
        };
        self.udp_output(sock, local, dst, chain, mem, now);
        Ok(self.take_effects())
    }

    /// Share-semantics stream send for an in-kernel TCP socket: the chain's
    /// mbufs are appended to the send queue directly — "the communication
    /// API of in-kernel applications often has share semantics, with the
    /// mbufs being the shared buffers" (§5). Returns the bytes accepted
    /// (bounded by socket-buffer space; kernel apps poll/retry).
    pub fn kernel_send(
        &mut self,
        sock: SockId,
        mut chain: Chain,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<usize, StackError> {
        let accepted = {
            let s = self.sockets.get_mut(&sock).ok_or(StackError::BadSocket)?;
            assert_eq!(s.owner, Owner::Kernel, "kernel_send on a user socket");
            if s.proto != Proto::Tcp {
                return Err(StackError::InvalidState("kernel_send is TCP-only"));
            }
            let tcb = s.tcb.as_ref().ok_or(StackError::NotConnected)?;
            if !tcb.state.can_send() {
                return Err(StackError::NotConnected);
            }
            let space = s.so_snd.space();
            if chain.len() > space {
                chain.truncate(space);
            }
            let n = chain.len();
            s.so_snd.chain.concat(chain);
            n
        };
        self.cpu(self.machine.cost_socket_pkt_us, Charge::Syscall);
        self.tcp_send(sock, mem, now, false);
        Ok(accepted)
    }

    /// Close an in-kernel socket's connection (FIN).
    pub fn kernel_close(&mut self, sock: SockId, mem: &mut HostMem, now: Time) -> Vec<Effect> {
        self.sys_close(sock, mem, now)
    }

    /// Create a listening in-kernel TCP socket on `port`; established
    /// children appear on its accept queue and are themselves
    /// kernel-owned (their delivery runs through the conversion queue).
    pub fn kernel_listen(&mut self, port: u16) -> Result<SockId, StackError> {
        let s = self.kernel_socket(Proto::Tcp);
        self.sys_bind(s, port)?;
        self.sys_listen(s)?;
        Ok(s)
    }

    /// Pop an established child from an in-kernel listener.
    pub fn kernel_accept(&mut self, listener: SockId) -> Option<SockId> {
        let s = self.sockets.get_mut(&listener)?;
        s.accept_queue.pop_front()
    }

    /// After an in-kernel consumer drains its queue, advertise the freed
    /// receive window (the socket layer does this implicitly for user
    /// reads; kernel consumers call it explicitly).
    pub fn kernel_window_update(
        &mut self,
        sock: SockId,
        mem: &mut HostMem,
        now: Time,
    ) -> Vec<Effect> {
        self.maybe_window_update(sock, mem, now);
        self.take_effects()
    }

    /// Register an in-kernel socket as the raw-IP handler for `proto`.
    /// Matching datagrams are queued (with `M_WCAB` conversion) on it.
    pub fn kernel_register_raw(&mut self, proto: u8, sock: SockId) -> Result<(), StackError> {
        let s = self.sockets.get(&sock).ok_or(StackError::BadSocket)?;
        assert_eq!(s.owner, Owner::Kernel, "raw handlers are kernel sockets");
        self.raw_protos.insert(proto, sock);
        Ok(())
    }

    /// Send a raw IP datagram from an in-kernel application: the chain is
    /// the entire transport payload for `proto`.
    pub fn kernel_send_raw(
        &mut self,
        proto: u8,
        dst: Ipv4Addr,
        chain: Chain,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<Vec<Effect>, StackError> {
        let iface_id = self.routes.lookup(dst).ok_or(StackError::NoRoute)?;
        let src = self.ifaces[iface_id.0 as usize].ip;
        self.cpu(self.machine.cost_ip_us, Charge::Syscall);
        self.ip_output(src, dst, proto, chain, iface_id, TxMeta::plain(), mem, now);
        Ok(self.take_effects())
    }

    /// Share-semantics receive: ready (fully converted) chains in arrival
    /// order (§5's ordering requirement).
    pub fn kernel_recv(&mut self, sock: SockId) -> Option<(Chain, SockAddr)> {
        let s = self.sockets.get_mut(&sock)?;
        if s.kq.front().map(|e| e.converting == 0).unwrap_or(false) {
            let e = s.kq.pop_front().unwrap();
            Some((e.chain, e.from))
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // UDP write
    // ------------------------------------------------------------------

    fn udp_write(
        &mut self,
        sock: SockId,
        task: TaskId,
        vaddr: u64,
        len: usize,
        mem: &mut HostMem,
        now: Time,
    ) -> Result<(WriteResult, Vec<Effect>), StackError> {
        let (local, remote) = {
            let s = self.sockets.get(&sock).ok_or(StackError::BadSocket)?;
            match (s.local, s.remote) {
                (Some(l), Some(r)) => (l, r),
                _ => return Err(StackError::NotConnected),
            }
        };
        if len + UDP_HEADER_LEN + IPV4_HEADER_LEN > 65_535 {
            return Err(StackError::MessageTooBig);
        }
        let fits_mtu = {
            let mtu = self.sockets[&sock]
                .iface_hint
                .map(|i| self.ifaces[i.0 as usize].mtu)
                .unwrap_or(1500);
            len + UDP_HEADER_LEN + IPV4_HEADER_LEN <= mtu
        };
        // Fragmented datagrams take the traditional path: the CAB inserts a
        // checksum per *packet*, but the UDP checksum spans the datagram.
        let uio_path = fits_mtu && self.use_uio_path(sock, vaddr, len);
        let region = UioRegion { task, base: vaddr };
        let mut chain = Chain::new();
        let counter = if uio_path {
            let counter = self.uio.create(task, sock, len);
            self.uio_issue(counter, len);
            let cost = self.vm.prepare(task, vaddr, len);
            self.cpu_dur(cost, Charge::Syscall);
            chain.append(Mbuf::uio(UioDesc {
                region,
                off: 0,
                len,
                counter: Some(counter),
            }));
            Some(counter)
        } else {
            let cost = self.memsys.copy_cost(len, len.max(4096));
            self.cpu_dur(cost, Charge::Syscall);
            let (mut buf, ticket) = self.cluster_alloc(len);
            // lint: allow(panic-hot-path, syscall-time access to the caller's live buffer; zero-fill fault tolerance applies only at DMA time)
            mem.read_user(task, vaddr, &mut buf).expect("readable");
            chain.append(Mbuf::kernel(self.cluster_freeze(buf, ticket)));
            None
        };
        self.cpu(self.machine.cost_socket_pkt_us, Charge::Syscall);
        self.udp_output(sock, local, remote, chain, mem, now);
        // The legacy conversion layer may have drained the counter
        // synchronously (route fell back to a conventional device).
        let still_live = counter.map(|c| self.uio.get(c).is_some()).unwrap_or(false);
        if let (Some(counter), true) = (counter, still_live) {
            let s = self.sock_mut(sock);
            s.blocked_write = Some(BlockedWrite {
                task,
                region,
                total: len,
                appended: len,
                counter: Some(counter),
                uio_path: true,
            });
            Ok((WriteResult::Blocked { accepted: len }, self.take_effects()))
        } else {
            Ok((WriteResult::Done { bytes: len }, self.take_effects()))
        }
    }

    /// Tear a socket down: free outboard buffers, cancel counters, unbind.
    pub(crate) fn teardown(&mut self, sock: SockId, now: Time) {
        let Some(s) = self.sockets.remove(&sock) else {
            return;
        };
        // Any sockbuf-dwell or blocked-read spans die with the socket.
        if self.spans.on() {
            while self.spans.span_drop(sock.0 as u64, Stage::Sockbuf, now) {}
            while self.spans.span_drop(sock.0 as u64, Stage::SysRecv, now) {}
        }
        // Preserve the connection's netstat counters past its lifetime.
        if let Some(tcb) = &s.tcb {
            self.tcp_closed.absorb(tcb);
        }
        if let Some(local) = s.local {
            self.ports.remove(&(s.proto, local.port));
            if let Some(remote) = s.remote {
                self.conns.remove(&(s.proto, local, remote));
            }
        }
        // Free outboard buffers still referenced by either buffer.
        for chain in [&s.so_snd.chain, &s.so_rcv.chain] {
            let descs: Vec<WcabDesc> = chain
                .iter()
                .filter_map(|m| match m.data() {
                    MbufData::Wcab(d) => Some(*d),
                    _ => None,
                })
                .collect();
            for d in descs {
                let iface_id = IfaceId(d.cab);
                let packet = PacketId(d.packet);
                self.with_cab(iface_id, |_k, cab| {
                    cab.tx_remaining.remove(&packet);
                    cab.tx_hdr_len.remove(&packet);
                    cab.rx_remaining.remove(&packet);
                    cab.cab.free_packet(packet, now);
                });
            }
        }
        if let Some(bw) = s.blocked_write {
            if let Some(c) = bw.counter {
                self.uio.cancel(c);
            }
        }
        if let Some(br) = s.blocked_read {
            self.uio.cancel(br.counter);
        }
    }

    // ------------------------------------------------------------------
    // observability
    // ------------------------------------------------------------------

    /// Netstat-style TCP counters: closed connections (folded on teardown)
    /// plus every live control block.
    pub fn tcp_stats(&self) -> TcpStats {
        let mut agg = self.tcp_closed;
        for s in self.sockets.values() {
            if let Some(tcb) = &s.tcb {
                agg.absorb(tcb);
            }
        }
        agg
    }

    // ------------------------------------------------------------------
    // causal-span helpers
    //
    // Hot-path files (output/input/robust/driver) never call `span_open`
    // directly — cross-function opens route through these helpers so the
    // lint `span-balance` rule can check open/close pairing per function.
    // ------------------------------------------------------------------

    /// Data-direction flow id for bytes this socket is *sending*
    /// (`local → remote`, sequence = next send sequence number).
    pub(crate) fn flow_id_tx(&self, sock: SockId) -> FlowId {
        let Some(s) = self.sockets.get(&sock) else {
            return FlowId::NONE;
        };
        let (Some(l), Some(r)) = (s.local, s.remote) else {
            return FlowId::NONE;
        };
        let group = FlowId::group_of(l.ip.octets(), l.port, r.ip.octets(), r.port);
        let seq = s.tcb.as_ref().map(|t| t.snd_nxt).unwrap_or(0);
        FlowId::from_parts(group, seq)
    }

    /// Data-direction flow id for bytes this socket is *receiving*
    /// (`remote → local`; group only — receive spans cover byte ranges,
    /// not individual segments).
    pub(crate) fn flow_id_rx(&self, sock: SockId) -> FlowId {
        let Some(s) = self.sockets.get(&sock) else {
            return FlowId::NONE;
        };
        let (Some(l), Some(r)) = (s.local, s.remote) else {
            return FlowId::NONE;
        };
        FlowId::group_only(FlowId::group_of(
            r.ip.octets(),
            r.port,
            l.ip.octets(),
            l.port,
        ))
    }

    /// Open a sockbuf-dwell span: `bytes` of in-order data entered
    /// `so_rcv` and now wait for the application to read them.
    pub(crate) fn span_sockbuf_enqueue(&mut self, sock: SockId, bytes: u64, now: Time) {
        if self.spans.on() {
            let flow = self.flow_id_rx(sock);
            self.spans
                .span_open(sock.0 as u64, flow, Stage::Sockbuf, now, bytes);
        }
    }

    /// Close the blocked-read span opened by `sys_read` once its copy-out
    /// DMA drains and the reader is woken.
    pub(crate) fn span_recv_complete(&mut self, sock: SockId, now: Time) {
        if self.spans.on() {
            self.spans.span_close(sock.0 as u64, Stage::SysRecv, now);
        }
    }

    /// Record an ACK-arrival causality point on the *send* direction.
    pub(crate) fn span_ack(&mut self, sock: SockId, acked: u64, now: Time) {
        if self.spans.on() {
            let flow = self.flow_id_tx(sock);
            self.spans.span(flow, Stage::Ack, now, now, acked);
        }
    }

    /// Open a fault-detour span (retry dwell / degraded mode) keyed by
    /// interface.
    pub(crate) fn span_detour_open(&mut self, iface: IfaceId, stage: Stage, now: Time) {
        self.spans
            .span_open(iface.0 as u64, FlowId::NONE, stage, now, 0);
    }

    /// Close every open detour span of this stage for the interface.
    pub(crate) fn span_detour_close_all(&mut self, iface: IfaceId, stage: Stage, now: Time) {
        while self.spans.span_close(iface.0 as u64, stage, now) {}
    }

    /// Drop (abandon) every open detour span of this stage for the
    /// interface — the work it covered was given up, not completed.
    pub(crate) fn span_detour_drop_all(&mut self, iface: IfaceId, stage: Stage, now: Time) {
        while self.spans.span_drop(iface.0 as u64, stage, now) {}
    }

    /// Record a complete (instantaneous or pre-timed) detour span.
    pub(crate) fn span_detour(&mut self, stage: Stage, start: Time, end: Time, bytes: u64) {
        self.spans.span(FlowId::NONE, stage, start, end, bytes);
    }

    /// Publish this kernel's metrics into a registry scope: IP/TCP/UDP
    /// protocol counters, checksum and mbuf-path accounting, VM activity,
    /// and each CAB interface's engine/netmem state.
    pub fn publish_metrics(&self, s: &mut outboard_sim::obs::Scope<'_>) {
        let st = &self.stats;
        s.counter("ip.tx_packets", st.tx_packets);
        s.counter("ip.rx_packets", st.rx_packets);
        s.counter("ip.tx_bytes", st.tx_bytes);
        s.counter("ip.rx_bytes", st.rx_bytes);
        s.counter("ip.errors", st.ip_errors);
        s.counter("ip.frags_sent", st.frags_sent);
        s.counter("ip.frags_reassembled", st.frags_reassembled);
        s.counter("ip.no_socket_drops", st.no_socket_drops);
        s.counter("ip.tx_nomem_drops", st.tx_nomem_drops);
        s.counter("icmp.echo_replies", st.icmp_echo_replies);

        let t = self.tcp_stats();
        s.counter("tcp.segs_out", st.tcp_segs_out);
        s.counter("tcp.segs_in", t.segs_in);
        s.counter("tcp.retransmit_segs", st.tcp_retransmit_segs);
        s.counter("tcp.retransmits", t.retransmits);
        s.counter("tcp.fast_retransmits", t.fast_retransmits);
        s.counter("tcp.rto_events", t.rto_events);
        s.counter("tcp.dup_acks_rcvd", t.dup_acks_rcvd);
        s.counter("tcp.delayed_acks", t.delayed_acks);
        s.counter("tcp.window_stalls", t.window_stalls);
        s.counter("tcp.bytes_sent", t.bytes_sent);
        s.counter("tcp.bytes_retx", t.bytes_retx);
        s.counter("tcp.retransmit_header_only", st.retransmit_header_only);
        s.counter("tcp.retransmit_slow_path", st.retransmit_slow_path);
        s.counter("tcp.rst_sent", st.rst_sent);
        s.counter("udp.datagrams_out", st.udp_datagrams_out);
        s.counter("udp.datagrams_in", st.udp_datagrams_in);

        s.counter("csum.hw", st.hw_checksums);
        s.counter("csum.sw", st.sw_checksums);
        s.counter("csum.errors", st.csum_errors);
        s.counter("csum.aligned_fallbacks", st.aligned_fallbacks);
        s.counter("csum.align_splits", st.align_splits);

        s.counter("mbuf.uio_to_wcab", st.uio_to_wcab);
        s.counter("mbuf.uio_to_regular", st.uio_to_regular);
        s.counter("mbuf.wcab_to_regular", st.wcab_to_regular);
        s.counter("mbuf.small_allocs", self.mbuf_stats.small_allocs);
        s.counter("mbuf.cluster_allocs", self.mbuf_stats.cluster_allocs);
        s.counter("mbuf.uio_allocs", self.mbuf_stats.uio_allocs);
        s.counter("mbuf.wcab_allocs", self.mbuf_stats.wcab_allocs);
        s.counter("mbuf.user_mem_faults", st.user_mem_faults);

        s.counter("trace.events_evicted", self.trace.dropped());

        // Span accounting is published only while tracing is enabled so
        // untraced runs keep byte-identical stats (parallel-sweep gate).
        if self.spans.on() {
            let mut sp = s.sub("spans");
            sp.counter("opened", self.spans.opened());
            sp.counter("closed", self.spans.closed());
            sp.counter("dropped", self.spans.dropped());
            sp.counter("evicted", self.spans.evicted());
            sp.counter("open", self.spans.open_count() as u64);
        }

        self.vm.publish_metrics(&mut s.sub("vm"));
        for iface in &self.ifaces {
            if let Some(ci) = iface.cab_ref() {
                let mut sc = s.sub(&format!("cab{}", iface.id.0));
                ci.cab.publish_metrics(&mut sc);
                ci.publish_driver_metrics(&mut sc);
            }
        }
    }
}

/// Compute the data-direction flow id of a frame from its wire-visible
/// headers; `ip_off` is the length of the link framing in front of the IP
/// header (e.g. [`outboard_wire::hippi::HIPPI_HEADER_LEN`]).
///
/// Only called when span tracing is on. Ports (and the TCP sequence
/// number) are read straight from the transport header so the result
/// matches what the sending socket stamped, even when only a DMA prefix
/// of the datagram is available. Returns [`FlowId::NONE`] when the
/// headers don't parse.
pub fn frame_flow(frame: &[u8], ip_off: usize) -> FlowId {
    let Some(ip_bytes) = frame.get(ip_off..) else {
        return FlowId::NONE;
    };
    let Ok(ip) = outboard_wire::Ipv4Header::parse_with_limit(ip_bytes, u16::MAX as usize) else {
        return FlowId::NONE;
    };
    let Some(t) = ip_bytes.get(ip.header_len as usize..) else {
        return FlowId::NONE;
    };
    let (sport, dport, seq) = match ip.protocol {
        outboard_wire::proto::TCP if t.len() >= 8 => (
            u16::from_be_bytes([t[0], t[1]]),
            u16::from_be_bytes([t[2], t[3]]),
            u32::from_be_bytes([t[4], t[5], t[6], t[7]]),
        ),
        outboard_wire::proto::UDP if t.len() >= 4 => (
            u16::from_be_bytes([t[0], t[1]]),
            u16::from_be_bytes([t[2], t[3]]),
            0,
        ),
        _ => return FlowId::NONE,
    };
    let group = FlowId::group_of(ip.src.octets(), sport, ip.dst.octets(), dport);
    FlowId::from_parts(group, seq)
}
