//! Kernel transmit paths: TCP segment emission, the shared transport tail
//! (checksum strategy selection), IP output with fragmentation, and the
//! three drivers' output routines.

use super::{Kernel, TxMeta};
use crate::driver::{IfaceKind, PendingTx, SdmaPurpose};
use crate::ip;
use crate::socket::Owner;
use crate::tcp::SegmentPlan;
use crate::types::{Effect, IfaceId, SockAddr, SockId, TimerKind};
use bytes::Bytes;
use outboard_cab::{CabError, ChecksumSpec, PacketId, SdmaTx, SgEntry};
use outboard_host::{Charge, HostMem};
use outboard_mbuf::{Chain, CsumPlan, MbufData};
use outboard_sim::span::{FlowId, Stage};
use outboard_sim::Time;
use outboard_wire::checksum::{pseudo_header_sum, Accumulator};
use outboard_wire::ether::{EtherHeader, ETHER_HEADER_LEN};
use outboard_wire::hippi::{HippiHeader, HIPPI_HEADER_LEN};
use outboard_wire::ipv4::{Ipv4Header, IPV4_HEADER_LEN};
use outboard_wire::tcp::{TcpHeader, TCP_CSUM_OFFSET};
use outboard_wire::udp::UdpHeader;
use outboard_wire::{proto, TcpFlags};
use std::net::Ipv4Addr;

impl Kernel {
    /// Run tcp_output for a socket: materialize every segment the TCB wants
    /// to send and push it down through IP to the driver.
    pub(crate) fn tcp_send(&mut self, sock: SockId, mem: &mut HostMem, now: Time, force_ack: bool) {
        let (local, remote, plans) = {
            let Some(s) = self.sockets.get_mut(&sock) else {
                return;
            };
            let (local, remote) = match (s.local, s.remote) {
                (Some(l), Some(r)) => (l, r),
                _ => return,
            };
            let Some(tcb) = s.tcb.as_mut() else { return };
            let snd_q = s.so_snd.chain.len();
            let rcv_space = s.so_rcv.space();
            (local, remote, tcb.output(snd_q, rcv_space, force_ack, now))
        };
        for plan in plans {
            self.emit_tcp_segment(sock, local, remote, &plan, mem, now);
        }
        self.arm_tcp_timers(sock, now);
    }

    fn emit_tcp_segment(
        &mut self,
        sock: SockId,
        local: SockAddr,
        remote: SockAddr,
        plan: &SegmentPlan,
        mem: &mut HostMem,
        now: Time,
    ) {
        self.cpu(self.machine.cost_tcp_output_us, Charge::Syscall);
        let data = {
            let Some(s) = self.sockets.get(&sock) else {
                return;
            };
            s.so_snd.chain.copy_range(plan.data_off, plan.data_len)
        };
        let mut hdr = TcpHeader::new(local.port, remote.port, plan.seq, plan.ack, plan.flags);
        hdr.window = plan.window;
        hdr.mss = plan.mss_opt;
        hdr.window_scale = plan.ws_opt;
        let flow = if self.spans.on() {
            let group = FlowId::group_of(
                local.ip.octets(),
                local.port,
                remote.ip.octets(),
                remote.port,
            );
            FlowId::from_parts(group, plan.seq)
        } else {
            FlowId::NONE
        };
        let meta = TxMeta {
            sock: Some(sock),
            seq_lo: plan.seq,
            retransmit: plan.retransmit,
            // Keep single-copy TCP data outboard until acknowledged (the
            // M_WCAB conversion frees it on ACK). Control segments and
            // traditional-path data (which retransmits from kernel mbufs)
            // free right after MDMA.
            free_after_mdma: plan.data_len == 0 || !data.has_uio(),
            flow,
        };
        self.stats.tcp_segs_out += 1;
        if self.spans.on() {
            let end = now + outboard_sim::Dur::from_micros_f64(self.machine.cost_tcp_output_us);
            self.spans
                .span(flow, Stage::KernelOutput, now, end, plan.data_len as u64);
        }
        if plan.retransmit {
            self.stats.tcp_retransmit_segs += 1;
            self.trace.record(
                now,
                "tcp",
                "retransmit",
                format!("seq {} len {}", plan.seq, plan.data_len),
            );
            if self.spans.on() {
                self.spans
                    .span(flow, Stage::Retransmit, now, now, plan.data_len as u64);
            }
        }
        self.transport_output(
            local.ip,
            remote.ip,
            proto::TCP,
            hdr.build(),
            TCP_CSUM_OFFSET,
            data,
            meta,
            mem,
            now,
        );
    }

    /// Emit a bare RST (segment to a closed/refusing endpoint).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_rst(
        &mut self,
        local: SockAddr,
        remote: SockAddr,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        mem: &mut HostMem,
        now: Time,
    ) {
        // Count only RSTs that will actually reach a driver; an unroutable
        // one keeps the checksum-conservation invariant honest.
        if self.routes.lookup(remote.ip).is_none() {
            self.stats.ip_errors += 1;
            return;
        }
        self.stats.rst_sent += 1;
        let mut hdr = TcpHeader::new(local.port, remote.port, seq, ack, flags);
        hdr.window = 0;
        self.transport_output(
            local.ip,
            remote.ip,
            proto::TCP,
            hdr.build(),
            TCP_CSUM_OFFSET,
            Chain::new(),
            TxMeta::plain(),
            mem,
            now,
        );
    }

    /// (Re)arm TCP timers after input/output activity.
    pub(crate) fn arm_tcp_timers(&mut self, sock: SockId, _now: Time) {
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        let Some(tcb) = s.tcb.as_mut() else { return };
        if tcb.wants_rexmt_timer() {
            if !s.rexmt_armed {
                s.rexmt_armed = true;
                s.rexmt_gen += 1;
                let kind = TimerKind::TcpRexmt {
                    sock,
                    generation: s.rexmt_gen,
                };
                let after = tcb.rto;
                self.fx.push(Effect::Timer { after, kind });
            }
        } else {
            // Everything acknowledged: invalidate the pending timer.
            s.rexmt_armed = false;
            s.rexmt_gen += 1;
        }
        let Some(s) = self.sockets.get_mut(&sock) else {
            return;
        };
        let Some(tcb) = s.tcb.as_mut() else { return };
        if tcb.delack_pending {
            s.delack_gen += 1;
            let kind = TimerKind::TcpDelack {
                sock,
                generation: s.delack_gen,
            };
            let after = self.cfg.delack_timeout;
            self.fx.push(Effect::Timer { after, kind });
        }
    }

    /// Shared TCP/UDP transmit tail: checksum strategy, IP, driver.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transport_output(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ip_proto: u8,
        mut thdr: Vec<u8>,
        csum_offset: usize,
        data: Chain,
        meta: TxMeta,
        mem: &mut HostMem,
        now: Time,
    ) {
        // Route per packet — §4.1: interface selection is a network-layer
        // decision and may change during a connection's lifetime.
        let Some(iface_id) = self.routes.lookup(dst) else {
            self.stats.ip_errors += 1;
            return;
        };
        let iface = &self.ifaces[iface_id.0 as usize];
        let is_loop = matches!(iface.kind, IfaceKind::Loopback);
        // The unmodified stack never uses the outboard checksum engine —
        // that is exactly the modification under test.
        let single_copy = self.cfg.mode == crate::types::StackMode::SingleCopy
            && iface.single_copy_capable()
            && thdr.len() + data.len() + IPV4_HEADER_LEN <= iface.mtu;
        // A legacy (or size-fallback) path cannot leave M_UIO descriptors
        // in flight: convert at the driver boundary (§5), crediting the
        // writer's counter — the copy has merely been delayed.
        let data = if !single_copy && data.has_uio() {
            let m = meta;
            self.legacy_convert_uio(&m, data, mem)
        } else {
            data
        };
        let transport_len = thdr.len() + data.len();
        // Account payload pushed through the traditional path because the
        // interface is degraded (it would have gone single-copy otherwise).
        if !single_copy && !data.is_empty() && self.cfg.mode == crate::types::StackMode::SingleCopy
        {
            if let IfaceKind::Cab(c) = &mut self.ifaces[iface_id.0 as usize].kind {
                if c.health.degraded {
                    c.health.stats.fallback_bytes += data.len() as u64;
                }
            }
        }

        let csum_plan = if single_copy {
            // Outboard checksumming (§4.3): seed the checksum field with
            // the host-owned partial sum; the CAB covers the data.
            thdr[csum_offset] = 0;
            thdr[csum_offset + 1] = 0;
            let seed = crate::udp::transport_seed(src, dst, ip_proto, transport_len, &thdr);
            thdr[csum_offset..csum_offset + 2].copy_from_slice(&seed.to_be_bytes());
            self.stats.hw_checksums += 1;
            Some(CsumPlan {
                csum_offset,
                skip_words: thdr.len() / 4,
                seed,
            })
        } else if is_loop {
            // Loopback never corrupts; BSD skips the checksum here too.
            None
        } else {
            // Traditional path: the software checksum read (`Read_C`). The
            // cache working set is the data the sender cycles through — the
            // send queue (§7.3 measures the read over the window size).
            thdr[csum_offset] = 0;
            thdr[csum_offset + 1] = 0;
            let working_set = meta
                .sock
                .and_then(|s| self.sockets.get(&s))
                .map(|s| s.so_snd.chain.len())
                .unwrap_or(0)
                .max(transport_len);
            let read_cost = self.memsys.read_cost(transport_len, working_set);
            self.cpu_dur(read_cost, Charge::Syscall);
            let pseudo =
                pseudo_header_sum(src.octets(), dst.octets(), ip_proto, transport_len as u16);
            let mut acc = Accumulator::from_partial(pseudo);
            acc.add_bytes(&thdr);
            let data_sum = self.software_chain_sum(&data, mem);
            acc.add_partial(data_sum);
            let mut c = !acc.partial();
            if ip_proto == proto::UDP {
                c = UdpHeader::encode_checksum(c);
            }
            thdr[csum_offset..csum_offset + 2].copy_from_slice(&c.to_be_bytes());
            self.stats.sw_checksums += 1;
            None
        };

        // Assemble the transport packet chain: header + data.
        let mut packet = Chain::new();
        packet.concat(data);
        packet.prepend(Bytes::from(thdr));
        packet.hdr.csum_plan = csum_plan;
        self.ip_output(src, dst, ip_proto, packet, iface_id, meta, mem, now);
    }

    /// §5's conversion layer for legacy devices, applied at the source: the
    /// user data is copied into kernel mbufs now ("a copy has merely been
    /// delayed"), the send queue's `M_UIO` range becomes regular data, and
    /// the write's UIO counter is credited — exactly what the `M_WCAB`
    /// conversion does on the CAB path, with a memory copy in place of DMA.
    fn legacy_convert_uio(&mut self, meta: &TxMeta, data: Chain, mem: &HostMem) -> Chain {
        use outboard_host::UserMemory;
        let uio_bytes: usize = data
            .iter()
            .filter_map(|m| match m.data() {
                MbufData::Uio(d) => Some(d.len),
                _ => None,
            })
            .sum();
        if uio_bytes == 0 {
            return data;
        }
        self.stats.uio_to_regular += 1;
        let cost = self.memsys.copy_cost(uio_bytes, uio_bytes.max(4096));
        self.cpu_dur(cost, Charge::Syscall);

        // Materialize the outgoing chain.
        let mut out = Chain::new();
        out.hdr = data.hdr.clone();
        let mut credited: Vec<(outboard_mbuf::UioCounterId, usize)> = Vec::new();
        for m in data.iter() {
            match m.data() {
                MbufData::Uio(d) => {
                    let (mut buf, ticket) = self.cluster_alloc(d.len);
                    if mem.read_user(d.region.task, d.vaddr(), &mut buf).is_err() {
                        self.stats.user_mem_faults += 1;
                    }
                    if let Some(c) = d.counter {
                        credited.push((c, d.len));
                    }
                    out.append(outboard_mbuf::Mbuf::kernel(
                        self.cluster_freeze(buf, ticket),
                    ));
                }
                _ => out.append(m.clone()),
            }
        }

        // TCP retains data in so_snd: rewrite the queued range so later
        // retransmissions (and the counter bookkeeping) see regular mbufs.
        // Counters are credited through the queue rewrite to avoid double
        // counting; datagram sockets (nothing retained) credit directly.
        let mut rewrote_queue = false;
        if let Some(sock) = meta.sock {
            if let Some(s) = self.sockets.get_mut(&sock) {
                if let Some(tcb) = s.tcb.as_ref() {
                    use outboard_wire::tcp::seq;
                    let base = tcb.snd_una;
                    let data_len = out.len();
                    let (skip_front, off_in_q) = if seq::lt(meta.seq_lo, base) {
                        (seq::diff(base, meta.seq_lo) as usize, 0usize)
                    } else {
                        (0usize, seq::diff(meta.seq_lo, base) as usize)
                    };
                    if skip_front < data_len {
                        let len = (data_len - skip_front)
                            .min(s.so_snd.chain.len().saturating_sub(off_in_q));
                        if len > 0 {
                            let flat: Vec<u8> = {
                                let piece = out.copy_range(skip_front, len);
                                self.chain_bytes(&piece, mem)
                            };
                            if let Some(sref) = self.sockets.get_mut(&sock) {
                                rewrote_queue = true;
                                let chain = std::mem::take(&mut sref.so_snd.chain);
                                let (new_chain, removed) = crate::kernel::replace_range_take(
                                    chain,
                                    off_in_q,
                                    len,
                                    outboard_mbuf::Mbuf::kernel(Bytes::from(flat)),
                                );
                                sref.so_snd.chain = new_chain;
                                let mut wakes = Vec::new();
                                for m in removed.iter() {
                                    if let MbufData::Uio(d) = m.data() {
                                        if let Some(c) = d.counter {
                                            if let Some(st) = self.uio.complete(c, d.len) {
                                                wakes.push((st.task, st.sock));
                                            }
                                        }
                                    }
                                }
                                for (task, wsock) in wakes {
                                    if let Some(s) = self.sockets.get_mut(&wsock) {
                                        s.blocked_write = None;
                                    }
                                    self.wake(task, wsock, Charge::Syscall);
                                }
                            }
                        }
                    }
                }
            }
        }
        if !rewrote_queue {
            let mut wakes = Vec::new();
            for (c, len) in credited {
                if let Some(st) = self.uio.complete(c, len) {
                    wakes.push((st.task, st.sock));
                }
            }
            for (task, wsock) in wakes {
                if let Some(s) = self.sockets.get_mut(&wsock) {
                    s.blocked_write = None;
                }
                self.wake(task, wsock, Charge::Syscall);
            }
        }
        out
    }

    /// Flatten a chain to bytes, resolving UIO (user memory) and WCAB
    /// (outboard memory) descriptors without charging costs (helper for
    /// conversions that have already accounted the copy).
    fn chain_bytes(&mut self, chain: &Chain, mem: &HostMem) -> Vec<u8> {
        use outboard_host::UserMemory;
        let mut outb = Vec::with_capacity(chain.len());
        for m in chain.iter() {
            match m.data() {
                MbufData::Kernel(b) => outb.extend_from_slice(b),
                MbufData::Uio(d) => {
                    // Read straight into the output tail; no temporary.
                    let at = outb.len();
                    outb.resize(at + d.len, 0);
                    if mem
                        .read_user(d.region.task, d.vaddr(), &mut outb[at..])
                        .is_err()
                    {
                        self.stats.user_mem_faults += 1;
                    }
                }
                MbufData::Wcab(d) => {
                    // A buffer lost to a board reset reads as zeros; the
                    // peer's checksum rejects the segment and TCP recovers.
                    let at = outb.len();
                    outb.resize(at + d.len, 0);
                    let iface = &self.ifaces[d.cab as usize];
                    if let IfaceKind::Cab(c) = &iface.kind {
                        let _ = c
                            .cab
                            .read_packet(PacketId(d.packet), d.off, &mut outb[at..]);
                    }
                }
            }
        }
        outb
    }

    /// Software ones-complement sum over a chain, resolving external
    /// descriptors (traditional path and conversion layers).
    pub(crate) fn software_chain_sum(&mut self, chain: &Chain, mem: &HostMem) -> u16 {
        use outboard_host::UserMemory;
        let mut acc = Accumulator::new();
        // External descriptors resolve through the recycled scratch buffer
        // instead of a fresh allocation per mbuf.
        let mut scratch = std::mem::take(&mut self.scratch);
        for m in chain.iter() {
            match m.data() {
                MbufData::Kernel(b) => acc.add_bytes(b),
                MbufData::Uio(d) => {
                    scratch.clear();
                    scratch.resize(d.len, 0);
                    if mem
                        .read_user(d.region.task, d.vaddr(), &mut scratch)
                        .is_err()
                    {
                        self.stats.user_mem_faults += 1;
                    }
                    acc.add_bytes(&scratch);
                }
                MbufData::Wcab(d) => {
                    scratch.clear();
                    scratch.resize(d.len, 0);
                    let iface = &self.ifaces[d.cab as usize];
                    if let IfaceKind::Cab(c) = &iface.kind {
                        let _ = c.cab.read_packet(PacketId(d.packet), d.off, &mut scratch);
                    }
                    acc.add_bytes(&scratch);
                }
            }
        }
        self.scratch = scratch;
        acc.partial()
    }

    /// IP output: header, fragmentation, dispatch to the driver.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ip_output(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ip_proto: u8,
        transport: Chain,
        iface_id: IfaceId,
        meta: TxMeta,
        mem: &mut HostMem,
        now: Time,
    ) {
        self.cpu(self.machine.cost_ip_us, Charge::Syscall);
        let mtu = self.ifaces[iface_id.0 as usize].mtu;
        let id = self.ip_id;
        self.ip_id = self.ip_id.wrapping_add(1);

        if transport.len() + IPV4_HEADER_LEN <= mtu {
            let hdr = Ipv4Header::new(src, dst, ip_proto, transport.len(), id);
            self.link_output(iface_id, hdr, transport, meta, mem, now);
            return;
        }
        // Fragment (traditional path only; single-copy packets fit the MTU
        // by construction).
        assert!(
            transport.hdr.csum_plan.is_none(),
            "outboard checksum cannot span fragments"
        );
        let plan = ip::fragment_plan(transport.len(), mtu, IPV4_HEADER_LEN);
        for part in plan {
            let mut hdr = Ipv4Header::new(src, dst, ip_proto, part.len, id);
            hdr.flags_frag = ((part.offset / 8) as u16)
                | if part.more {
                    outboard_wire::ipv4::IP_MF
                } else {
                    0
                };
            let frag = transport.copy_range(part.offset, part.len);
            self.stats.frags_sent += 1;
            self.link_output(iface_id, hdr, frag, TxMeta::plain(), mem, now);
        }
    }

    /// Hand a finished IP packet to the interface's driver.
    fn link_output(
        &mut self,
        iface_id: IfaceId,
        ip_hdr: Ipv4Header,
        transport: Chain,
        meta: TxMeta,
        mem: &mut HostMem,
        now: Time,
    ) {
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += ip_hdr.total_len as u64;
        match &self.ifaces[iface_id.0 as usize].kind {
            IfaceKind::Cab(_) => self.cab_output(iface_id, ip_hdr, transport, meta, mem, now),
            IfaceKind::Eth(_) => self.eth_output(iface_id, ip_hdr, transport, mem, now),
            IfaceKind::Loopback => self.loop_output(iface_id, ip_hdr, transport, mem, now),
        }
    }

    /// The CAB driver's output routine (§3): all the stack's data-touching
    /// work happens here, in hardware.
    fn cab_output(
        &mut self,
        iface_id: IfaceId,
        ip_hdr: Ipv4Header,
        transport: Chain,
        meta: TxMeta,
        mem: &mut HostMem,
        now: Time,
    ) {
        self.cpu(self.machine.cost_driver_pkt_us, Charge::Syscall);
        let csum_plan = transport.hdr.csum_plan;
        let ip_bytes = ip_hdr.build();
        let frame_len = HIPPI_HEADER_LEN + ip_hdr.total_len as usize;

        // The transport header is the chain's leading kernel mbuf.
        let thdr_len = transport
            .iter()
            .next()
            .and_then(|m| m.kernel_bytes())
            .map(|b| b.len())
            .unwrap_or(0);
        let data_len = transport.len() - thdr_len;
        let full_hdr_len = HIPPI_HEADER_LEN + IPV4_HEADER_LEN + thdr_len;

        self.with_cab(iface_id, |k, cab| {
            let Some(&hippi_dst) = cab.arp.get(&ip_hdr.dst) else {
                k.stats.ip_errors += 1;
                return;
            };
            let channel = cab.channel_for(hippi_dst);
            let hippi =
                HippiHeader::new(cab.cab.addr, hippi_dst, ip_hdr.total_len as usize, channel);
            let spec = csum_plan.map(|p| ChecksumSpec {
                csum_offset: HIPPI_HEADER_LEN + IPV4_HEADER_LEN + p.csum_offset,
                skip_words: (HIPPI_HEADER_LEN + IPV4_HEADER_LEN) / 4 + p.skip_words,
            });

            // --- Retransmission fast path (§4.3): data already outboard,
            // re-DMA only a fresh header and reuse the saved body checksum.
            if meta.retransmit && data_len > 0 {
                let descs: Vec<_> = transport.iter().collect();
                if descs.len() == 2 {
                    if let MbufData::Wcab(d) = descs[1].data() {
                        let packet = PacketId(d.packet);
                        let geom_ok = cab.tx_hdr_len.get(&packet).copied() == Some(d.off)
                            && cab
                                .cab
                                .netmem()
                                .get(packet)
                                .map(|p| p.cap == d.off + d.len)
                                .unwrap_or(false)
                            && d.cab == iface_id.0;
                        if geom_ok {
                            // Assemble the fresh header in the kernel's
                            // scratch buffer: no intermediate chain or
                            // flatten allocation, and the buffer's capacity
                            // is recycled across segments.
                            let mut header = std::mem::take(&mut k.scratch);
                            header.clear();
                            header.extend_from_slice(&hippi.build());
                            header.extend_from_slice(&ip_bytes);
                            let at = header.len();
                            header.resize(at + thdr_len, 0);
                            transport.copy_kernel_out(0, &mut header[at..]);
                            let hdr_bytes = Bytes::copy_from_slice(&header);
                            k.scratch = header;
                            let token = cab.issue(SdmaPurpose::TxPlain);
                            let req = SdmaTx {
                                packet,
                                sg: vec![SgEntry::Inline(hdr_bytes)],
                                csum: spec,
                                reuse_body_csum: true,
                                interrupt_on_complete: false,
                                token,
                            };
                            match cab.cab.sdma_tx(req, now, mem) {
                                Ok(ev) => {
                                    let sdma_done = ev.at();
                                    if k.spans.on() {
                                        k.spans.span(
                                            meta.flow,
                                            Stage::Sdma,
                                            now,
                                            sdma_done,
                                            full_hdr_len as u64,
                                        );
                                        if spec.is_some() {
                                            k.spans.span(
                                                meta.flow,
                                                Stage::Checksum,
                                                now,
                                                sdma_done,
                                                data_len as u64,
                                            );
                                        }
                                    }
                                    k.fx.push(Effect::Cab {
                                        iface: iface_id,
                                        event: ev,
                                    });
                                    match cab
                                        .cab
                                        .mdma_tx(packet, hippi_dst, channel, sdma_done, false)
                                    {
                                        Ok(ev) => {
                                            if k.spans.on() {
                                                k.spans.span(
                                                    meta.flow,
                                                    Stage::MdmaTx,
                                                    sdma_done,
                                                    ev.at(),
                                                    frame_len as u64,
                                                );
                                            }
                                            k.fx.push(Effect::Cab {
                                                iface: iface_id,
                                                event: ev,
                                            })
                                        }
                                        Err(e) => {
                                            // The header is refreshed; only
                                            // the media transfer is parked.
                                            Kernel::watchdog_on_wedge(k, cab, iface_id, &e);
                                            Kernel::park_tx(
                                                k,
                                                cab,
                                                iface_id,
                                                PendingTx::Mdma {
                                                    packet,
                                                    dst: hippi_dst,
                                                    channel,
                                                    free_after: false,
                                                },
                                                now,
                                            );
                                        }
                                    }
                                    k.stats.retransmit_header_only += 1;
                                    k.trace.record(
                                        now,
                                        "cab.driver",
                                        "retransmit_header_only",
                                        format!("packet {packet:?}"),
                                    );
                                    return;
                                }
                                Err(e) => {
                                    // Fall through to the slow path, which
                                    // rebuilds the whole frame.
                                    cab.complete(token);
                                    Kernel::watchdog_on_wedge(k, cab, iface_id, &e);
                                }
                            }
                        }
                    }
                }
                k.stats.retransmit_slow_path += 1;
            }

            // --- Normal path: gather everything, then allocate and DMA.
            // The frame header is assembled in the recycled scratch buffer
            // (restored right after it is frozen into `Bytes` below).
            let mut header = std::mem::take(&mut k.scratch);
            header.clear();
            header.extend_from_slice(&hippi.build());
            header.extend_from_slice(&ip_bytes);
            let mut sg: Vec<SgEntry> = Vec::new();
            let mut uio_bytes = 0usize;
            let mut pinned: Option<(outboard_host::TaskId, u64, usize)> = None;
            let mut first_kernel = true;
            for m in transport.iter() {
                match m.data() {
                    MbufData::Kernel(b) => {
                        if first_kernel {
                            header.extend_from_slice(b);
                            first_kernel = false;
                        } else {
                            sg.push(SgEntry::Inline(b.clone()));
                        }
                    }
                    MbufData::Uio(d) => {
                        first_kernel = false;
                        if d.vaddr() % 4 != 0 {
                            // §4.5: the device cannot DMA from an unaligned
                            // start address; fall back to a kernel copy for
                            // this entry ("the traditional path is used for
                            // unaligned accesses").
                            use outboard_host::UserMemory;
                            k.stats.aligned_fallbacks += 1;
                            let (mut buf, ticket) = k.cluster_alloc(d.len);
                            if mem.read_user(d.region.task, d.vaddr(), &mut buf).is_err() {
                                k.stats.user_mem_faults += 1;
                            }
                            let cost = k.memsys.copy_cost(d.len, d.len.max(4096));
                            k.cpu_dur(cost, Charge::Syscall);
                            // The bytes are copied, so the write's counter
                            // can be credited as if DMAed (the completion
                            // handler will find no UIO descriptor to
                            // convert, so credit here).
                            uio_bytes += d.len;
                            sg.push(SgEntry::Inline(k.cluster_freeze(buf, ticket)));
                        } else {
                            uio_bytes += d.len;
                            match &mut pinned {
                                None => pinned = Some((d.region.task, d.vaddr(), d.len)),
                                Some((_, _, l)) => *l += d.len,
                            }
                            sg.push(SgEntry::User {
                                task: d.region.task,
                                vaddr: d.vaddr(),
                                len: d.len,
                            });
                        }
                    }
                    MbufData::Wcab(d) => {
                        // Cross-packet retransmit slice: resolve outboard
                        // bytes through the driver (rare; a CPU read). Zeros
                        // on a lost buffer; the peer's checksum rejects.
                        first_kernel = false;
                        let (mut buf, ticket) = k.cluster_alloc(d.len);
                        let _ = cab.cab.read_packet(PacketId(d.packet), d.off, &mut buf);
                        let cost = k.memsys.read_cost(d.len, d.len.max(4096));
                        k.cpu_dur(cost, Charge::Syscall);
                        sg.push(SgEntry::Inline(k.cluster_freeze(buf, ticket)));
                    }
                }
            }
            sg.insert(0, SgEntry::Inline(Bytes::copy_from_slice(&header)));
            k.scratch = header;
            let mut purpose = match (uio_bytes > 0, meta.sock) {
                (true, Some(sock)) => SdmaPurpose::TxSegment {
                    sock,
                    seq_lo: meta.seq_lo,
                    data_len,
                    // Placeholder until a packet is allocated (the parked
                    // retry path allocates afresh each round).
                    packet: PacketId(0),
                    hdr_len: full_hdr_len,
                    pinned,
                },
                _ => SdmaPurpose::TxPlain,
            };
            let Some(packet) = cab.cab.alloc_packet(frame_len) else {
                // Out of network memory — the paper's "transient
                // out-of-resources condition" (§4.4.3): park the gathered
                // request and retry with backoff instead of dropping.
                k.stats.tx_nomem_drops += 1;
                Kernel::park_tx(
                    k,
                    cab,
                    iface_id,
                    PendingTx::Sdma {
                        frame_len,
                        sg,
                        csum: spec,
                        dst: hippi_dst,
                        channel,
                        purpose,
                        free_after_mdma: meta.free_after_mdma,
                        data_len,
                        hdr_len: full_hdr_len,
                    },
                    now,
                );
                return;
            };
            if let SdmaPurpose::TxSegment { packet: p, .. } = &mut purpose {
                *p = packet;
            }
            let token = cab.issue(purpose);
            let req = SdmaTx {
                packet,
                sg: sg.clone(),
                csum: spec,
                reuse_body_csum: false,
                interrupt_on_complete: uio_bytes > 0,
                token,
            };
            // Geometry for ACK-driven freeing and header-only retransmits.
            if !meta.free_after_mdma && data_len > 0 {
                cab.tx_remaining.insert(packet, data_len);
                cab.tx_hdr_len.insert(packet, full_hdr_len);
            }
            match cab.cab.sdma_tx(req, now, mem) {
                Ok(ev) => {
                    let sdma_done = ev.at();
                    if k.spans.on() {
                        k.spans
                            .span(meta.flow, Stage::Sdma, now, sdma_done, frame_len as u64);
                        if spec.is_some() {
                            k.spans.span(
                                meta.flow,
                                Stage::Checksum,
                                now,
                                sdma_done,
                                data_len as u64,
                            );
                        }
                    }
                    k.fx.push(Effect::Cab {
                        iface: iface_id,
                        event: ev,
                    });
                    match cab.cab.mdma_tx(
                        packet,
                        hippi_dst,
                        channel,
                        sdma_done,
                        meta.free_after_mdma,
                    ) {
                        Ok(ev) => {
                            if k.spans.on() {
                                k.spans.span(
                                    meta.flow,
                                    Stage::MdmaTx,
                                    sdma_done,
                                    ev.at(),
                                    frame_len as u64,
                                );
                            }
                            k.fx.push(Effect::Cab {
                                iface: iface_id,
                                event: ev,
                            })
                        }
                        Err(e) => {
                            // The packet is gathered outboard; only the
                            // media transfer needs a retry.
                            Kernel::watchdog_on_wedge(k, cab, iface_id, &e);
                            Kernel::park_tx(
                                k,
                                cab,
                                iface_id,
                                PendingTx::Mdma {
                                    packet,
                                    dst: hippi_dst,
                                    channel,
                                    free_after: meta.free_after_mdma,
                                },
                                now,
                            );
                        }
                    }
                }
                Err(e) => {
                    // Undo the issue and park the whole transfer. A wedged
                    // engine has seized the buffer mid-gather; the board
                    // reset reclaims it, so the host must not free it here.
                    cab.complete(token);
                    cab.tx_remaining.remove(&packet);
                    cab.tx_hdr_len.remove(&packet);
                    if !matches!(e, CabError::EngineWedged(_)) {
                        cab.cab.free_packet(packet, now);
                    }
                    Kernel::watchdog_on_wedge(k, cab, iface_id, &e);
                    Kernel::park_tx(
                        k,
                        cab,
                        iface_id,
                        PendingTx::Sdma {
                            frame_len,
                            sg,
                            csum: spec,
                            dst: hippi_dst,
                            channel,
                            purpose,
                            free_after_mdma: meta.free_after_mdma,
                            data_len,
                            hdr_len: full_hdr_len,
                        },
                        now,
                    );
                }
            }
        });
    }

    /// Ethernet output with the thin conversion layer at the driver entry
    /// (§5): UIO/WCAB chains become regular data here — "a copy has merely
    /// been delayed".
    fn eth_output(
        &mut self,
        iface_id: IfaceId,
        ip_hdr: Ipv4Header,
        transport: Chain,
        mem: &HostMem,
        _now: Time,
    ) {
        self.cpu(self.machine.cost_driver_pkt_us, Charge::Syscall);
        let flat = self.flatten_for_legacy(&transport, mem);
        // Routing only sends Ethernet-bound traffic here, but a stale route
        // table entry is a survivable error, not grounds to abort the host.
        let IfaceKind::Eth(eth) = &self.ifaces[iface_id.0 as usize].kind else {
            self.stats.ip_errors += 1;
            return;
        };
        let Some(&dst_mac) = eth.arp.get(&ip_hdr.dst) else {
            self.stats.ip_errors += 1;
            return;
        };
        let src_mac = eth.mac;
        let mut frame = Vec::with_capacity(ETHER_HEADER_LEN + IPV4_HEADER_LEN + flat.len());
        frame.extend_from_slice(&EtherHeader::new(src_mac, dst_mac).build());
        frame.extend_from_slice(&ip_hdr.build());
        frame.extend_from_slice(&flat);
        // The conventional device copies the frame over its bus.
        let copy = self.memsys.copy_cost(frame.len(), frame.len().max(4096));
        self.cpu_dur(copy, Charge::Syscall);
        self.fx.push(Effect::EthTx {
            iface: iface_id,
            frame: Bytes::from(frame),
        });
    }

    fn loop_output(
        &mut self,
        iface_id: IfaceId,
        ip_hdr: Ipv4Header,
        transport: Chain,
        mem: &HostMem,
        _now: Time,
    ) {
        let flat = self.flatten_for_legacy(&transport, mem);
        let mut frame = Vec::with_capacity(IPV4_HEADER_LEN + flat.len());
        frame.extend_from_slice(&ip_hdr.build());
        frame.extend_from_slice(&flat);
        self.fx.push(Effect::Loop {
            iface: iface_id,
            frame: Bytes::from(frame),
        });
    }

    /// Resolve a possibly-mixed chain to flat kernel bytes for a legacy
    /// device, charging the conversion copies (§5).
    pub(crate) fn flatten_for_legacy(&mut self, chain: &Chain, mem: &HostMem) -> Vec<u8> {
        use outboard_host::UserMemory;
        let mut out = Vec::with_capacity(chain.len());
        let mut uio_copied = 0usize;
        let mut wcab_copied = 0usize;
        for m in chain.iter() {
            match m.data() {
                MbufData::Kernel(b) => out.extend_from_slice(b),
                MbufData::Uio(d) => {
                    // Resolve straight into the output tail; no temporary.
                    let at = out.len();
                    out.resize(at + d.len, 0);
                    if mem
                        .read_user(d.region.task, d.vaddr(), &mut out[at..])
                        .is_err()
                    {
                        self.stats.user_mem_faults += 1;
                    }
                    uio_copied += d.len;
                }
                MbufData::Wcab(d) => {
                    let at = out.len();
                    out.resize(at + d.len, 0);
                    let iface = &self.ifaces[d.cab as usize];
                    if let IfaceKind::Cab(c) = &iface.kind {
                        let _ = c.cab.read_packet(PacketId(d.packet), d.off, &mut out[at..]);
                    }
                    wcab_copied += d.len;
                }
            }
        }
        if uio_copied > 0 {
            self.stats.uio_to_regular += 1;
            let cost = self.memsys.copy_cost(uio_copied, uio_copied.max(4096));
            self.cpu_dur(cost, Charge::Syscall);
        }
        if wcab_copied > 0 {
            self.stats.wcab_to_regular += 1;
            let cost = self.memsys.copy_cost(wcab_copied, wcab_copied.max(4096));
            self.cpu_dur(cost, Charge::Syscall);
        }
        out
    }

    /// UDP output: header + checksum strategy + IP.
    pub(crate) fn udp_output(
        &mut self,
        sock: SockId,
        local: SockAddr,
        remote: SockAddr,
        mut data: Chain,
        mem: &mut HostMem,
        now: Time,
    ) {
        self.cpu(self.machine.cost_udp_us, Charge::Syscall);
        // In-kernel applications may hand us chains whose format the CAB
        // driver cannot take; check and convert (§5).
        let owner = self.sockets.get(&sock).map(|s| s.owner);
        if owner == Some(Owner::Kernel) && data.has_wcab() {
            let flat = self.flatten_for_legacy(&data, mem);
            data = Chain::from_slice(&flat);
        }
        let hdr = UdpHeader::new(local.port, remote.port, data.len());
        self.stats.udp_datagrams_out += 1;
        let flow = if self.spans.on() {
            let group = FlowId::group_of(
                local.ip.octets(),
                local.port,
                remote.ip.octets(),
                remote.port,
            );
            FlowId::group_only(group)
        } else {
            FlowId::NONE
        };
        let meta = TxMeta {
            sock: Some(sock),
            seq_lo: 0,
            retransmit: false,
            free_after_mdma: true,
            flow,
        };
        if self.spans.on() {
            let end = now + outboard_sim::Dur::from_micros_f64(self.machine.cost_udp_us);
            self.spans
                .span(flow, Stage::KernelOutput, now, end, data.len() as u64);
        }
        self.transport_output(
            local.ip,
            remote.ip,
            proto::UDP,
            hdr.build().to_vec(),
            outboard_wire::udp::UDP_CSUM_OFFSET,
            data,
            meta,
            mem,
            now,
        );
    }

    /// Send an ICMP echo request (ping) — an in-kernel transmit path used
    /// by tests and examples.
    pub fn send_ping(
        &mut self,
        dst: Ipv4Addr,
        ident: u16,
        seq: u16,
        payload: &[u8],
        mem: &mut HostMem,
        now: Time,
    ) -> Vec<Effect> {
        let chain = crate::ip::icmp::build_echo(crate::ip::icmp::ECHO_REQUEST, ident, seq, payload);
        if let Some(iface_id) = self.routes.lookup(dst) {
            let src = self.ifaces[iface_id.0 as usize].ip;
            self.ip_output(
                src,
                dst,
                proto::ICMP,
                chain,
                iface_id,
                TxMeta::plain(),
                mem,
                now,
            );
        }
        self.take_effects()
    }

    /// ICMP echo reply — the resident in-kernel application (§5).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn icmp_reply(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        ident: u16,
        seq: u16,
        payload: &[u8],
        mem: &mut HostMem,
        now: Time,
    ) {
        self.stats.icmp_echo_replies += 1;
        let chain = crate::ip::icmp::build_echo(crate::ip::icmp::ECHO_REPLY, ident, seq, payload);
        let Some(iface_id) = self.routes.lookup(dst) else {
            return;
        };
        self.ip_output(
            src,
            dst,
            proto::ICMP,
            chain,
            iface_id,
            TxMeta::plain(),
            mem,
            now,
        );
    }
}
