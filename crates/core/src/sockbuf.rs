//! Socket buffers and UIO counters.
//!
//! [`SockBuf`] is BSD's `sockbuf`: a bounded mbuf chain with a high-water
//! mark. [`UioCounters`] implements §4.4.2: a `write` on the single-copy
//! path may only return once *all* of its bytes have been copied outboard
//! (copy semantics), and a `read` only once all DMAs filling the user buffer
//! have completed. Each blocked operation owns a counter tracking its
//! outstanding bytes; drivers decrement it from end-of-DMA handling and the
//! socket layer wakes the process when it drains.

use crate::types::{SockId, StackError};
use outboard_mbuf::{Chain, TaskId, UioCounterId};
use std::collections::HashMap;

/// A bounded socket buffer.
#[derive(Clone, Debug)]
pub struct SockBuf {
    /// The buffered data (possibly mixed mbuf formats).
    pub chain: Chain,
    /// High-water mark in bytes.
    pub hiwat: usize,
}

impl SockBuf {
    /// An empty buffer bounded at `hiwat` bytes.
    pub fn new(hiwat: usize) -> SockBuf {
        SockBuf {
            chain: Chain::new(),
            hiwat,
        }
    }

    /// Buffered bytes.
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }

    /// Free space below the high-water mark.
    pub fn space(&self) -> usize {
        self.hiwat.saturating_sub(self.chain.len())
    }
}

/// State of one blocked single-copy operation (§4.4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UioState {
    /// The blocked process.
    pub task: TaskId,
    /// The socket the operation runs on.
    pub sock: SockId,
    /// Bytes queued/issued but whose DMA has not completed yet.
    pub outstanding: usize,
    /// Bytes of the operation not yet handed to the stack (socket buffer was
    /// full; the socket layer continues incrementally as space frees).
    pub unissued: usize,
}

impl UioState {
    /// The operation is complete and its process may be woken.
    pub fn drained(&self) -> bool {
        self.outstanding == 0 && self.unissued == 0
    }
}

/// Registry of live UIO counters on one host.
#[derive(Debug, Default)]
pub struct UioCounters {
    next: u64,
    // lint: allow(nondet-order, keyed lookup by counter id, never iterated)
    live: HashMap<UioCounterId, UioState>,
}

impl UioCounters {
    /// An empty registry.
    pub fn new() -> UioCounters {
        UioCounters::default()
    }

    /// Register a blocked operation covering `total` bytes.
    pub fn create(&mut self, task: TaskId, sock: SockId, total: usize) -> UioCounterId {
        let id = UioCounterId(self.next);
        self.next += 1;
        self.live.insert(
            id,
            UioState {
                task,
                sock,
                outstanding: 0,
                unissued: total,
            },
        );
        id
    }

    /// Inspect a live counter.
    pub fn get(&self, id: UioCounterId) -> Option<&UioState> {
        self.live.get(&id)
    }

    /// Move `bytes` from un-issued to outstanding (data handed down to the
    /// transport layer / DMA issued).
    pub fn issue(&mut self, id: UioCounterId, bytes: usize) -> Result<(), StackError> {
        let st = self.live.get_mut(&id).ok_or(StackError::BadSocket)?;
        assert!(st.unissued >= bytes, "issuing more than remains");
        st.unissued -= bytes;
        st.outstanding += bytes;
        Ok(())
    }

    /// Record DMA completion of `bytes`; returns the state if the whole
    /// operation just drained (caller wakes the process and removes it).
    pub fn complete(&mut self, id: UioCounterId, bytes: usize) -> Option<UioState> {
        let st = self.live.get_mut(&id)?;
        assert!(st.outstanding >= bytes, "completing more than outstanding");
        st.outstanding -= bytes;
        if st.drained() {
            self.live.remove(&id)
        } else {
            None
        }
    }

    /// Drop a counter without waking (socket torn down).
    pub fn cancel(&mut self, id: UioCounterId) {
        self.live.remove(&id);
    }

    /// Counters not yet drained.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sockbuf_space() {
        let mut sb = SockBuf::new(100);
        assert_eq!(sb.space(), 100);
        sb.chain
            .append(outboard_mbuf::Mbuf::kernel_copy(&[0u8; 60]));
        assert_eq!(sb.space(), 40);
        sb.chain
            .append(outboard_mbuf::Mbuf::kernel_copy(&[0u8; 60]));
        assert_eq!(sb.space(), 0, "space saturates below zero");
        assert_eq!(sb.len(), 120);
    }

    #[test]
    fn counter_lifecycle_models_a_blocked_write() {
        let mut reg = UioCounters::new();
        let id = reg.create(TaskId(1), SockId(0), 64 * 1024);
        // Socket layer hands down two 32 KB packets.
        reg.issue(id, 32 * 1024).unwrap();
        reg.issue(id, 32 * 1024).unwrap();
        assert!(!reg.get(id).unwrap().drained());
        // First DMA completes: still outstanding.
        assert!(reg.complete(id, 32 * 1024).is_none());
        // Second completes: drained, counter removed, caller wakes task 1.
        let st = reg.complete(id, 32 * 1024).expect("drained");
        assert_eq!(st.task, TaskId(1));
        assert_eq!(reg.live_count(), 0);
    }

    #[test]
    fn partial_issue_keeps_blocking() {
        let mut reg = UioCounters::new();
        let id = reg.create(TaskId(2), SockId(1), 100);
        reg.issue(id, 40).unwrap();
        // DMA of the issued part completes, but 60 bytes never got buffer
        // space yet: not drained.
        assert!(reg.complete(id, 40).is_none());
        reg.issue(id, 60).unwrap();
        assert!(reg.complete(id, 60).is_some());
    }

    #[test]
    fn cancel_removes() {
        let mut reg = UioCounters::new();
        let id = reg.create(TaskId(1), SockId(0), 10);
        reg.cancel(id);
        assert!(reg.get(id).is_none());
        assert!(reg.complete(id, 10).is_none());
    }
}
