//! `outboard-stack`: a single-copy BSD protocol stack with outboard
//! buffering and checksumming — the paper's primary contribution.
//!
//! The stack is *sans-IO*: a [`Kernel`] per simulated host owns the sockets,
//! TCP/UDP/IP state, interfaces and their devices (the CAB model, a
//! conventional Ethernet, a loopback). Every entry point — syscalls, frame
//! arrivals, DMA completions, timers — mutates protocol state immediately
//! and returns a list of [`Effect`]s (CPU time to charge, device events to
//! schedule, frames to put on links, processes to wake, timers to arm) that
//! the harness in `outboard-testbed` interprets against the simulation
//! clock. This keeps the whole stack unit-testable without a harness.
//!
//! Layer map (paper section in parentheses):
//!
//! * [`socket`] + [`sockbuf`] — sockets with copy semantics, the
//!   UIO-vs-regular fast-path decision (§4.4.3), write/read blocking on
//!   outstanding DMA via UIO counters (§4.4.2), word-alignment fallback
//!   (§4.5);
//! * [`tcp`] — the transport: window scaling, MSS, delayed ACKs, RTO and
//!   fast retransmit, with the transmit queue *search routine* that
//!   assembles a packet's worth of data from mixed regular/`M_UIO`/`M_WCAB`
//!   mbufs (§4.2), and retransmission *from outboard memory* (§4.3);
//! * [`udp`] — datagrams, with fragmented datagrams falling back to the
//!   traditional path (fragment checksums cannot be inserted by the CAB);
//! * [`ip`] — output/input, header checksum, fragmentation/reassembly,
//!   ICMP echo as a resident in-kernel application;
//! * [`driver`] — the CAB driver implementing copy-in/copy-out (§3),
//!   checksum plans → SDMA requests, UIO→WCAB conversion on DMA completion,
//!   header-only retransmit; plus the conventional Ethernet driver with the
//!   thin `M_UIO`→regular conversion layer at its entry (§5), and loopback;
//! * [`kernel`] — the façade tying it together, including the in-kernel
//!   application interface with share semantics and the ordered
//!   `M_WCAB`→regular conversion queue (§5).

#![warn(missing_docs)]

pub mod driver;
pub mod ip;
pub mod kernel;
pub mod route;
pub mod sockbuf;
pub mod socket;
pub mod tcp;
pub mod types;
pub mod udp;

pub use kernel::Kernel;
pub use types::{
    Effect, IfaceId, Proto, ReadResult, SockAddr, SockId, StackConfig, StackError, StackMode,
    TimerKind, WriteResult,
};
