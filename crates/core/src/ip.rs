//! IP-layer helpers: fragmentation planning, reassembly, ICMP echo.
//!
//! The output/input control flow lives in the kernel (it needs routes and
//! interfaces); this module holds the data structures and pure logic:
//!
//! * [`fragment_plan`] — how a datagram splits across an MTU,
//! * [`Reassembler`] — fragment buffers keyed by (src, dst, proto, id),
//!   combining per-fragment *hardware* checksum partials so a fragmented
//!   UDP datagram received through the CAB can still be verified without a
//!   software read pass,
//! * [`icmp`] — echo request/reply builders (ICMP is the paper's example of
//!   a low-bandwidth in-kernel application, §5).

use outboard_mbuf::Chain;
use outboard_wire::checksum::add16;
use outboard_wire::Ipv4Header;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One planned fragment: payload byte range and MF flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragPart {
    /// Byte offset of this fragment's payload in the datagram.
    pub offset: usize,
    /// Fragment payload length.
    pub len: usize,
    /// More fragments follow (sets IP_MF).
    pub more: bool,
}

/// Split a transport payload of `len` bytes across an IP MTU. Fragment
/// payloads (except the last) must be multiples of 8 bytes.
pub fn fragment_plan(len: usize, mtu: usize, ip_header_len: usize) -> Vec<FragPart> {
    let max_payload = (mtu - ip_header_len) & !7;
    assert!(max_payload > 0, "mtu too small to fragment into");
    if len <= mtu - ip_header_len {
        return vec![FragPart {
            offset: 0,
            len,
            more: false,
        }];
    }
    let mut parts = Vec::new();
    let mut off = 0;
    while off < len {
        let take = max_payload.min(len - off);
        let more = off + take < len;
        parts.push(FragPart {
            offset: off,
            len: take,
            more,
        });
        off += take;
    }
    parts
}

/// Key identifying a datagram being reassembled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FragKey {
    /// Datagram source.
    pub src: Ipv4Addr,
    /// Datagram destination.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub proto: u8,
    /// IP identification field.
    pub id: u16,
}

#[derive(Debug)]
struct FragBuf {
    /// Fragment payloads keyed by byte offset.
    parts: BTreeMap<usize, Chain>,
    /// Combined hardware checksum partials (each fragment's transport-area
    /// sum, as computed by the CAB's receive engine). `None` once any
    /// fragment arrives without one (software path required).
    hw_sum: Option<u16>,
    /// Total payload length, known once the final fragment arrives.
    total: Option<usize>,
}

/// A completed reassembly.
#[derive(Debug)]
pub struct Reassembled {
    /// The reassembled transport payload.
    pub payload: Chain,
    /// Combined hardware checksum over the whole transport payload, when
    /// every fragment carried one.
    pub hw_sum: Option<u16>,
}

/// IP fragment reassembler with a bounded number of concurrent datagrams.
#[derive(Debug, Default)]
pub struct Reassembler {
    bufs: BTreeMap<FragKey, FragBuf>,
}

/// Upper bound on concurrent reassemblies (old ones are evicted).
const MAX_REASS: usize = 32;

impl Reassembler {
    /// An empty reassembler.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Datagrams currently mid-reassembly.
    pub fn pending(&self) -> usize {
        self.bufs.len()
    }

    /// Feed one fragment. `hw_sum` is the CAB's partial checksum over this
    /// fragment's transport bytes, when it arrived through a CAB.
    /// Returns the reassembled payload once complete.
    pub fn feed(
        &mut self,
        key: FragKey,
        hdr: &Ipv4Header,
        payload: Chain,
        hw_sum: Option<u16>,
    ) -> Option<Reassembled> {
        if self.bufs.len() >= MAX_REASS && !self.bufs.contains_key(&key) {
            // Evict the smallest key to stay bounded (deterministic, if
            // arbitrary; real stacks use a reassembly timer instead).
            if let Some(&victim) = self.bufs.keys().next() {
                self.bufs.remove(&victim);
            }
        }
        let buf = self.bufs.entry(key).or_insert_with(|| FragBuf {
            parts: BTreeMap::new(),
            hw_sum: Some(0),
            total: None,
        });
        let off = hdr.frag_offset();
        if !hdr.more_fragments() {
            buf.total = Some(off + payload.len());
        }
        // Combine hardware partials; any software-path fragment poisons it.
        match (buf.hw_sum, hw_sum) {
            (Some(acc), Some(part)) => buf.hw_sum = Some(add16(acc, part)),
            _ => buf.hw_sum = None,
        }
        buf.parts.entry(off).or_insert(payload);

        // Complete?
        let total = buf.total?;
        let mut have = 0usize;
        for (&o, c) in &buf.parts {
            if o != have {
                return None; // hole
            }
            have += c.len();
        }
        if have != total {
            return None;
        }
        let mut buf = self.bufs.remove(&key)?;
        let mut payload = Chain::new();
        let mut first = true;
        for (_, c) in std::mem::take(&mut buf.parts) {
            if first {
                payload = c;
                first = false;
            } else {
                payload.concat(c);
            }
        }
        Some(Reassembled {
            payload,
            hw_sum: buf.hw_sum,
        })
    }
}

/// ICMP echo: the minimal in-kernel application.
pub mod icmp {
    use bytes::Bytes;
    use outboard_mbuf::Chain;
    use outboard_wire::checksum::Checksum;

    /// ICMP type: echo request (ping).
    pub const ECHO_REQUEST: u8 = 8;
    /// ICMP type: echo reply.
    pub const ECHO_REPLY: u8 = 0;

    /// Build an ICMP echo message (kernel mbuf chain).
    pub fn build_echo(kind: u8, ident: u16, seq: u16, payload: &[u8]) -> Chain {
        let mut b = vec![0u8; 8 + payload.len()];
        b[0] = kind;
        b[4..6].copy_from_slice(&ident.to_be_bytes());
        b[6..8].copy_from_slice(&seq.to_be_bytes());
        b[8..].copy_from_slice(payload);
        let c = Checksum::of(&b);
        b[2..4].copy_from_slice(&c.to_be_bytes());
        Chain::from_bytes(Bytes::from(b))
    }

    /// Parse an ICMP message; returns (type, ident, seq, payload) when it is
    /// an echo request/reply with a valid checksum.
    pub fn parse_echo(data: &[u8]) -> Option<(u8, u16, u16, &[u8])> {
        if data.len() < 8 {
            return None;
        }
        let mut acc = outboard_wire::checksum::Accumulator::new();
        acc.add_bytes(data);
        if acc.partial() != 0xFFFF {
            return None;
        }
        let kind = data[0];
        if kind != ECHO_REQUEST && kind != ECHO_REPLY {
            return None;
        }
        let ident = u16::from_be_bytes([data[4], data[5]]);
        let seq = u16::from_be_bytes([data[6], data[7]]);
        Some((kind, ident, seq, &data[8..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outboard_wire::checksum::Accumulator;

    #[test]
    fn fragment_plan_small_fits() {
        let p = fragment_plan(1000, 1500, 20);
        assert_eq!(p.len(), 1);
        assert!(!p[0].more);
        assert_eq!(p[0].len, 1000);
    }

    #[test]
    fn fragment_plan_splits_on_8_byte_boundaries() {
        let p = fragment_plan(4000, 1500, 20);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].len, 1480);
        assert_eq!(p[1].offset, 1480);
        assert!(p[0].more && p[1].more && !p[2].more);
        assert_eq!(p.iter().map(|f| f.len).sum::<usize>(), 4000);
        for f in &p[..2] {
            assert_eq!(f.len % 8, 0);
        }
    }

    fn key() -> FragKey {
        FragKey {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            proto: 17,
            id: 42,
        }
    }

    fn frag_hdr(off: usize, more: bool, payload_len: usize) -> Ipv4Header {
        let mut h = Ipv4Header::new(key().src, key().dst, 17, payload_len, 42);
        h.flags_frag = ((off / 8) as u16) | if more { outboard_wire::ipv4::IP_MF } else { 0 };
        h
    }

    #[test]
    fn reassembles_out_of_order() {
        let mut r = Reassembler::new();
        let d1: Vec<u8> = (0..1480u32).map(|i| i as u8).collect();
        let d2: Vec<u8> = (0..520u32).map(|i| (i + 7) as u8).collect();
        // Last fragment first.
        assert!(r
            .feed(
                key(),
                &frag_hdr(1480, false, 520),
                Chain::from_slice(&d2),
                None
            )
            .is_none());
        let done = r
            .feed(
                key(),
                &frag_hdr(0, true, 1480),
                Chain::from_slice(&d1),
                None,
            )
            .expect("complete");
        let flat = done.payload.flatten_kernel().unwrap();
        assert_eq!(&flat[..1480], &d1[..]);
        assert_eq!(&flat[1480..], &d2[..]);
        assert_eq!(r.pending(), 0);
        assert!(done.hw_sum.is_none(), "software fragment poisons hw sum");
    }

    #[test]
    fn combines_hardware_partial_sums() {
        let mut r = Reassembler::new();
        let d1 = vec![0x12u8; 1480];
        let d2 = vec![0x34u8; 200];
        let mut a1 = Accumulator::new();
        a1.add_bytes(&d1);
        let mut a2 = Accumulator::new();
        a2.add_bytes(&d2);
        r.feed(
            key(),
            &frag_hdr(0, true, 1480),
            Chain::from_slice(&d1),
            Some(a1.partial()),
        );
        let done = r
            .feed(
                key(),
                &frag_hdr(1480, false, 200),
                Chain::from_slice(&d2),
                Some(a2.partial()),
            )
            .unwrap();
        // Combined partial equals a sum over the whole payload.
        let mut whole = Accumulator::new();
        whole.add_bytes(&d1);
        whole.add_bytes(&d2);
        assert_eq!(done.hw_sum, Some(whole.partial()));
    }

    #[test]
    fn duplicate_fragment_is_idempotent() {
        let mut r = Reassembler::new();
        let d1 = vec![1u8; 800];
        r.feed(key(), &frag_hdr(0, true, 800), Chain::from_slice(&d1), None);
        r.feed(key(), &frag_hdr(0, true, 800), Chain::from_slice(&d1), None);
        let done = r
            .feed(
                key(),
                &frag_hdr(800, false, 8),
                Chain::from_slice(&[9; 8]),
                None,
            )
            .unwrap();
        assert_eq!(done.payload.len(), 808);
    }

    #[test]
    fn bounded_buffers_evict() {
        let mut r = Reassembler::new();
        for id in 0..40u16 {
            let mut k = key();
            k.id = id;
            r.feed(k, &frag_hdr(0, true, 8), Chain::from_slice(&[0; 8]), None);
        }
        assert!(r.pending() <= MAX_REASS);
    }

    #[test]
    fn icmp_echo_round_trip() {
        let c = icmp::build_echo(icmp::ECHO_REQUEST, 0x1234, 7, b"ping!");
        let flat = c.flatten_kernel().unwrap();
        let (kind, ident, seq, payload) = icmp::parse_echo(&flat).unwrap();
        assert_eq!(kind, icmp::ECHO_REQUEST);
        assert_eq!(ident, 0x1234);
        assert_eq!(seq, 7);
        assert_eq!(payload, b"ping!");
        // Corruption detected.
        let mut bad = flat.clone();
        bad[9] ^= 1;
        assert!(icmp::parse_echo(&bad).is_none());
    }
}
