//! TCP: connection state machine, windows, retransmission.
//!
//! The feature set mirrors what the paper's OSF/1 v2.0 stack needed for the
//! experiments: RFC 1323 window scaling (a 512 KB window does not fit the
//! bare 16-bit field), MSS negotiation (HIPPI's 32 KB MTU), delayed ACKs,
//! RTO estimation with exponential backoff, fast retransmit, and Reno-style
//! congestion control. The [`Tcb`] is *storage-agnostic*: it never touches
//! payload bytes. It tells the kernel which `[offset, len)` window of the
//! transmit queue to packetize — and the kernel's `copy_range` then walks a
//! queue that may hold regular, `M_UIO`, or `M_WCAB` mbufs (§4.2), which is
//! how retransmission from outboard memory falls out for free.

use crate::types::StackConfig;
use outboard_mbuf::Chain;
use outboard_sim::{Dur, Time};
use outboard_wire::tcp::{seq, TcpFlags, TcpHeader};
use std::collections::BTreeMap;

/// Connection states (RFC 793).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // the RFC 793 state names are the documentation
pub enum TcpState {
    Closed,
    Listen,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closing,
    TimeWait,
}

impl TcpState {
    /// May the application still send data?
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }

    /// Has the connection finished the handshake?
    pub fn is_synchronized(self) -> bool {
        !matches!(
            self,
            TcpState::Closed | TcpState::Listen | TcpState::SynSent
        )
    }
}

/// How urgently an ACK must be emitted after segment input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AckMode {
    /// No acknowledgment owed.
    #[default]
    None,
    /// Defer to the delayed-ACK timer (BSD fast timer).
    Delayed,
    /// Emit immediately (every 2nd segment, out-of-order data, window probe).
    Now,
}

/// A segment the TCB wants transmitted. The kernel materializes the payload
/// with `so_snd.copy_range(data_off, data_len)` and builds the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Window field value, already scaled down.
    pub window: u16,
    /// Payload range relative to `snd_una` (the front of `so_snd`).
    pub data_off: usize,
    /// Payload length in bytes.
    pub data_len: usize,
    /// MSS option to carry (SYN segments).
    pub mss_opt: Option<u16>,
    /// Window-scale option to carry (SYN segments).
    pub ws_opt: Option<u8>,
    /// True when this (re)covers previously-sent sequence space — the
    /// driver takes the header-only outboard retransmission path (§4.3).
    pub retransmit: bool,
}

/// Everything segment input tells the kernel to do.
#[derive(Debug, Default)]
pub struct InputResult {
    /// In-order payload to append to `so_rcv` (after reassembly).
    pub deliver: Vec<Chain>,
    /// Bytes newly acknowledged: drop from the front of `so_snd` and free
    /// the corresponding outboard buffers.
    pub acked_bytes: usize,
    /// How urgently to acknowledge the segment.
    pub ack: AckMode,
    /// Peer's FIN became in-order: readers see EOF after draining.
    pub fin_reached: bool,
    /// Handshake completed on this segment (wake a blocked connector, or
    /// make the accepting socket ready).
    pub connected: bool,
    /// Connection reached `Closed` (reset or final ACK).
    pub closed: bool,
    /// Emit an immediate RST with these (seq, ack, flags).
    pub rst_out: Option<(u32, u32, TcpFlags)>,
    /// Run output again (window opened, retransmit needed, FIN to send...).
    pub need_output: bool,
    /// ACK processing freed send-buffer space (writers may continue).
    pub writer_space_freed: bool,
}

/// The TCP control block.
#[derive(Debug)]
pub struct Tcb {
    /// Connection state.
    pub state: TcpState,
    // --- send sequence space ---
    /// Initial send sequence number.
    pub iss: u32,
    /// Oldest unacknowledged sequence.
    pub snd_una: u32,
    /// Next sequence to send.
    pub snd_nxt: u32,
    /// Highest sequence ever sent (retransmission does not lower it).
    pub snd_max: u32,
    /// Peer-advertised window (already scaled up).
    pub snd_wnd: usize,
    /// Segment sequence of the last window update (RFC 793 SND.WL1).
    pub snd_wl1: u32,
    /// Segment ack of the last window update (RFC 793 SND.WL2).
    pub snd_wl2: u32,
    // --- congestion ---
    /// Congestion window, bytes (Reno).
    pub cwnd: usize,
    /// Slow-start threshold, bytes.
    pub ssthresh: usize,
    /// Consecutive duplicate ACKs seen.
    pub dupacks: u32,
    // --- receive sequence space ---
    /// Initial receive sequence number.
    pub irs: u32,
    /// Next sequence expected in order.
    pub rcv_nxt: u32,
    /// Last window edge we advertised (for update decisions).
    pub rcv_adv: u32,
    // --- options ---
    /// Negotiated maximum segment size, bytes.
    pub mss: usize,
    /// Scale shift applied to windows the peer advertises.
    pub snd_scale: u8,
    /// Scale shift we advertise for our windows.
    pub rcv_scale: u8,
    request_ws: bool,
    // --- timers/RTT ---
    /// Smoothed round-trip time, once sampled.
    pub srtt: Option<Dur>,
    /// RTT variance estimate.
    pub rttvar: Dur,
    /// Current retransmission timeout.
    pub rto: Dur,
    rtt_seq: Option<u32>,
    rtt_start: Option<Time>,
    /// Consecutive timeouts (exponential backoff level).
    pub rexmt_backoff: u32,
    /// Monotone generation for timer validation.
    pub timer_gen: u64,
    /// A retransmission timer is conceptually running.
    pub rexmt_armed: bool,
    /// An acknowledgment is owed on the delayed-ACK timer.
    pub delack_pending: bool,
    segs_since_ack: u32,
    // --- flags ---
    /// Our FIN has been transmitted (at `snd_max - 1`).
    pub fin_sent: bool,
    /// `close(2)` was called; send FIN after the queued data.
    pub fin_pending: bool,
    /// Received FIN sequence (once rcv side saw it).
    fin_seq: Option<u32>,
    /// Coalesce sub-MSS segments while data is outstanding.
    pub nagle: bool,
    /// Reassembly queue: out-of-order segments keyed by sequence.
    reass: BTreeMap<u32, Chain>,
    // --- stats ---
    /// Segments retransmitted.
    pub retransmits: u64,
    /// Fast-retransmit events (3 duplicate ACKs).
    pub fast_retransmits: u64,
    /// Retransmission timeouts taken.
    pub rto_events: u64,
    /// Segments delivered to this connection's input processing.
    pub segs_in: u64,
    /// Duplicate ACKs received.
    pub dup_acks_rcvd: u64,
    /// Times output stalled with data queued but zero usable send window.
    pub window_stalls: u64,
    /// Payload bytes placed on the wire (first transmissions and
    /// retransmissions both count; FIN sequence slots do not).
    pub bytes_sent: u64,
    /// Payload bytes re-sent (already covered by an earlier transmission).
    pub bytes_retx: u64,
    /// ACKs released by the delayed-ACK timer.
    pub delayed_acks: u64,
    cfg_delack_every: u32,
    cfg_rto_initial: Dur,
    cfg_rto_min: Dur,
}

/// Maximum reassembly queue entries (smoltcp-style bounded gaps).
const MAX_REASS_SEGS: usize = 64;

impl Tcb {
    /// Sequence keys of the out-of-order reassembly queue. The watchdog's
    /// board-reset rescue walks these: reassembly chains can hold outboard
    /// (`M_WCAB`) descriptors whose bytes die with the reset, and they are
    /// delivered to the application later with no checksum left to object.
    pub fn reass_keys(&self) -> Vec<u32> {
        self.reass.keys().copied().collect()
    }

    /// The reassembly chain queued at sequence `seq`, if any.
    pub fn reass_chain(&self, seq: u32) -> Option<&Chain> {
        self.reass.get(&seq)
    }

    /// Mutable access to the reassembly chain queued at sequence `seq`.
    pub fn reass_chain_mut(&mut self, seq: u32) -> Option<&mut Chain> {
        self.reass.get_mut(&seq)
    }

    /// A closed control block with initial send sequence `iss`.
    pub fn new(cfg: &StackConfig, iss: u32, nagle: bool) -> Tcb {
        Tcb {
            state: TcpState::Closed,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            snd_wnd: 0,
            snd_wl1: 0,
            snd_wl2: 0,
            cwnd: 0,
            ssthresh: usize::MAX / 2,
            dupacks: 0,
            irs: 0,
            rcv_nxt: 0,
            rcv_adv: 0,
            mss: 536,
            snd_scale: 0,
            rcv_scale: 0,
            request_ws: true,
            srtt: None,
            rttvar: Dur::ZERO,
            rto: cfg.rto_initial,
            rtt_seq: None,
            rtt_start: None,
            rexmt_backoff: 0,
            timer_gen: 0,
            rexmt_armed: false,
            delack_pending: false,
            segs_since_ack: 0,
            fin_sent: false,
            fin_pending: false,
            fin_seq: None,
            nagle,
            reass: BTreeMap::new(),
            retransmits: 0,
            fast_retransmits: 0,
            rto_events: 0,
            segs_in: 0,
            dup_acks_rcvd: 0,
            window_stalls: 0,
            bytes_sent: 0,
            bytes_retx: 0,
            delayed_acks: 0,
            cfg_delack_every: cfg.delack_every,
            cfg_rto_initial: cfg.rto_initial,
            cfg_rto_min: cfg.rto_min,
        }
    }

    /// The window-scale shift needed to advertise `buf` bytes.
    pub fn scale_for(buf: usize) -> u8 {
        let mut s = 0u8;
        while s < 14 && (buf >> s) > 0xFFFF {
            s += 1;
        }
        s
    }

    /// Begin an active open.
    pub fn connect(&mut self, mss: usize, rcv_buf: usize) {
        assert_eq!(self.state, TcpState::Closed);
        self.state = TcpState::SynSent;
        self.mss = mss;
        self.cwnd = mss;
        self.rcv_scale = Self::scale_for(rcv_buf);
        self.request_ws = true;
    }

    /// Begin a passive open. `mss` is the interface-derived maximum segment
    /// we will advertise; `rcv_buf` sizes the window-scale request.
    pub fn listen(&mut self, mss: usize, rcv_buf: usize) {
        assert_eq!(self.state, TcpState::Closed);
        self.state = TcpState::Listen;
        self.mss = mss;
        self.rcv_scale = Self::scale_for(rcv_buf);
        self.request_ws = true;
    }

    /// Application close: send FIN after queued data.
    pub fn close(&mut self) {
        match self.state {
            TcpState::Established => {
                self.fin_pending = true;
                self.state = TcpState::FinWait1;
            }
            TcpState::CloseWait => {
                self.fin_pending = true;
                self.state = TcpState::LastAck;
            }
            TcpState::SynSent | TcpState::Listen | TcpState::Closed => {
                self.state = TcpState::Closed;
            }
            _ => {}
        }
    }

    /// Bytes in flight.
    pub fn flight_size(&self) -> usize {
        seq::diff(self.snd_max, self.snd_una) as usize
    }

    /// Effective send window (peer window ∧ congestion window).
    fn send_window(&self) -> usize {
        self.snd_wnd.min(self.cwnd)
    }

    /// The window field (scaled) to advertise for `rcv_space` free bytes.
    fn window_field(&self, rcv_space: usize) -> u16 {
        ((rcv_space >> self.rcv_scale).min(0xFFFF)) as u16
    }

    /// Decide what to transmit. `snd_q_len` is the length of `so_snd`
    /// (bytes from `snd_una` onward); `rcv_space` is free receive-buffer
    /// space; `force_ack` requests a pure ACK (delayed-ACK timer fired or
    /// window update).
    pub fn output(
        &mut self,
        snd_q_len: usize,
        rcv_space: usize,
        force_ack: bool,
        now: Time,
    ) -> Vec<SegmentPlan> {
        let mut plans = Vec::new();
        let win = self.window_field(rcv_space);
        match self.state {
            TcpState::SynSent => {
                // (Re)send SYN.
                if self.snd_max == self.iss {
                    self.snd_nxt = self.iss;
                }
                plans.push(SegmentPlan {
                    seq: self.iss,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: (rcv_space.min(0xFFFF)) as u16, // no scaling on SYN
                    data_off: 0,
                    data_len: 0,
                    mss_opt: Some(self.mss as u16),
                    ws_opt: self.request_ws.then_some(self.rcv_scale),
                    retransmit: self.snd_max != self.iss,
                });
                self.snd_nxt = self.iss.wrapping_add(1);
                self.snd_max = self.snd_max.max_seq(self.snd_nxt);
                return plans;
            }
            TcpState::SynRcvd => {
                plans.push(SegmentPlan {
                    seq: self.iss,
                    ack: self.rcv_nxt,
                    flags: TcpFlags::SYN | TcpFlags::ACK,
                    window: (rcv_space.min(0xFFFF)) as u16,
                    data_off: 0,
                    data_len: 0,
                    mss_opt: Some(self.mss as u16),
                    ws_opt: self.request_ws.then_some(self.rcv_scale),
                    retransmit: self.snd_max != self.iss.wrapping_add(1),
                });
                self.snd_nxt = self.iss.wrapping_add(1);
                self.snd_max = self.snd_max.max_seq(self.snd_nxt);
                return plans;
            }
            TcpState::Closed | TcpState::Listen => return plans,
            _ => {}
        }

        // Data transmission (ESTABLISHED and the closing states that may
        // still carry data/FIN).
        let mut sent_anything = false;
        loop {
            let offset = seq::diff(self.snd_nxt, self.snd_una) as usize;
            let avail = snd_q_len.saturating_sub(offset);
            let window = self.send_window();
            let usable = window.saturating_sub(offset);
            let mut len = avail.min(usable).min(self.mss);
            // Keep window-limited segments word-aligned so the *next*
            // segment's user data still starts on a word boundary (§4.5:
            // the CAB DMAs only from word-aligned host addresses). The
            // stream tail may be ragged; everything before it may not.
            if len < avail && !len.is_multiple_of(4) {
                len &= !3;
            }

            // FIN goes with/after the last queued data.
            let send_fin = self.fin_pending && !self.fin_sent && avail == len;
            // Nagle: hold sub-MSS data while anything is outstanding.
            let nagle_blocks = self.nagle
                && len > 0
                && len < self.mss
                && self.snd_nxt != self.snd_una
                && !send_fin
                && avail == len; // only the tail sub-MSS piece is held
            if len == 0 || nagle_blocks {
                // Data is queued but the (scaled, congestion-clamped) window
                // has no room: a sender-side window stall.
                if len == 0 && avail > 0 && usable == 0 {
                    self.window_stalls += 1;
                }
                // Maybe a pure FIN still needs to go.
                if self.fin_pending && !self.fin_sent && avail == 0 {
                    plans.push(SegmentPlan {
                        seq: self.snd_nxt,
                        ack: self.rcv_nxt,
                        flags: TcpFlags::FIN | TcpFlags::ACK,
                        window: win,
                        data_off: 0,
                        data_len: 0,
                        mss_opt: None,
                        ws_opt: None,
                        retransmit: false,
                    });
                    self.fin_sent = true;
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.snd_max = self.snd_max.max_seq(self.snd_nxt);
                    sent_anything = true;
                }
                break;
            }

            let retransmit = seq::lt(self.snd_nxt, self.snd_max);
            let mut flags = TcpFlags::ACK;
            if send_fin {
                flags = flags | TcpFlags::FIN;
            }
            if len == avail {
                flags = flags | TcpFlags::PSH;
            }
            plans.push(SegmentPlan {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags,
                window: win,
                data_off: offset,
                data_len: len,
                mss_opt: None,
                ws_opt: None,
                retransmit,
            });
            if retransmit {
                self.retransmits += 1;
                // Bytes below snd_max are re-sent; a segment straddling
                // snd_max (or carrying the FIN slot) is only partially old.
                let old = (seq::diff(self.snd_max, self.snd_nxt) as usize).min(len);
                self.bytes_retx += old as u64;
            }
            self.bytes_sent += len as u64;
            // RTT sampling: time one segment per window (Karn: never a
            // retransmitted one).
            if self.rtt_seq.is_none() && !retransmit {
                self.rtt_seq = Some(self.snd_nxt);
                self.rtt_start = Some(now);
            }
            self.snd_nxt = self.snd_nxt.wrapping_add(len as u32);
            if send_fin {
                self.fin_sent = true;
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
            }
            self.snd_max = self.snd_max.max_seq(self.snd_nxt);
            sent_anything = true;
        }

        // Pure ACK / window update when nothing else went out.
        if !sent_anything && force_ack && self.state.is_synchronized() {
            plans.push(SegmentPlan {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags::ACK,
                window: win,
                data_off: 0,
                data_len: 0,
                mss_opt: None,
                ws_opt: None,
                retransmit: false,
            });
        }
        if !plans.is_empty() {
            self.delack_pending = false;
            self.segs_since_ack = 0;
            let adv = self.rcv_nxt.wrapping_add((rcv_space) as u32);
            self.rcv_adv = self.rcv_adv.max_seq(adv);
        }
        plans
    }

    /// Should the retransmission timer be (re)armed after output/input?
    pub fn wants_rexmt_timer(&self) -> bool {
        seq::lt(self.snd_una, self.snd_max)
            && !matches!(self.state, TcpState::TimeWait | TcpState::Closed)
    }

    /// Retransmission timer fired: shrink to one segment and go again.
    pub fn on_rexmt_timeout(&mut self) {
        self.rto_events += 1;
        self.rexmt_backoff = (self.rexmt_backoff + 1).min(12);
        self.rto =
            Dur::nanos((self.rto.as_nanos().saturating_mul(2)).min(Dur::secs(64).as_nanos()));
        // Reno: collapse cwnd, halve ssthresh.
        let flight = self.flight_size().max(self.mss);
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.snd_nxt = self.snd_una;
        // A lost FIN must be re-emitted along with the rolled-back data.
        if self.fin_sent && seq::lt(self.snd_nxt, self.snd_max) {
            self.fin_sent = false;
        }
        self.rtt_seq = None; // Karn: no sampling across retransmit
        self.dupacks = 0;
    }

    /// Roll the send pointer back to the first unacknowledged byte without
    /// the congestion penalty of a timeout. Used by the driver's watchdog
    /// after a board reset: the data itself was never lost (it is retained
    /// in the send queue), only the adaptor's copy of it, so the next
    /// output pass re-emits everything from `snd_una`.
    pub fn rewind_for_rebuild(&mut self) {
        self.snd_nxt = self.snd_una;
        if self.fin_sent && seq::lt(self.snd_nxt, self.snd_max) {
            self.fin_sent = false;
        }
        self.rtt_seq = None;
        self.dupacks = 0;
    }

    fn update_rtt(&mut self, sample: Dur) {
        let srtt = match self.srtt {
            None => {
                self.rttvar = sample / 2;
                sample
            }
            Some(srtt) => {
                // RFC 6298 with alpha=1/8, beta=1/4 in integer arithmetic.
                let delta = if sample >= srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                self.rttvar = Dur::nanos((self.rttvar.as_nanos() * 3 + delta.as_nanos()) / 4);
                Dur::nanos((srtt.as_nanos() * 7 + sample.as_nanos()) / 8)
            }
        };
        self.srtt = Some(srtt);
        self.rto = (srtt + self.rttvar * 4).max(self.cfg_rto_min);
        self.rexmt_backoff = 0;
    }

    /// Process one inbound segment. `data` is the payload (already trimmed
    /// to the header's claims by the caller); the TCB trims it further to
    /// the receive window and handles reassembly.
    pub fn input(
        &mut self,
        hdr: &TcpHeader,
        mut data: Chain,
        rcv_space: usize,
        now: Time,
    ) -> InputResult {
        let mut r = InputResult::default();
        self.segs_in += 1;
        let orig_data_len = data.len() as u32;

        match self.state {
            TcpState::Closed => {
                r.rst_out = Some(rst_for(hdr, data.len()));
                return r;
            }
            TcpState::Listen => {
                if hdr.flags.rst() {
                    return r;
                }
                if hdr.flags.ack() {
                    r.rst_out = Some((hdr.ack, 0, TcpFlags::RST));
                    return r;
                }
                if hdr.flags.syn() {
                    self.irs = hdr.seq;
                    self.rcv_nxt = hdr.seq.wrapping_add(1);
                    self.state = TcpState::SynRcvd;
                    if let Some(peer_mss) = hdr.mss {
                        self.mss = self.mss.min(peer_mss as usize);
                    }
                    match hdr.window_scale {
                        Some(ws) => self.snd_scale = ws.min(14),
                        None => {
                            // Peer doesn't scale: neither do we.
                            self.rcv_scale = 0;
                            self.request_ws = false;
                        }
                    }
                    // Windows carried on SYN segments are never scaled.
                    self.snd_wnd = hdr.window as usize;
                    self.snd_wl1 = hdr.seq;
                    self.snd_wl2 = hdr.ack;
                    self.cwnd = self.mss;
                    r.need_output = true; // emit SYN|ACK
                }
                return r;
            }
            TcpState::SynSent => {
                if hdr.flags.ack()
                    && (seq::leq(hdr.ack, self.iss) || seq::gt(hdr.ack, self.snd_max))
                {
                    if !hdr.flags.rst() {
                        r.rst_out = Some((hdr.ack, 0, TcpFlags::RST));
                    }
                    return r;
                }
                if hdr.flags.rst() {
                    if hdr.flags.ack() {
                        self.state = TcpState::Closed;
                        r.closed = true;
                    }
                    return r;
                }
                if hdr.flags.syn() {
                    self.irs = hdr.seq;
                    self.rcv_nxt = hdr.seq.wrapping_add(1);
                    if let Some(peer_mss) = hdr.mss {
                        self.mss = self.mss.min(peer_mss as usize);
                    }
                    match hdr.window_scale {
                        Some(ws) => self.snd_scale = ws.min(14),
                        None => {
                            self.rcv_scale = 0;
                            self.request_ws = false;
                        }
                    }
                    // Windows carried on SYN segments are never scaled.
                    self.snd_wnd = hdr.window as usize;
                    self.snd_wl1 = hdr.seq;
                    self.snd_wl2 = hdr.ack;
                    if hdr.flags.ack() && seq::gt(hdr.ack, self.snd_una) {
                        self.snd_una = hdr.ack;
                        self.state = TcpState::Established;
                        self.cwnd = 2 * self.mss;
                        r.connected = true;
                        r.ack = AckMode::Now;
                    } else {
                        // Simultaneous open.
                        self.state = TcpState::SynRcvd;
                        r.need_output = true;
                    }
                }
                return r;
            }
            _ => {}
        }

        // --- synchronized states ---

        // Duplicate SYN (retransmitted handshake), handled before the
        // window check (BSD trims the old SYN and continues). In SYN_RCVD
        // the segment may be the peer's SYN|ACK of a *simultaneous open*:
        // its ACK completes our handshake even though its SYN is old.
        if hdr.flags.syn() && seq::lt(hdr.seq, self.rcv_nxt) {
            if self.state == TcpState::SynRcvd
                && hdr.flags.ack()
                && seq::gt(hdr.ack, self.snd_una)
                && seq::leq(hdr.ack, self.snd_max)
            {
                self.state = TcpState::Established;
                self.cwnd = 2 * self.mss;
                self.snd_una = hdr.ack;
                r.connected = true;
            }
            r.ack = AckMode::Now;
            return r;
        }

        // Segment acceptability (RFC 793 p.69, simplified window check).
        let seg_len = data.len() as u32 + u32::from(hdr.flags.syn()) + u32::from(hdr.flags.fin());
        let rcv_wnd = rcv_space as u32;
        let acceptable = if seg_len == 0 && rcv_wnd == 0 {
            hdr.seq == self.rcv_nxt
        } else if seg_len == 0 {
            seq::geq(hdr.seq, self.rcv_nxt.wrapping_sub(1))
                && seq::lt(hdr.seq, self.rcv_nxt.wrapping_add(rcv_wnd))
                || hdr.seq == self.rcv_nxt
        } else {
            // Any overlap with the window.
            let seg_end = hdr.seq.wrapping_add(seg_len);
            seq::lt(hdr.seq, self.rcv_nxt.wrapping_add(rcv_wnd.max(1)))
                && seq::gt(seg_end, self.rcv_nxt)
        };
        if !acceptable && !hdr.flags.rst() {
            r.ack = AckMode::Now; // resynchronizing ACK
            return r;
        }

        if hdr.flags.rst() {
            self.state = TcpState::Closed;
            r.closed = true;
            return r;
        }

        // ACK processing.
        if hdr.flags.ack() {
            let ack = hdr.ack;
            if self.state == TcpState::SynRcvd {
                if seq::gt(ack, self.snd_una) && seq::leq(ack, self.snd_max) {
                    self.state = TcpState::Established;
                    self.cwnd = 2 * self.mss;
                    r.connected = true;
                } else {
                    r.rst_out = Some((ack, 0, TcpFlags::RST));
                    return r;
                }
            }
            if seq::gt(ack, self.snd_max) {
                // Acks data we never sent.
                r.ack = AckMode::Now;
                return r;
            }
            if seq::gt(ack, self.snd_una) {
                // New data acknowledged.
                let mut newly = seq::diff(ack, self.snd_una) as usize;
                // Account the FIN's phantom byte.
                if self.fin_sent && ack == self.snd_max && newly > 0 {
                    newly -= 1;
                }
                // SYN phantom byte.
                if seq::leq(self.snd_una, self.iss) {
                    newly = newly.saturating_sub(1);
                }
                r.acked_bytes = newly;
                r.writer_space_freed = newly > 0;
                self.dupacks = 0;
                // RTT sample (Karn-compliant: only untransmitted-once seqs).
                if let (Some(rs), Some(start)) = (self.rtt_seq, self.rtt_start) {
                    if seq::geq(ack, rs) {
                        self.update_rtt(now.since(start));
                        self.rtt_seq = None;
                        self.rtt_start = None;
                    }
                }
                // Reno congestion window growth (capped well above any
                // window this simulation uses).
                if self.cwnd < self.ssthresh {
                    self.cwnd += self.mss;
                } else {
                    self.cwnd += (self.mss * self.mss / self.cwnd.max(1)).max(1);
                }
                self.cwnd = self.cwnd.min(16 * 1024 * 1024);
                self.snd_una = ack;
                if seq::lt(self.snd_nxt, self.snd_una) {
                    self.snd_nxt = self.snd_una;
                }
                r.need_output = true;

                // FIN acknowledged?
                let fin_acked = self.fin_sent && ack == self.snd_max;
                match (self.state, fin_acked) {
                    (TcpState::FinWait1, true) => self.state = TcpState::FinWait2,
                    (TcpState::Closing, true) => {
                        self.state = TcpState::TimeWait;
                    }
                    (TcpState::LastAck, true) => {
                        self.state = TcpState::Closed;
                        r.closed = true;
                        return r;
                    }
                    _ => {}
                }
            } else if ack == self.snd_una
                && data.is_empty()
                && !hdr.flags.syn()
                && !hdr.flags.fin()
                && seq::lt(self.snd_una, self.snd_max)
                && (hdr.window as usize) << self.snd_scale == self.snd_wnd
            {
                // Duplicate ACK.
                self.dupacks += 1;
                self.dup_acks_rcvd += 1;
                if self.dupacks == 3 {
                    // Fast retransmit.
                    self.fast_retransmits += 1;
                    let flight = self.flight_size().max(self.mss);
                    self.ssthresh = (flight / 2).max(2 * self.mss);
                    self.cwnd = self.ssthresh;
                    self.snd_nxt = self.snd_una;
                    self.rtt_seq = None;
                    r.need_output = true;
                }
            }
            // Window update (RFC 793 SND.WL1/WL2 rules).
            if seq::lt(self.snd_wl1, hdr.seq)
                || (self.snd_wl1 == hdr.seq && seq::leq(self.snd_wl2, ack))
            {
                let new_wnd = (hdr.window as usize) << self.snd_scale;
                if new_wnd > self.snd_wnd {
                    r.need_output = true;
                }
                self.snd_wnd = new_wnd;
                self.snd_wl1 = hdr.seq;
                self.snd_wl2 = ack;
            }
        }

        // Payload processing.
        if !data.is_empty()
            && matches!(
                self.state,
                TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
            )
        {
            let mut seg_seq = hdr.seq;
            // Trim data already received.
            if seq::lt(seg_seq, self.rcv_nxt) {
                let dup = seq::diff(self.rcv_nxt, seg_seq) as usize;
                if dup >= data.len() {
                    data.truncate(0);
                } else {
                    data.drop_front(dup);
                }
                seg_seq = self.rcv_nxt;
            }
            // Trim beyond the window.
            let max_take = rcv_space.saturating_sub(seq::diff(seg_seq, self.rcv_nxt) as usize);
            if data.len() > max_take {
                data.truncate(max_take);
            }
            if !data.is_empty() {
                if seg_seq == self.rcv_nxt {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(data.len() as u32);
                    r.deliver.push(data);
                    // Pull contiguous reassembled segments.
                    while let Some((s, mut c)) = self.reass.pop_first() {
                        if seq::gt(s, self.rcv_nxt) {
                            // Not contiguous yet; keep it queued.
                            self.reass.insert(s, c);
                            break;
                        }
                        let dup = seq::diff(self.rcv_nxt, s) as usize;
                        if dup >= c.len() {
                            continue;
                        }
                        if dup > 0 {
                            c.drop_front(dup);
                        }
                        self.rcv_nxt = self.rcv_nxt.wrapping_add(c.len() as u32);
                        r.deliver.push(c);
                    }
                    self.segs_since_ack += 1;
                    r.ack = if self.segs_since_ack >= self.cfg_delack_every {
                        self.segs_since_ack = 0;
                        AckMode::Now
                    } else {
                        self.delack_pending = true;
                        AckMode::Delayed
                    };
                } else {
                    // Out of order: queue and ACK immediately (dupack trigger
                    // for the sender's fast retransmit).
                    if self.reass.len() < MAX_REASS_SEGS {
                        self.reass.entry(seg_seq).or_insert(data);
                    }
                    r.ack = AckMode::Now;
                }
            }
        }

        // FIN processing.
        if hdr.flags.fin() {
            let fin_seq = hdr.seq.wrapping_add(orig_data_len);
            if self.fin_seq.is_none() {
                self.fin_seq = Some(fin_seq);
            }
            if fin_seq == self.rcv_nxt && self.reass.is_empty() {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                r.fin_reached = true;
                r.ack = AckMode::Now;
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait1 => {
                        // Our FIN not yet acked: simultaneous close.
                        self.state = TcpState::Closing;
                    }
                    TcpState::FinWait2 => {
                        self.state = TcpState::TimeWait;
                    }
                    _ => {}
                }
            }
        }

        r
    }

    /// TIME_WAIT expired.
    pub fn on_time_wait_expired(&mut self) -> bool {
        if self.state == TcpState::TimeWait {
            self.state = TcpState::Closed;
            true
        } else {
            false
        }
    }

    /// Reset the RTO back-off state after a successful fresh measurement
    /// window (used by tests; `update_rtt` does this on samples).
    pub fn reset_backoff(&mut self) {
        self.rexmt_backoff = 0;
        self.rto = self.cfg_rto_initial;
    }

    /// Pull the delayed-ACK flag (delack timer fired).
    pub fn take_delack(&mut self) -> bool {
        let fired = std::mem::take(&mut self.delack_pending);
        if fired {
            self.delayed_acks += 1;
        }
        fired
    }
}

/// Netstat-style aggregate of per-connection TCP counters. The kernel folds
/// a connection's counters in here on socket teardown and sums the live
/// control blocks on demand, so reports survive connection close.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Segments delivered to connection input processing.
    pub segs_in: u64,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// Fast-retransmit events (3 duplicate ACKs).
    pub fast_retransmits: u64,
    /// Retransmission timeouts taken.
    pub rto_events: u64,
    /// Duplicate ACKs received.
    pub dup_acks_rcvd: u64,
    /// Sender stalls on a zero usable window.
    pub window_stalls: u64,
    /// Payload bytes placed on the wire.
    pub bytes_sent: u64,
    /// Payload bytes re-sent.
    pub bytes_retx: u64,
    /// ACKs released by the delayed-ACK timer.
    pub delayed_acks: u64,
}

impl TcpStats {
    /// Fold one control block's counters into this aggregate.
    pub fn absorb(&mut self, tcb: &Tcb) {
        self.segs_in += tcb.segs_in;
        self.retransmits += tcb.retransmits;
        self.fast_retransmits += tcb.fast_retransmits;
        self.rto_events += tcb.rto_events;
        self.dup_acks_rcvd += tcb.dup_acks_rcvd;
        self.window_stalls += tcb.window_stalls;
        self.bytes_sent += tcb.bytes_sent;
        self.bytes_retx += tcb.bytes_retx;
        self.delayed_acks += tcb.delayed_acks;
    }

    /// Elementwise sum of two aggregates.
    pub fn merged(mut self, other: TcpStats) -> TcpStats {
        self.segs_in += other.segs_in;
        self.retransmits += other.retransmits;
        self.fast_retransmits += other.fast_retransmits;
        self.rto_events += other.rto_events;
        self.dup_acks_rcvd += other.dup_acks_rcvd;
        self.window_stalls += other.window_stalls;
        self.bytes_sent += other.bytes_sent;
        self.bytes_retx += other.bytes_retx;
        self.delayed_acks += other.delayed_acks;
        self
    }
}

/// Helper extension: sequence-space max.
trait SeqMax {
    fn max_seq(self, other: u32) -> u32;
}

impl SeqMax for u32 {
    fn max_seq(self, other: u32) -> u32 {
        if seq::geq(self, other) {
            self
        } else {
            other
        }
    }
}

/// RST reply fields for a segment arriving on a closed connection.
fn rst_for(hdr: &TcpHeader, data_len: usize) -> (u32, u32, TcpFlags) {
    if hdr.flags.ack() {
        (hdr.ack, 0, TcpFlags::RST)
    } else {
        (
            0,
            hdr.seq
                .wrapping_add(data_len as u32)
                .wrapping_add(u32::from(hdr.flags.syn())),
            TcpFlags::RST | TcpFlags::ACK,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StackConfig;

    const MSS: usize = 32 * 1024 - 40;
    const BUF: usize = 512 * 1024;

    /// A minimal in-test endpoint: a TCB plus byte queues standing in for
    /// the socket buffers.
    struct Ep {
        tcb: Tcb,
        /// Unacknowledged + unsent bytes, front == snd_una.
        snd_q: Vec<u8>,
        /// Delivered in-order payload.
        rcv: Vec<u8>,
        now: Time,
    }

    impl Ep {
        fn new(iss: u32) -> Ep {
            let cfg = StackConfig::single_copy();
            Ep {
                tcb: Tcb::new(&cfg, iss, false),
                snd_q: Vec::new(),
                rcv: Vec::new(),
                now: Time::ZERO,
            }
        }

        fn rcv_space(&self) -> usize {
            BUF
        }

        fn plans(&mut self, force_ack: bool) -> Vec<SegmentPlan> {
            self.tcb
                .output(self.snd_q.len(), self.rcv_space(), force_ack, self.now)
        }

        fn emit(&mut self, force_ack: bool) -> Vec<(TcpHeader, Chain)> {
            let plans = self.plans(force_ack);
            plans
                .into_iter()
                .map(|p| {
                    let mut h = TcpHeader::new(1, 2, p.seq, p.ack, p.flags);
                    h.window = p.window;
                    h.mss = p.mss_opt;
                    h.window_scale = p.ws_opt;
                    let data = Chain::from_slice(&self.snd_q[p.data_off..p.data_off + p.data_len]);
                    (h, data)
                })
                .collect()
        }

        fn input(&mut self, hdr: &TcpHeader, data: Chain) -> InputResult {
            let space = self.rcv_space();
            let r = self.tcb.input(hdr, data, space, self.now);
            for c in &r.deliver {
                self.rcv.extend_from_slice(&c.flatten_kernel().unwrap());
            }
            if r.acked_bytes > 0 {
                self.snd_q.drain(..r.acked_bytes);
            }
            r
        }
    }

    /// Run segments back and forth until both sides go quiet.
    fn converge(a: &mut Ep, b: &mut Ep) {
        for _ in 0..200 {
            let mut moved = false;
            let plans_a = a.emit(false);
            for (h, d) in plans_a {
                moved = true;
                let r = b.input(&h, d);
                if r.ack == AckMode::Now || r.need_output {
                    for (h2, d2) in b.emit(r.ack == AckMode::Now) {
                        a.input(&h2, d2);
                    }
                }
            }
            let plans_b = b.emit(false);
            for (h, d) in plans_b {
                moved = true;
                let r = a.input(&h, d);
                if r.ack == AckMode::Now || r.need_output {
                    for (h2, d2) in a.emit(r.ack == AckMode::Now) {
                        b.input(&h2, d2);
                    }
                }
            }
            // Stand-in for the 200 ms delayed-ACK timer.
            if a.tcb.take_delack() {
                for (h, d) in a.emit(true) {
                    moved = true;
                    b.input(&h, d);
                }
            }
            if b.tcb.take_delack() {
                for (h, d) in b.emit(true) {
                    moved = true;
                    a.input(&h, d);
                }
            }
            if !moved {
                break;
            }
        }
    }

    fn establish() -> (Ep, Ep) {
        let mut a = Ep::new(1000);
        let mut b = Ep::new(9000);
        a.tcb.connect(MSS, BUF);
        b.tcb.listen(MSS, BUF);
        converge(&mut a, &mut b);
        assert_eq!(a.tcb.state, TcpState::Established);
        assert_eq!(b.tcb.state, TcpState::Established);
        (a, b)
    }

    #[test]
    fn handshake_negotiates_mss_and_scaling() {
        let (a, b) = establish();
        assert_eq!(a.tcb.mss, MSS);
        assert_eq!(b.tcb.mss, MSS);
        // 512 KB needs a shift of 4 (0xFFFF << 3 is 8 bytes short).
        assert_eq!(a.tcb.rcv_scale, 4);
        assert_eq!(a.tcb.snd_scale, 4);
        assert_eq!(b.tcb.snd_scale, 4);
    }

    #[test]
    fn bulk_transfer_in_order() {
        let (mut a, mut b) = establish();
        let data: Vec<u8> = (0..200_000u32).map(|i| (i * 7) as u8).collect();
        a.snd_q = data.clone();
        converge(&mut a, &mut b);
        assert_eq!(b.rcv, data);
        assert!(a.snd_q.is_empty(), "everything acked");
        assert_eq!(a.tcb.snd_una, a.tcb.snd_max);
    }

    #[test]
    fn window_scaling_allows_large_flight() {
        let (mut a, _b) = establish();
        // Peer advertised 512 KB (scaled); cwnd grows past 64 KB quickly.
        a.tcb.cwnd = BUF;
        a.tcb.snd_wnd = BUF;
        a.snd_q = vec![0u8; 300_000];
        let plans = a.plans(false);
        let sent: usize = plans.iter().map(|p| p.data_len).sum();
        assert!(
            sent > 64 * 1024,
            "only {sent} bytes sent; scaling not applied"
        );
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut a, mut b) = establish();
        a.snd_q = vec![1, 2, 3];
        a.tcb.close();
        converge(&mut a, &mut b);
        assert_eq!(b.rcv, vec![1, 2, 3]);
        assert_eq!(b.tcb.state, TcpState::CloseWait);
        assert_eq!(a.tcb.state, TcpState::FinWait2);
        b.tcb.close();
        converge(&mut a, &mut b);
        assert_eq!(b.tcb.state, TcpState::Closed);
        assert_eq!(a.tcb.state, TcpState::TimeWait);
        assert!(a.tcb.on_time_wait_expired());
        assert_eq!(a.tcb.state, TcpState::Closed);
    }

    #[test]
    fn lost_segment_recovered_by_rto() {
        let (mut a, mut b) = establish();
        a.tcb.cwnd = BUF;
        a.tcb.snd_wnd = BUF;
        let data: Vec<u8> = (0..80_000u32).map(|i| i as u8).collect();
        a.snd_q = data.clone();
        let plans = a.plans(false);
        assert!(plans.len() >= 2);
        // Drop the first data segment, deliver the rest (out of order).
        for (i, p) in plans.iter().enumerate() {
            if i == 0 {
                continue;
            }
            let mut h = TcpHeader::new(1, 2, p.seq, p.ack, p.flags);
            h.window = p.window;
            let d = Chain::from_slice(&data[p.data_off..p.data_off + p.data_len]);
            let r = b.input(&h, d);
            assert_eq!(r.ack, AckMode::Now, "out-of-order data acks immediately");
        }
        assert!(b.rcv.is_empty(), "nothing in order yet");
        // RTO fires on the sender.
        assert!(a.tcb.wants_rexmt_timer());
        a.tcb.on_rexmt_timeout();
        assert_eq!(a.tcb.snd_nxt, a.tcb.snd_una);
        converge(&mut a, &mut b);
        assert_eq!(b.rcv, data, "reassembly completed after retransmit");
        assert!(a.tcb.retransmits > 0);
        assert_eq!(a.tcb.rto_events, 1);
    }

    #[test]
    fn fast_retransmit_on_three_dupacks() {
        let (mut a, mut b) = establish();
        a.tcb.cwnd = BUF;
        a.tcb.snd_wnd = BUF;
        let data: Vec<u8> = vec![0xAB; 5 * MSS];
        a.snd_q = data.clone();
        let plans = a.plans(false);
        assert!(plans.len() >= 4, "{} segments", plans.len());
        // Drop segment 0; deliver 1..4 → three immediate dupacks.
        let mut dupacks = Vec::new();
        for p in plans.iter().skip(1) {
            let mut h = TcpHeader::new(1, 2, p.seq, p.ack, p.flags);
            h.window = p.window;
            let d = Chain::from_slice(&data[p.data_off..p.data_off + p.data_len]);
            b.input(&h, d);
            let acks = b.emit(true);
            dupacks.extend(acks);
        }
        assert!(dupacks.len() >= 3);
        for (h, d) in dupacks {
            a.input(&h, d);
        }
        assert!(a.tcb.fast_retransmits >= 1, "fast retransmit triggered");
        converge(&mut a, &mut b);
        assert_eq!(b.rcv, data);
    }

    #[test]
    fn nagle_holds_sub_mss_tail() {
        let (mut a, _b) = establish();
        a.tcb.nagle = true;
        a.tcb.cwnd = BUF;
        a.snd_q = vec![0u8; 100];
        // First small write goes out (nothing outstanding).
        let p1 = a.plans(false);
        assert_eq!(p1.len(), 1);
        assert_eq!(p1[0].data_len, 100);
        // More small data while un-ACKed: held back.
        a.snd_q.extend_from_slice(&[0u8; 100]);
        let p2 = a.plans(false);
        assert!(p2.is_empty(), "Nagle must hold the tail: {p2:?}");
        // Without Nagle it would go.
        a.tcb.nagle = false;
        let p3 = a.plans(false);
        assert_eq!(p3.len(), 1);
    }

    #[test]
    fn rst_for_segment_to_closed_port() {
        let cfg = StackConfig::single_copy();
        let mut closed = Tcb::new(&cfg, 1, false);
        let mut h = TcpHeader::new(5, 6, 777, 0, TcpFlags::SYN);
        h.window = 100;
        let r = closed.input(&h, Chain::new(), BUF, Time::ZERO);
        let (_seq, ack, flags) = r.rst_out.expect("RST for closed port");
        assert!(flags.rst() && flags.ack());
        assert_eq!(ack, 778, "acks the SYN");
    }

    #[test]
    fn rtt_estimation_updates_rto() {
        let (mut a, mut b) = establish();
        a.tcb.cwnd = BUF;
        a.now = Time(0);
        a.snd_q = vec![0u8; 1000];
        let plans = a.plans(false);
        assert_eq!(plans.len(), 1);
        let p = &plans[0];
        let mut h = TcpHeader::new(1, 2, p.seq, p.ack, p.flags);
        h.window = p.window;
        b.input(&h, Chain::from_slice(&a.snd_q[..1000]));
        let acks = b.emit(true);
        // ACK arrives 2 ms later.
        a.now = Time::ZERO + Dur::millis(2);
        for (h, d) in acks {
            a.input(&h, d);
        }
        let srtt = a.tcb.srtt.expect("rtt sampled");
        assert_eq!(srtt, Dur::millis(2));
        assert_eq!(a.tcb.rto, Dur::millis(500), "clamped to rto_min");
    }

    #[test]
    fn delayed_ack_every_second_segment() {
        let (mut a, mut b) = establish();
        a.tcb.cwnd = BUF;
        a.tcb.snd_wnd = BUF;
        a.snd_q = vec![0u8; 3 * MSS];
        let plans = a.plans(false);
        let mut modes = Vec::new();
        for p in &plans {
            let mut h = TcpHeader::new(1, 2, p.seq, p.ack, p.flags);
            h.window = p.window;
            let d = Chain::from_slice(&a.snd_q[p.data_off..p.data_off + p.data_len]);
            let r = b.input(&h, d);
            modes.push(r.ack);
        }
        assert_eq!(
            modes,
            vec![AckMode::Delayed, AckMode::Now, AckMode::Delayed],
            "BSD acks every 2nd in-order segment"
        );
        assert!(
            b.tcb.delack_pending,
            "third segment leaves a pending delack"
        );
        assert!(b.tcb.take_delack());
        assert!(!b.tcb.delack_pending);
    }

    #[test]
    fn zero_window_stops_sender() {
        let (mut a, _b) = establish();
        a.tcb.cwnd = BUF;
        a.tcb.snd_wnd = 0;
        a.snd_q = vec![0u8; 1000];
        let plans = a.plans(false);
        assert!(plans.is_empty(), "no data into a zero window: {plans:?}");
    }

    #[test]
    fn duplicate_data_is_trimmed() {
        let (mut a, mut b) = establish();
        a.tcb.cwnd = BUF;
        a.snd_q = (0..1000u32).map(|i| i as u8).collect();
        let plans = a.plans(false);
        let p = &plans[0];
        let mut h = TcpHeader::new(1, 2, p.seq, p.ack, p.flags);
        h.window = p.window;
        let d = Chain::from_slice(&a.snd_q[..1000]);
        b.input(&h, d.clone());
        // Same segment again (retransmission of delivered data).
        let r = b.input(&h, d);
        assert!(r.deliver.is_empty(), "duplicate fully trimmed");
        assert_eq!(r.ack, AckMode::Now, "duplicate re-ACKed for sender sync");
        assert_eq!(b.rcv.len(), 1000);
    }

    #[test]
    fn scale_for_computes_minimal_shift() {
        assert_eq!(Tcb::scale_for(0xFFFF), 0);
        assert_eq!(Tcb::scale_for(0x10000), 1);
        assert_eq!(Tcb::scale_for(0xFFFF << 3), 3);
        assert_eq!(Tcb::scale_for(512 * 1024), 4);
        assert_eq!(Tcb::scale_for(1 << 30), 14);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::types::StackConfig;
    use outboard_wire::tcp::{TcpFlags, TcpHeader};

    const BUF: usize = 512 * 1024;

    fn hdr(seq: u32, ack: u32, flags: TcpFlags, window: u16) -> TcpHeader {
        let mut h = TcpHeader::new(1, 2, seq, ack, flags);
        h.window = window;
        h
    }

    /// Simultaneous open: both sides send SYN before seeing the other's.
    #[test]
    fn simultaneous_open_reaches_established() {
        let cfg = StackConfig::single_copy();
        let mut a = Tcb::new(&cfg, 1000, false);
        let mut b = Tcb::new(&cfg, 9000, false);
        a.connect(1460, BUF);
        b.connect(1460, BUF);
        let pa = a.output(0, BUF, false, Time::ZERO);
        let pb = b.output(0, BUF, false, Time::ZERO);
        assert!(pa[0].flags.syn() && pb[0].flags.syn());
        // Cross-deliver the SYNs.
        let mut ha = hdr(pa[0].seq, 0, TcpFlags::SYN, pa[0].window);
        ha.mss = pa[0].mss_opt;
        ha.window_scale = pa[0].ws_opt;
        let mut hb = hdr(pb[0].seq, 0, TcpFlags::SYN, pb[0].window);
        hb.mss = pb[0].mss_opt;
        hb.window_scale = pb[0].ws_opt;
        let ra = a.input(&hb, Chain::new(), BUF, Time::ZERO);
        let rb = b.input(&ha, Chain::new(), BUF, Time::ZERO);
        assert!(ra.need_output && rb.need_output, "both emit SYN|ACK");
        assert_eq!(a.state, TcpState::SynRcvd);
        assert_eq!(b.state, TcpState::SynRcvd);
        // Cross-deliver the SYN|ACKs.
        let pa2 = a.output(0, BUF, false, Time::ZERO);
        let pb2 = b.output(0, BUF, false, Time::ZERO);
        let ha2 = {
            let mut h = hdr(pa2[0].seq, pa2[0].ack, pa2[0].flags, pa2[0].window);
            h.mss = pa2[0].mss_opt;
            h.window_scale = pa2[0].ws_opt;
            h
        };
        let hb2 = {
            let mut h = hdr(pb2[0].seq, pb2[0].ack, pb2[0].flags, pb2[0].window);
            h.mss = pb2[0].mss_opt;
            h.window_scale = pb2[0].ws_opt;
            h
        };
        let ra2 = a.input(&hb2, Chain::new(), BUF, Time::ZERO);
        let rb2 = b.input(&ha2, Chain::new(), BUF, Time::ZERO);
        assert!(ra2.connected || a.state == TcpState::Established);
        assert!(rb2.connected || b.state == TcpState::Established);
    }

    /// Simultaneous close: both FINs in flight at once → Closing →
    /// TIME_WAIT on both sides.
    #[test]
    fn simultaneous_close() {
        let cfg = StackConfig::single_copy();
        let mut a = Tcb::new(&cfg, 1000, false);
        let mut b = Tcb::new(&cfg, 9000, false);
        // Hand-establish.
        a.connect(1460, BUF);
        b.listen(1460, BUF);
        let pa = a.output(0, BUF, false, Time::ZERO);
        let mut syn = hdr(pa[0].seq, 0, TcpFlags::SYN, pa[0].window);
        syn.mss = pa[0].mss_opt;
        syn.window_scale = pa[0].ws_opt;
        b.input(&syn, Chain::new(), BUF, Time::ZERO);
        let pb = b.output(0, BUF, false, Time::ZERO);
        let mut synack = hdr(pb[0].seq, pb[0].ack, pb[0].flags, pb[0].window);
        synack.mss = pb[0].mss_opt;
        synack.window_scale = pb[0].ws_opt;
        a.input(&synack, Chain::new(), BUF, Time::ZERO);
        let pa2 = a.output(0, BUF, true, Time::ZERO);
        b.input(
            &hdr(pa2[0].seq, pa2[0].ack, pa2[0].flags, pa2[0].window),
            Chain::new(),
            BUF,
            Time::ZERO,
        );
        assert_eq!(a.state, TcpState::Established);
        assert_eq!(b.state, TcpState::Established);

        // Both close; FINs cross.
        a.close();
        b.close();
        let fa = a.output(0, BUF, false, Time::ZERO);
        let fb = b.output(0, BUF, false, Time::ZERO);
        assert!(fa[0].flags.fin() && fb[0].flags.fin());
        a.input(
            &hdr(fb[0].seq, fb[0].ack, fb[0].flags, fb[0].window),
            Chain::new(),
            BUF,
            Time::ZERO,
        );
        b.input(
            &hdr(fa[0].seq, fa[0].ack, fa[0].flags, fa[0].window),
            Chain::new(),
            BUF,
            Time::ZERO,
        );
        assert_eq!(a.state, TcpState::Closing);
        assert_eq!(b.state, TcpState::Closing);
        // Exchange the final ACKs.
        let aa = a.output(0, BUF, true, Time::ZERO);
        let ab = b.output(0, BUF, true, Time::ZERO);
        a.input(
            &hdr(ab[0].seq, ab[0].ack, ab[0].flags, ab[0].window),
            Chain::new(),
            BUF,
            Time::ZERO,
        );
        b.input(
            &hdr(aa[0].seq, aa[0].ack, aa[0].flags, aa[0].window),
            Chain::new(),
            BUF,
            Time::ZERO,
        );
        assert_eq!(a.state, TcpState::TimeWait);
        assert_eq!(b.state, TcpState::TimeWait);
    }

    /// A duplicate (retransmitted) SYN on an established connection only
    /// provokes a re-ACK, never a state change.
    #[test]
    fn duplicate_syn_is_reacked() {
        let cfg = StackConfig::single_copy();
        let mut b = Tcb::new(&cfg, 9000, false);
        b.listen(1460, BUF);
        let syn = {
            let mut h = hdr(5000, 0, TcpFlags::SYN, 1000);
            h.mss = Some(1460);
            h
        };
        b.input(&syn, Chain::new(), BUF, Time::ZERO);
        b.output(0, BUF, false, Time::ZERO); // SYN|ACK out
                                             // Complete handshake.
        b.input(
            &hdr(5001, b.snd_nxt, TcpFlags::ACK, 1000),
            Chain::new(),
            BUF,
            Time::ZERO,
        );
        assert_eq!(b.state, TcpState::Established);
        // The duplicate SYN arrives (client never saw the SYN|ACK).
        let r = b.input(&syn, Chain::new(), BUF, Time::ZERO);
        assert_eq!(b.state, TcpState::Established, "no state regression");
        assert_eq!(r.ack, AckMode::Now, "resynchronizing ACK");
    }

    /// Data arriving in TIME_WAIT / after close is not delivered.
    #[test]
    fn no_delivery_after_fin_consumed() {
        let cfg = StackConfig::single_copy();
        let mut b = Tcb::new(&cfg, 9000, false);
        b.listen(1460, BUF);
        let mut syn = hdr(5000, 0, TcpFlags::SYN, 1000);
        syn.mss = Some(1460);
        b.input(&syn, Chain::new(), BUF, Time::ZERO);
        b.output(0, BUF, false, Time::ZERO);
        b.input(
            &hdr(5001, b.snd_nxt, TcpFlags::ACK, 1000),
            Chain::new(),
            BUF,
            Time::ZERO,
        );
        // Peer sends FIN.
        let r = b.input(
            &hdr(5001, b.snd_nxt, TcpFlags::FIN | TcpFlags::ACK, 1000),
            Chain::new(),
            BUF,
            Time::ZERO,
        );
        assert!(r.fin_reached);
        assert_eq!(b.state, TcpState::CloseWait);
        // Late data beyond the FIN: not deliverable.
        let r = b.input(
            &hdr(5002, b.snd_nxt, TcpFlags::ACK, 1000),
            Chain::from_slice(&[1, 2, 3]),
            BUF,
            Time::ZERO,
        );
        assert!(r.deliver.is_empty(), "no data after FIN");
    }
}

#[cfg(test)]
mod congestion_tests {
    use super::*;
    use crate::types::StackConfig;

    #[test]
    fn rto_collapses_cwnd_and_backs_off() {
        let cfg = StackConfig::single_copy();
        let mut t = Tcb::new(&cfg, 1000, false);
        t.connect(1460, 512 * 1024);
        t.state = TcpState::Established;
        t.snd_una = 1001;
        t.snd_nxt = 1001 + 20 * 1460;
        t.snd_max = t.snd_nxt;
        t.cwnd = 20 * 1460;
        t.ssthresh = usize::MAX / 2;
        let rto0 = t.rto;
        t.on_rexmt_timeout();
        assert_eq!(t.cwnd, t.mss, "cwnd collapses to one segment");
        assert_eq!(t.ssthresh, 10 * 1460, "ssthresh = flight/2");
        assert_eq!(t.snd_nxt, t.snd_una, "go-back-N");
        assert_eq!(t.rto, rto0 * 2, "exponential backoff");
        t.on_rexmt_timeout();
        assert_eq!(t.rto, rto0 * 4);
    }

    #[test]
    fn slow_start_then_congestion_avoidance() {
        let cfg = StackConfig::single_copy();
        let mut t = Tcb::new(&cfg, 1000, false);
        t.connect(1000, 512 * 1024);
        t.state = TcpState::Established;
        t.snd_una = 1001;
        t.snd_wl1 = 1;
        t.snd_wl2 = 1;
        t.cwnd = 1000;
        t.ssthresh = 4000;
        // ACK 1000 new bytes: slow start adds a full MSS.
        t.snd_nxt = t.snd_una.wrapping_add(8000);
        t.snd_max = t.snd_nxt;
        let h = {
            let mut h = outboard_wire::tcp::TcpHeader::new(
                2,
                1,
                5,
                t.snd_una.wrapping_add(1000),
                outboard_wire::tcp::TcpFlags::ACK,
            );
            h.window = 0xFFFF;
            h
        };
        t.input(&h, Chain::new(), 512 * 1024, Time::ZERO);
        assert_eq!(t.cwnd, 2000, "slow start: +mss per ACK");
        // Push cwnd past ssthresh: growth becomes ~mss^2/cwnd.
        t.cwnd = 5000;
        let h2 = {
            let mut h = outboard_wire::tcp::TcpHeader::new(
                2,
                1,
                6,
                t.snd_una.wrapping_add(1000),
                outboard_wire::tcp::TcpFlags::ACK,
            );
            h.window = 0xFFFF;
            h
        };
        t.input(&h2, Chain::new(), 512 * 1024, Time::ZERO);
        assert_eq!(t.cwnd, 5000 + 1000 * 1000 / 5000, "congestion avoidance");
    }

    #[test]
    fn fast_retransmit_halves_to_ssthresh() {
        let cfg = StackConfig::single_copy();
        let mut t = Tcb::new(&cfg, 1000, false);
        t.connect(1460, 512 * 1024);
        t.state = TcpState::Established;
        t.snd_una = 1001;
        t.snd_wl1 = 1;
        t.snd_wl2 = 1;
        t.snd_nxt = 1001 + 10 * 1460;
        t.snd_max = t.snd_nxt;
        t.cwnd = 10 * 1460;
        t.snd_wnd = 10 * 1460;
        let dup = {
            let mut h = outboard_wire::tcp::TcpHeader::new(
                2,
                1,
                5,
                1001,
                outboard_wire::tcp::TcpFlags::ACK,
            );
            h.window = (10 * 1460u32) as u16;
            h
        };
        for _ in 0..3 {
            t.input(&dup, Chain::new(), 512 * 1024, Time::ZERO);
        }
        assert_eq!(t.fast_retransmits, 1);
        assert_eq!(t.ssthresh, 5 * 1460);
        assert_eq!(t.cwnd, t.ssthresh, "Reno: cwnd = ssthresh");
        assert_eq!(t.snd_nxt, t.snd_una, "retransmit from the hole");
    }
}
