//! Routing: longest-prefix match over a small table.
//!
//! §4.1 motivates the single-stack design partly with routing: "routing
//! relies on a single stack, at least up to the network layer" — packets may
//! arrive on one interface and leave on another, so interface selection
//! happens here, in the network layer, not at the socket (which is exactly
//! why a per-interface parallel stack cannot work).

use crate::types::IfaceId;
use std::net::Ipv4Addr;

/// One route: `dest/prefix_len` reachable via `iface`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Destination network.
    pub dest: Ipv4Addr,
    /// Prefix length in bits (32 = host route).
    pub prefix_len: u8,
    /// Outgoing interface.
    pub iface: IfaceId,
}

impl Route {
    fn matches(&self, ip: Ipv4Addr) -> bool {
        let mask = if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix_len as u32)
        };
        (u32::from(ip) & mask) == (u32::from(self.dest) & mask)
    }
}

/// The routing table.
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Install a route.
    pub fn add(&mut self, dest: Ipv4Addr, prefix_len: u8, iface: IfaceId) {
        assert!(prefix_len <= 32);
        self.routes.push(Route {
            dest,
            prefix_len,
            iface,
        });
        // Keep longest prefixes first so lookup is a linear scan.
        self.routes.sort_by_key(|r| std::cmp::Reverse(r.prefix_len));
    }

    /// Longest-prefix match.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<IfaceId> {
        self.routes.iter().find(|r| r.matches(ip)).map(|r| r.iface)
    }

    /// Remove every route (used by tests that re-point a live connection
    /// at a different interface — the §4.1 "stack switch" scenario).
    pub fn clear(&mut self) {
        self.routes.clear();
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut t = RouteTable::new();
        t.add(Ipv4Addr::new(0, 0, 0, 0), 0, IfaceId(0)); // default
        t.add(Ipv4Addr::new(10, 0, 0, 0), 8, IfaceId(1));
        t.add(Ipv4Addr::new(10, 1, 0, 0), 16, IfaceId(2));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 2, 3)), Some(IfaceId(2)));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 2, 2, 3)), Some(IfaceId(1)));
        assert_eq!(t.lookup(Ipv4Addr::new(192, 168, 0, 1)), Some(IfaceId(0)));
    }

    #[test]
    fn host_route() {
        let mut t = RouteTable::new();
        t.add(Ipv4Addr::new(10, 0, 0, 0), 8, IfaceId(1));
        t.add(Ipv4Addr::new(10, 0, 0, 7), 32, IfaceId(3));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 0, 0, 7)), Some(IfaceId(3)));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 0, 0, 8)), Some(IfaceId(1)));
    }

    #[test]
    fn no_route() {
        let mut t = RouteTable::new();
        t.add(Ipv4Addr::new(10, 0, 0, 0), 24, IfaceId(1));
        assert_eq!(t.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }
}
