//! Differential property test: the timing wheel must be observationally
//! identical to the reference heap queue under arbitrary interleavings of
//! schedules and expiries — same pop order, same timestamps, same clock,
//! same length at every step.
//!
//! The operation generator is biased toward the cases where wheel and heap
//! could plausibly diverge:
//!
//! * same-instant bursts (FIFO tie-break across slot/batch/early paths);
//! * scheduling while draining (pushes landing at or before the cursor
//!   after peeks advanced it);
//! * far-future times that overflow the wheel's 2^40 ns window;
//! * the heap-mode/wheel-mode transition (exercised both ways: the default
//!   spill threshold crosses naturally on large pending sets, and a zero
//!   threshold forces every entry through the slot hierarchy).

use outboard_sim::{EventQueue, Time, TimingWheel};
use proptest::prelude::*;

/// One step of the differential workload.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + offset`; the offset class picks the wheel level.
    Push(u64),
    /// Schedule `count` events at exactly `now + offset` (tie-break burst).
    Burst(u64, u8),
    /// Pop once and compare.
    Pop,
    /// Peek (may advance the wheel cursor), then push below the peeked
    /// time, then pop — the schedule-while-draining shape.
    PeekPushPop(u64),
}

/// Map a (class, raw) pair to an offset whose class picks the wheel level
/// the event lands on (the vendored proptest stand-in has no `prop_oneof!`,
/// so the branch choice is an explicit generated discriminant).
fn offset(class: u8, raw: u64) -> u64 {
    match class % 6 {
        0 => 0,                                               // same instant
        1 => 1 + raw % 0xFF,                                  // inside one grain window
        2 => 0x100 + raw % (0x1_0000 - 0x100),                // level 0
        3 => 0x1_0000 + raw % (0x100_0000 - 0x1_0000),        // levels 1..2
        4 => 0x100_0000 + raw % (0x1_0000_0000 - 0x100_0000), // levels 2..3
        _ => 0x100_0000_0000 + raw % 0xF00_0000_0000,         // overflow heap
    }
}

/// Generate one op from primitive draws: `kind` weights pushes and pops
/// 3:3:1:1 so sequences both grow and drain.
fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<u8>(), any::<u8>(), any::<u64>(), any::<u8>()).prop_map(|(kind, class, raw, n)| {
        match kind % 8 {
            0..=2 => Op::Push(offset(class, raw)),
            3..=5 => Op::Pop,
            6 => Op::Burst(offset(class, raw), 1 + n % 11),
            _ => Op::PeekPushPop(offset(class, raw)),
        }
    })
}

/// Run the op sequence against both schedulers, asserting identical
/// observable behavior after every operation.
fn run_differential(ops: Vec<Op>, mut wheel: TimingWheel<u64>) {
    let mut heap = EventQueue::new();
    let mut id = 0u64;
    for op in ops {
        match op {
            Op::Push(off) => {
                let at = Time(heap.now().nanos() + off);
                heap.push(at, id);
                wheel.push(at, id);
                id += 1;
            }
            Op::Burst(off, n) => {
                let at = Time(heap.now().nanos() + off);
                for _ in 0..n {
                    heap.push(at, id);
                    wheel.push(at, id);
                    id += 1;
                }
            }
            Op::Pop => {
                assert_eq!(heap.pop(), wheel.pop());
            }
            Op::PeekPushPop(off) => {
                // peek_time may advance the wheel's cursor; a push between
                // the peek and the pop can then land below it.
                assert_eq!(heap.peek_time(), wheel.peek_time());
                let at = Time(heap.now().nanos() + off);
                heap.push(at, id);
                wheel.push(at, id);
                id += 1;
                assert_eq!(heap.pop(), wheel.pop());
            }
        }
        assert_eq!(heap.len(), wheel.len());
        assert_eq!(heap.now(), wheel.now());
    }
    // Drain both to the end: total order must match exactly.
    loop {
        let a = heap.pop();
        let b = wheel.pop();
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn wheel_matches_heap_default_threshold(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run_differential(ops, TimingWheel::new());
    }

    #[test]
    fn wheel_matches_heap_forced_wheel_mode(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run_differential(ops, TimingWheel::with_spill_threshold(0));
    }
}

/// Deterministic (non-proptest) regression: a large same-instant burst that
/// crosses the default spill threshold mid-burst must stay FIFO through the
/// heap-mode → wheel-mode transition.
#[test]
fn same_instant_burst_across_spill_transition() {
    let mut heap = EventQueue::new();
    let mut wheel = TimingWheel::new();
    let at = Time(1_000_000);
    for id in 0..2000u64 {
        heap.push(at, id);
        wheel.push(at, id);
    }
    for _ in 0..2000 {
        assert_eq!(heap.pop(), wheel.pop());
    }
    assert_eq!(wheel.pop(), None);
}

/// Deterministic regression: events pushed beyond the wheel window while
/// draining migrate back in, in order, including ties at the window edge.
#[test]
fn overflow_migration_preserves_order() {
    let mut heap = EventQueue::new();
    let mut wheel = TimingWheel::with_spill_threshold(0);
    let far = 0x200_0000_0000u64; // > 2^40: overflow heap territory
    for id in 0..8u64 {
        let at = Time(far + (id % 2) * 0x100_0000_0000);
        heap.push(at, id);
        wheel.push(at, id);
    }
    heap.push(Time(5), 100);
    wheel.push(Time(5), 100);
    loop {
        let a = heap.pop();
        let b = wheel.pop();
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}
