//! Statistics helpers used by the experiment harnesses.
//!
//! * [`Running`] — streaming mean/variance (Welford),
//! * [`Histogram`] — fixed-bucket latency/size histogram,
//! * [`linreg`] — ordinary least squares `y = a + b·x`, used to recover the
//!   Table 2 coefficients from simulated VM-operation timings,
//! * [`Rates`] — throughput bookkeeping (bytes over an interval → Mbit/s).

use crate::time::{Dur, Time};

/// Streaming mean / variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample into the running statistics.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A histogram over `[lo, hi)` with uniform buckets plus under/overflow.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `nbuckets` uniform buckets.
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Self {
        assert!(hi > lo && nbuckets > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; nbuckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile from bucket midpoints (clamped to range ends for
    /// under/overflow mass).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return f64::NAN;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target && self.underflow > 0 {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo + (i as f64 + 0.5) * width;
            }
        }
        self.hi
    }
}

/// Result of an ordinary-least-squares fit `y = intercept + slope * x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinFit {
    /// Fitted intercept `a` of `y = a + b*x`.
    pub intercept: f64,
    /// Fitted slope `b` of `y = a + b*x`.
    pub slope: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Ordinary least squares over paired samples.
///
/// # Panics
///
/// Panics when fewer than two distinct x values are supplied.
pub fn linreg(xs: &[f64], ys: &[f64]) -> LinFit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0, "x values are all identical");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinFit {
        intercept,
        slope,
        r2,
    }
}

/// Converts a byte count moved over a virtual interval into Mbit/s.
pub fn mbps(bytes: u64, elapsed: Dur) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e6
}

/// Simple throughput bookkeeping over a measurement window.
#[derive(Clone, Debug)]
pub struct Rates {
    start: Time,
    bytes: u64,
}

impl Rates {
    /// Start a measurement window at `start`.
    pub fn start_at(start: Time) -> Self {
        Rates { start, bytes: 0 }
    }

    /// Count `n` bytes moved in this window.
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Bytes counted so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Throughput in Mbit/s over the window ending at `now`.
    pub fn mbps_at(&self, now: Time) -> f64 {
        mbps(self.bytes, now.since(self.start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_closed_form() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance is 32/7.
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn linreg_recovers_exact_line() {
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 35.0 + 29.0 * x).collect();
        let fit = linreg(&xs, &ys);
        assert!((fit.intercept - 35.0).abs() < 1e-9);
        assert!((fit.slope - 29.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linreg_noisy_r2_below_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.1, 1.9, 3.2, 3.8, 5.1];
        let fit = linreg(&xs, &ys);
        assert!(fit.r2 > 0.98 && fit.r2 < 1.0);
        assert!((fit.slope - 1.0).abs() < 0.1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.total(), 100);
        let med = h.quantile(0.5);
        assert!((40.0..60.0).contains(&med), "median {med}");
        h.record(-1.0);
        h.record(1000.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn mbps_conversion() {
        // 12.5 MB in one second = 100 Mbit/s.
        assert!((mbps(12_500_000, Dur::secs(1)) - 100.0).abs() < 1e-9);
        assert_eq!(mbps(1, Dur::ZERO), 0.0);
    }

    #[test]
    fn rates_window() {
        let mut r = Rates::start_at(Time::ZERO);
        r.add_bytes(12_500_000);
        assert!((r.mbps_at(Time::ZERO + Dur::secs(1)) - 100.0).abs() < 1e-9);
    }
}
