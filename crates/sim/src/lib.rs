//! Deterministic discrete-event simulation core for the `outboard` workspace.
//!
//! Everything in the reproduction — the CAB adaptor engines, the host CPU,
//! the network links — advances on a single virtual clock driven by a stable
//! event queue. Determinism is a design requirement (the paper's experiments
//! must be exactly reproducible), so this crate provides:
//!
//! * [`Time`] / [`Dur`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a priority queue with FIFO tie-breaking so same-time
//!   events run in insertion order on every platform,
//! * [`TimingWheel`] / [`EventEngine`] — a hierarchical timing wheel with
//!   the same FIFO semantics but O(1) schedule/expire (the default engine;
//!   the heap stays as the differential-testing reference),
//! * [`BufPool`] — generation-tagged slab/freelist pools behind the wire
//!   frame and packet-buffer hot paths (steady-state transfers recycle
//!   buffers instead of allocating per frame),
//! * [`Pcg32`] — a small, seedable PRNG with a stable stream (we deliberately
//!   do not depend on an external RNG crate whose stream could change across
//!   versions),
//! * [`stats`] — counters, running means, histograms, and the least-squares
//!   fit used to regenerate Table 2,
//! * [`trace`] — a bounded in-memory event trace for debugging experiments,
//! * [`span`] — per-packet causal tracing: bounded span timelines with
//!   Chrome-trace/Perfetto export and critical-path attribution,
//! * [`obs`] — the workspace-wide metrics registry (busy fractions, queue
//!   high-water marks, netstat-style counters) behind every run report,
//! * [`chaos`] — deterministic, replayable fault schedules with a
//!   delta-debugging shrinker for minimal failure repros,
//! * [`timeline`] — windowed time-series telemetry: bounded rings of
//!   per-window counter deltas and gauge levels with exact conservation,
//!   exported as Perfetto counter tracks, JSON/CSV, and sparklines.

#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod obs;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod span;
pub mod stats;
pub mod time;
pub mod timeline;
pub mod trace;
pub mod wheel;

pub use chaos::{ChaosAction, ChaosEvent, ChaosSchedule};
pub use engine::{EngineKind, EventEngine};
pub use obs::{BusyTracker, Metric, MetricsRegistry};
pub use pool::{BufPool, PoolStats, Ticket};
pub use queue::EventQueue;
pub use rng::{check_probability, FaultConfigError, Pcg32};
pub use span::{FlowId, Span, SpanSink, Stage};
pub use time::{Dur, Time};
pub use timeline::{SeriesId, SeriesKind, Timeline};
pub use wheel::TimingWheel;
