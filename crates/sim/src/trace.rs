//! Bounded in-memory event trace.
//!
//! Components across the workspace record interesting moments (DMA start,
//! packet on wire, retransmit, fallback path taken) into a shared trace so
//! tests can assert on *mechanism* — e.g. "the retransmitted packet was never
//! copied back into host memory" — instead of only on end-to-end outcomes.

use crate::time::Time;
use std::collections::VecDeque;
use std::fmt;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event occurred.
    pub at: Time,
    /// Component that emitted the event, e.g. `"cab0.sdma"`, `"tcp"`.
    pub source: &'static str,
    /// Event kind, e.g. `"sdma_start"`, `"retransmit"`.
    pub kind: &'static str,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.at, self.source, self.kind, self.detail
        )
    }
}

/// A bounded ring of trace events. When full, the oldest events are dropped.
#[derive(Debug)]
pub struct Trace {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
    allowed_kinds: Option<Vec<&'static str>>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(65_536)
    }
}

impl Trace {
    /// A trace ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Trace {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            dropped: 0,
            allowed_kinds: None,
        }
    }

    /// A trace that discards everything (for long benchmark runs).
    pub fn disabled() -> Self {
        let mut t = Trace::new(1);
        t.enabled = false;
        t
    }

    /// Enable or disable recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Restrict recording to the given event kinds. Events of other kinds are
    /// ignored entirely (they neither occupy ring slots nor count as
    /// dropped), which keeps a long run's interesting kinds — say
    /// `"retransmit"` — from being evicted by chatty ones. `None` (the
    /// default) records every kind.
    pub fn set_allowed_kinds(&mut self, kinds: Option<Vec<&'static str>>) {
        self.allowed_kinds = kinds;
    }

    /// Record one event (dropped silently when disabled or filtered out by
    /// the kind allowlist; evicts the oldest when full).
    pub fn record(&mut self, at: Time, source: &'static str, kind: &'static str, detail: String) {
        if !self.enabled {
            return;
        }
        if let Some(allowed) = &self.allowed_kinds {
            if !allowed.contains(&kind) {
                return;
            }
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent {
            at,
            source,
            kind,
            detail,
        });
    }

    /// Number of events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Iterate events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// All events of a given kind, oldest first.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.ring.iter().filter(move |e| e.kind == kind)
    }

    /// Count events of a given kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.ring.iter().filter(|e| e.kind == kind).count()
    }

    /// All events from a given source, oldest first.
    pub fn of_source<'a>(&'a self, source: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.ring.iter().filter(move |e| e.source == source)
    }

    /// Discard all events and reset the drop counter.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.dropped = 0;
    }

    /// Render the whole trace (debugging aid).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            out.push_str(&format!("{e}\n"));
        }
        out
    }

    /// Render only the newest `n` events — bounded output for post-mortems
    /// on long runs where `dump()` would be megabytes.
    pub fn dump_tail(&self, n: usize) -> String {
        let skip = self.ring.len().saturating_sub(n);
        let mut out = String::new();
        if skip > 0 || self.dropped > 0 {
            out.push_str(&format!(
                "... ({} earlier events omitted, {} evicted)\n",
                skip, self.dropped
            ));
        }
        for e in self.ring.iter().skip(skip) {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new(10);
        t.record(Time(1), "tcp", "retransmit", "seq 100".into());
        t.record(Time(2), "cab0.sdma", "sdma_start", "pkt 1".into());
        t.record(Time(3), "tcp", "retransmit", "seq 200".into());
        assert_eq!(t.len(), 3);
        assert_eq!(t.count_kind("retransmit"), 2);
        let kinds: Vec<_> = t.of_kind("retransmit").map(|e| e.detail.clone()).collect();
        assert_eq!(kinds, vec!["seq 100", "seq 200"]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.record(Time(i), "x", "k", format!("{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let details: Vec<_> = t.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["2", "3", "4"]);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(Time(1), "x", "k", "ignored".into());
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(Time(2), "x", "k", "kept".into());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dump_renders_lines() {
        let mut t = Trace::new(4);
        t.record(Time(1_000), "tcp", "k", "hello".into());
        let s = t.dump();
        assert!(s.contains("tcp k: hello"));
    }

    #[test]
    fn of_source_filters() {
        let mut t = Trace::new(10);
        t.record(Time(1), "tcp", "retransmit", "a".into());
        t.record(Time(2), "cab0.sdma", "sdma_start", "b".into());
        t.record(Time(3), "tcp", "ack", "c".into());
        let details: Vec<_> = t.of_source("tcp").map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["a", "c"]);
        assert_eq!(t.of_source("nope").count(), 0);
    }

    #[test]
    fn dump_tail_is_bounded() {
        let mut t = Trace::new(10);
        for i in 0..6u64 {
            t.record(Time(i), "x", "k", format!("{i}"));
        }
        let s = t.dump_tail(2);
        assert!(s.contains("4 earlier events omitted"));
        assert!(s.contains("x k: 4") && s.contains("x k: 5"));
        assert!(!s.contains("x k: 3"));
        // Tail longer than the trace renders everything with no banner.
        let full = t.dump_tail(100);
        assert!(!full.contains("omitted"));
        assert!(full.contains("x k: 0"));
    }

    #[test]
    fn kind_allowlist_filters_without_counting_drops() {
        let mut t = Trace::new(10);
        t.set_allowed_kinds(Some(vec!["retransmit"]));
        t.record(Time(1), "tcp", "send", "noise".into());
        t.record(Time(2), "tcp", "retransmit", "kept".into());
        t.record(Time(3), "tcp", "ack", "noise".into());
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.count_kind("retransmit"), 1);
        t.set_allowed_kinds(None);
        t.record(Time(4), "tcp", "ack", "now kept".into());
        assert_eq!(t.len(), 2);
    }
}
