//! Observability: a workspace-wide metrics registry.
//!
//! The paper's whole argument is quantitative (§7.1 utilization accounting,
//! per-byte vs per-packet cost splits, DMA-engine concurrency), so every
//! component of the simulation exposes its counters through one uniform
//! layer. This module provides:
//!
//! * instrument types — monotonic [`Counter`]s, [`Gauge`]s with a high-water
//!   mark, value [`ValueHist`]ograms, and a time-weighted [`BusyTracker`]
//!   for busy-fraction/occupancy accounting over *virtual* time;
//! * [`MetricsRegistry`] — a flat, deterministically-ordered name → value
//!   map that components publish snapshots into (via [`Scope`] prefixes);
//! * renderers — a human-readable [`MetricsRegistry::report`], plus
//!   [`MetricsRegistry::to_json`] / [`MetricsRegistry::to_csv`] for
//!   machine-readable run snapshots.
//!
//! Determinism is a hard requirement: two identical seeded runs must produce
//! byte-identical reports. The registry therefore stores metrics in a
//! `BTreeMap` and formats floating-point values with fixed precision.

use crate::time::{Dur, Time};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A monotonically increasing event count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Count one event.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Count `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// An instantaneous level (queue depth, pages in use) with its high-water
/// mark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
    hwm: i64,
}

impl Gauge {
    /// Set the level.
    pub fn set(&mut self, v: i64) {
        self.value = v;
        self.hwm = self.hwm.max(v);
    }

    /// Adjust the level by a signed delta.
    pub fn adjust(&mut self, delta: i64) {
        self.set(self.value + delta);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value
    }

    /// Highest level ever set.
    pub fn high_water(&self) -> i64 {
        self.hwm
    }
}

/// A streaming summary of observed values (count / sum / min / max), with a
/// fixed set of power-of-two buckets for deterministic quantile estimates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueHist {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-power-of-two bucket counts: bucket `i` holds values whose
    /// floor(log2) is `i` (values 0 and 1 share bucket 0).
    buckets: [u32; 64],
}

impl Default for ValueHist {
    fn default() -> ValueHist {
        ValueHist {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl ValueHist {
    fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// A deterministic quantile estimate: the upper bound of the
    /// power-of-two bucket holding the `q`-th ranked value, clamped to the
    /// observed `[min, max]`. Exact when all values share a bucket;
    /// within 2× otherwise. `q` is clamped to `[0, 1]`; returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += u64::from(*n);
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &ValueHist) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// A busy-until occupancy timeline over virtual time.
///
/// This is the shared engine model: work submitted at `now` starts when the
/// resource frees up and occupies it for a duration; cumulative busy time
/// over an elapsed window gives the busy fraction. The CAB's DMA engines and
/// the host CPU both serialize on one of these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusyTracker {
    busy_until: Time,
    total: Dur,
}

impl BusyTracker {
    /// An idle resource at time zero.
    pub fn new() -> BusyTracker {
        BusyTracker::default()
    }

    /// When the current backlog drains.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Occupy the resource for `dur`, starting no earlier than `now` and no
    /// earlier than the end of previously queued work. Returns completion.
    pub fn occupy(&mut self, now: Time, dur: Dur) -> Time {
        let start = now.max(self.busy_until);
        self.busy_until = start + dur;
        self.total += dur;
        self.busy_until
    }

    /// Cumulative busy time.
    pub fn total_busy(&self) -> Dur {
        self.total
    }

    /// Busy fraction over an elapsed window (0.0 for an empty window).
    pub fn busy_fraction(&self, elapsed: Dur) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.total.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

/// One published metric value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Metric {
    /// A monotonic count.
    Counter(u64),
    /// A level + its high-water mark.
    Gauge {
        /// Current level.
        value: i64,
        /// Highest level observed.
        hwm: i64,
    },
    /// A dimensionless fraction (utilization, hit rate), 0.0–1.0-ish.
    Frac(f64),
    /// A value-distribution summary.
    Hist {
        /// Values recorded.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// Smallest recorded value.
        min: u64,
        /// Largest recorded value.
        max: u64,
    },
}

/// A flat, deterministically ordered snapshot of every published metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
    elapsed: Dur,
}

impl MetricsRegistry {
    /// An empty registry covering an elapsed virtual-time window (used to
    /// turn busy times into fractions).
    pub fn new(elapsed: Dur) -> MetricsRegistry {
        MetricsRegistry {
            metrics: BTreeMap::new(),
            elapsed,
        }
    }

    /// The elapsed window this snapshot covers.
    pub fn elapsed(&self) -> Dur {
        self.elapsed
    }

    /// A scope that prefixes every published name with `prefix.`.
    pub fn scope(&mut self, prefix: &str) -> Scope<'_> {
        Scope {
            reg: self,
            prefix: prefix.to_string(),
        }
    }

    fn insert(&mut self, name: String, m: Metric) {
        self.metrics.insert(name, m);
    }

    /// Publish a counter at the top level.
    pub fn counter(&mut self, name: &str, v: u64) {
        self.insert(name.to_string(), Metric::Counter(v));
    }

    /// Look up a metric by full name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// A counter's value (0 when absent or of another type).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A fraction's value (0.0 when absent or of another type).
    pub fn frac_value(&self, name: &str) -> f64 {
        match self.metrics.get(name) {
            Some(Metric::Frac(v)) => *v,
            _ => 0.0,
        }
    }

    /// A gauge's (value, high-water mark), (0, 0) when absent.
    pub fn gauge_value(&self, name: &str) -> (i64, i64) {
        match self.metrics.get(name) {
            Some(Metric::Gauge { value, hwm }) => (*value, *hwm),
            _ => (0, 0),
        }
    }

    /// Number of published metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Deterministic human-readable report, one metric per line, sorted by
    /// name, values in fixed-precision formats.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# metrics over {} (virtual)", self.elapsed);
        let width = self.metrics.keys().map(|k| k.len()).max().unwrap_or(0);
        for (name, m) in &self.metrics {
            match m {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "{name:<width$}  {v}");
                }
                Metric::Gauge { value, hwm } => {
                    let _ = writeln!(out, "{name:<width$}  {value} (hwm {hwm})");
                }
                Metric::Frac(v) => {
                    let _ = writeln!(out, "{name:<width$}  {v:.6}");
                }
                Metric::Hist {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    let mean = if *count == 0 {
                        0.0
                    } else {
                        *sum as f64 / *count as f64
                    };
                    let _ = writeln!(
                        out,
                        "{name:<width$}  n={count} mean={mean:.1} min={min} max={max}"
                    );
                }
            }
        }
        out
    }

    /// Machine-readable JSON snapshot (hand-rolled; metric names are plain
    /// dotted identifiers, values fixed-precision).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"elapsed_ns\": {},", self.elapsed.as_nanos());
        out.push_str("  \"metrics\": {\n");
        let n = self.metrics.len();
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            match m {
                Metric::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "    \"{name}\": {{\"type\": \"counter\", \"value\": {v}}}{comma}"
                    );
                }
                Metric::Gauge { value, hwm } => {
                    let _ = writeln!(
                        out,
                        "    \"{name}\": {{\"type\": \"gauge\", \"value\": {value}, \"hwm\": {hwm}}}{comma}"
                    );
                }
                Metric::Frac(v) => {
                    let _ = writeln!(
                        out,
                        "    \"{name}\": {{\"type\": \"frac\", \"value\": {v:.6}}}{comma}"
                    );
                }
                Metric::Hist {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    let _ = writeln!(
                        out,
                        "    \"{name}\": {{\"type\": \"hist\", \"count\": {count}, \"sum\": {sum}, \"min\": {min}, \"max\": {max}}}{comma}"
                    );
                }
            }
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Machine-readable CSV snapshot: `name,type,value,extra`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,type,value,extra\n");
        for (name, m) in &self.metrics {
            match m {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "{name},counter,{v},");
                }
                Metric::Gauge { value, hwm } => {
                    let _ = writeln!(out, "{name},gauge,{value},{hwm}");
                }
                Metric::Frac(v) => {
                    let _ = writeln!(out, "{name},frac,{v:.6},");
                }
                Metric::Hist {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    let _ = writeln!(out, "{name},hist,{count},{sum};{min};{max}");
                }
            }
        }
        out
    }
}

/// A name-prefixing view into a [`MetricsRegistry`].
pub struct Scope<'a> {
    reg: &'a mut MetricsRegistry,
    prefix: String,
}

impl Scope<'_> {
    /// A nested scope: `prefix.sub.`.
    pub fn sub(&mut self, sub: &str) -> Scope<'_> {
        Scope {
            prefix: format!("{}.{sub}", self.prefix),
            reg: self.reg,
        }
    }

    /// The elapsed window of the underlying registry.
    pub fn elapsed(&self) -> Dur {
        self.reg.elapsed
    }

    fn name(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// Publish a counter.
    pub fn counter(&mut self, name: &str, v: u64) {
        self.reg.insert(self.name(name), Metric::Counter(v));
    }

    /// Publish a gauge + high-water mark.
    pub fn gauge(&mut self, name: &str, value: i64, hwm: i64) {
        self.reg
            .insert(self.name(name), Metric::Gauge { value, hwm });
    }

    /// Publish a [`Gauge`] instrument.
    pub fn gauge_of(&mut self, name: &str, g: &Gauge) {
        self.gauge(name, g.get(), g.high_water());
    }

    /// Publish a fraction.
    pub fn frac(&mut self, name: &str, v: f64) {
        self.reg.insert(self.name(name), Metric::Frac(v));
    }

    /// Publish a busy fraction from a [`BusyTracker`] over the registry's
    /// elapsed window.
    pub fn busy_frac(&mut self, name: &str, t: &BusyTracker) {
        let f = t.busy_fraction(self.reg.elapsed);
        self.frac(name, f);
    }

    /// Publish a value-distribution summary.
    pub fn hist(&mut self, name: &str, h: &ValueHist) {
        self.reg.insert(
            self.name(name),
            Metric::Hist {
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let mut g = Gauge::default();
        g.set(3);
        g.adjust(4);
        g.adjust(-6);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 7);
    }

    #[test]
    fn hist_summary() {
        let mut h = ValueHist::default();
        assert_eq!(h.mean(), 0.0);
        for v in [10, 2, 6] {
            h.record(v);
        }
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 18, 2, 10));
        assert!((h.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn busy_tracker_serializes_and_fractions() {
        let mut b = BusyTracker::new();
        let t1 = b.occupy(Time::ZERO, Dur::micros(100));
        assert_eq!(t1, Time(100_000));
        // Arrives while busy: queued behind.
        let t2 = b.occupy(Time(50_000), Dur::micros(100));
        assert_eq!(t2, Time(200_000));
        assert_eq!(b.total_busy(), Dur::micros(200));
        assert!((b.busy_fraction(Dur::millis(1)) - 0.2).abs() < 1e-12);
        assert_eq!(b.busy_fraction(Dur::ZERO), 0.0);
    }

    #[test]
    fn registry_is_sorted_and_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::new(Dur::millis(10));
            r.counter("zzz.last", 1);
            let mut s = r.scope("host0");
            s.counter("tcp.segs_out", 42);
            s.frac("cpu.user_share", 0.25);
            s.gauge("netmem.pages", 3, 9);
            let mut sub = s.sub("cab0");
            sub.counter("frames", 7);
            r
        };
        let a = build();
        let b = build();
        assert_eq!(a.report(), b.report());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        // Sorted: host0.* before zzz.*.
        let names: Vec<_> = a.iter().map(|(n, _)| n.to_string()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(a.counter_value("host0.cab0.frames"), 7);
        assert_eq!(a.gauge_value("host0.netmem.pages"), (3, 9));
        assert!((a.frac_value("host0.cpu.user_share") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn renderers_cover_every_metric_type() {
        let mut r = MetricsRegistry::new(Dur::secs(1));
        r.counter("c", 3);
        let mut s = r.scope("x");
        s.gauge("g", 2, 5);
        s.frac("f", 0.5);
        let mut h = ValueHist::default();
        h.record(4);
        s.hist("h", &h);
        let rep = r.report();
        assert!(rep.contains("c") && rep.contains("2 (hwm 5)"));
        let json = r.to_json();
        assert!(json.contains("\"x.g\": {\"type\": \"gauge\", \"value\": 2, \"hwm\": 5}"));
        assert!(json.contains("\"elapsed_ns\": 1000000000"));
        let csv = r.to_csv();
        assert!(csv.contains("x.h,hist,1,4;4;4"));
    }
}
