//! Hierarchical timing wheel (Varghese & Lauck, SOSP '87).
//!
//! A drop-in replacement for [`EventQueue`](crate::EventQueue) with the same
//! `(Time, seq)` FIFO tie-break semantics but amortized O(1) schedule and
//! expire instead of the heap's O(log n). The wheel has four levels of 256
//! slots each, 8 bits of nanoseconds per level, on top of a 2^8 ns *grain*:
//! a level-0 slot spans a 256 ns window rather than a single instant, so
//! the timer deltas real protocol schedules generate (µs-to-ms apart) land
//! directly in level 0 or 1 instead of cascading down from the top every
//! pop. The wheel proper covers a 2^40 ns (~18 min) window around the
//! cursor; events beyond the window park in an overflow heap and migrate in
//! when the wheel drains up to them.
//!
//! # Layout and invariants
//!
//! Writing an event's absolute nanosecond timestamp `at` in base-256 digits
//! above the grain, `at = (d3 d2 d1 d0) * 2^8 + g`, an event lives at level
//! `L` slot `dL` where `L` is the highest digit in which `at` differs from
//! the cursor: `L = (63 - ((at ^ cursor) >> 8).leading_zeros()) / 8`.
//! Differences in digits ≥ 4 go to the overflow heap; a zero shifted xor
//! means the entry is inside the cursor's own grain window and joins the
//! batch directly. Consequences used throughout:
//!
//! * Every entry in a level-0 slot falls in one 256 ns window (all digits
//!   equal the cursor's above the slot index), so a slot drains wholesale
//!   into the batch, sorted once by `(at, seq)`.
//! * An entry can never sit at the *current index* of a level ≥ 1: equal
//!   digits above `L` plus an equal digit at `L` means the difference is
//!   below `L`, i.e. the entry belongs to a lower level.
//! * The cursor only advances, and only to the window start of the earliest
//!   pending entry, so slots behind the cursor are empty and the lowest
//!   occupied level's lowest occupied slot is always the global earliest.
//!
//! # FIFO tie-break proof sketch
//!
//! The batch is kept sorted by `(at, seq)` at all times: a slot drain sorts
//! once, and a push that lands inside the current grain window binary-search
//! inserts at its `(at, seq)` position. Two entries with equal `at` either
//! (a) land in the same slot / batch, where the `(at, seq)` order *is* FIFO
//! order, or (b) land in different levels at different times because the
//! cursor moved between the pushes. Case (b) resolves in
//! [`TimingWheel::scan`]: a slot is only drained after the cursor has
//! advanced to its window start, at which point every entry for that window
//! — whatever level it was pushed at — has cascaded into the same batch
//! before the first pop of the window.
//!
//! A third case exists only for external pushes between a peek (which may
//! advance the cursor to the next pending window) and the next pop: a push
//! with `now <= at < cursor` cannot be placed by digit rules. Those go to a
//! tiny `early` heap which always pops before the wheel — correct because
//! every wheel/batch entry's timestamp is ≥ cursor > `at`.
//!
//! # Heap mode (density fallback)
//!
//! Below [`SPILL`] pending entries the slot machinery is bypassed entirely
//! and the whole schedule lives in the `early` binary heap — at that size
//! the heap is one or two cache lines and effectively optimal, while every
//! wheel op touches bitmaps, a slot vector, and the batch (several cold
//! lines once real per-event work has evicted them). The wheel spills into
//! the slots when the count crosses [`SPILL`] and drops back to heap mode
//! when it fully drains, so protocol simulations (which idle at tens of
//! pending events) run at reference-heap speed while timer-churn workloads
//! (tens of thousands pending) spill once and run on the O(1) hierarchy —
//! the classic calendar-queue density adaptation.

use crate::queue::EventQueue;
use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Slots per level (one byte of the timestamp per level).
const SLOTS: usize = 256;
/// Number of wheel levels; differences in bytes ≥ `LEVELS` overflow.
const LEVELS: usize = 4;
/// log2(SLOTS): bits of the timestamp consumed per level.
const BITS: u32 = 8;
/// Bits of the timestamp below level 0: a level-0 slot spans `2^GRAIN` ns
/// and the batch holds one grain window, sorted by `(at, seq)`.
const GRAIN: u32 = 8;
/// Default pending-entry count above which the wheel leaves heap mode.
/// Below a few hundred pending the schedule spans a handful of cache lines
/// and a plain binary heap is as fast as anything, even with cold caches —
/// real protocol runs idle at 10–300 pending, while bulk timer churn
/// (where the wheel's O(1) wins by integer factors) sits in the tens of
/// thousands, far above any sensible crossover.
const SPILL: usize = 512;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so BinaryHeap's max is the earliest (then first-pushed)
        // entry — same trick as the reference EventQueue.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A 256-bit occupancy bitmap over one level's slots.
#[derive(Default, Clone, Copy)]
struct Bitmap([u64; SLOTS / 64]);

impl Bitmap {
    #[inline]
    fn set(&mut self, i: usize) {
        self.0[i >> 6] |= 1u64 << (i & 63);
    }
    #[inline]
    fn clear(&mut self, i: usize) {
        self.0[i >> 6] &= !(1u64 << (i & 63));
    }
    /// Lowest set bit, if any.
    #[inline]
    fn first(&self) -> Option<usize> {
        for (w, &word) in self.0.iter().enumerate() {
            if word != 0 {
                return Some((w << 6) | word.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// A time-ordered event scheduler with FIFO tie-breaking, API-compatible
/// with [`EventQueue`] (modulo `peek_time` taking `&mut self`).
pub struct TimingWheel<E> {
    /// `LEVELS * SLOTS` slot vectors, flattened level-major. Empty until
    /// the first [`TimingWheel::spill`] — heap-mode schedules never pay
    /// for it.
    slots: Vec<Vec<Entry<E>>>,
    occupied: [Bitmap; LEVELS],
    /// Entries in the grain window the cursor points at, sorted by
    /// `(at, seq)`.
    batch: VecDeque<Entry<E>>,
    /// Heap mode: all entries live in `early` and the slots are untouched.
    /// Entered at construction and whenever the queue fully drains; left
    /// (via [`TimingWheel::spill`]) when the count crosses `spill`.
    small: bool,
    /// Pending-entry count above which heap mode spills into the slots
    /// ([`SPILL`] unless overridden for tests/benches).
    spill: usize,
    /// In heap mode, the whole schedule. In wheel mode, entries pushed
    /// with `now <= at < cursor` after a peek advanced the cursor; always
    /// earlier than everything in the wheel.
    early: BinaryHeap<Entry<E>>,
    /// Entries beyond the wheel's 2^40 ns window.
    overflow: BinaryHeap<Entry<E>>,
    /// Wheel origin, in ns. Invariant: every slot / overflow entry has
    /// `at >= cursor`, and batch entries share the cursor's grain window
    /// (`at >> GRAIN == cursor >> GRAIN`, `at >= now`).
    cursor: u64,
    now: Time,
    next_seq: u64,
    len: usize,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    /// An empty wheel with the clock at time zero.
    pub fn new() -> Self {
        TimingWheel {
            slots: Vec::new(),
            occupied: [Bitmap::default(); LEVELS],
            batch: VecDeque::new(),
            small: true,
            spill: SPILL,
            early: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            now: Time::ZERO,
            next_seq: 0,
            len: 0,
        }
    }

    /// An empty wheel that leaves heap mode once more than `threshold`
    /// entries are pending (`0` puts the first push straight into the slot
    /// hierarchy). For tests and benchmarks that need to exercise the
    /// wheel paths at small queue depths.
    pub fn with_spill_threshold(threshold: usize) -> Self {
        let mut w = Self::new();
        w.spill = threshold;
        w
    }

    /// The instant of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past, exactly like
    /// [`EventQueue::push`](crate::EventQueue::push).
    pub fn push(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at:?} but the clock is already at {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let e = Entry { at, seq, event };
        if self.small {
            self.early.push(e);
            if self.early.len() > self.spill {
                self.spill();
            }
        } else if at.nanos() < self.cursor {
            self.early.push(e);
        } else {
            self.place(e);
        }
    }

    /// Pop the earliest event and advance the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        // `early` is the whole schedule in heap mode, and always earlier
        // than the wheel otherwise, so it pops first either way.
        if let Some(e) = self.early.pop() {
            debug_assert!(e.at >= self.now);
            self.now = e.at;
            self.len -= 1;
            return Some((e.at, e.event));
        }
        if self.small {
            return None;
        }
        self.scan();
        let e = self.batch.pop_front()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.len -= 1;
        if self.len == 0 {
            // Fully drained: drop back to heap mode so the next quiet
            // stretch runs on the compact path again.
            self.small = true;
            self.cursor = self.now.nanos();
        }
        Some((e.at, e.event))
    }

    /// The timestamp of the next event without popping it.
    ///
    /// Unlike the heap, peeking may advance the internal cursor (never past
    /// the earliest pending event), which is why this takes `&mut self`.
    pub fn peek_time(&mut self) -> Option<Time> {
        if let Some(e) = self.early.peek() {
            return Some(e.at);
        }
        if self.small {
            return None;
        }
        self.scan();
        self.batch.front().map(|e| e.at)
    }

    /// Number of scheduled events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every queued event (used when an experiment ends early). Keeps
    /// the clock and the sequence counter, like the reference queue.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
        self.occupied = [Bitmap::default(); LEVELS];
        self.batch.clear();
        self.small = true;
        self.early.clear();
        self.overflow.clear();
        self.len = 0;
    }

    /// Leave heap mode: move every entry into the slot hierarchy. Every
    /// pending entry is `>= now` (pops always take the global minimum), so
    /// anchoring the cursor at `now` lets `place` take all of them; entries
    /// inside the cursor's grain window land in the batch.
    fn spill(&mut self) {
        self.small = false;
        self.cursor = self.now.nanos();
        if self.slots.is_empty() {
            self.slots.resize_with(LEVELS * SLOTS, Vec::new);
        }
        let pending = std::mem::take(&mut self.early).into_vec();
        for e in pending {
            self.place(e);
        }
    }

    /// Place an entry with `at >= cursor` into the batch, a wheel slot, or
    /// the overflow heap.
    fn place(&mut self, e: Entry<E>) {
        let at = e.at.nanos();
        debug_assert!(at >= self.cursor);
        let xor = (at ^ self.cursor) >> GRAIN;
        if xor == 0 {
            // Inside the cursor's grain window: binary-search insert keeps
            // the batch sorted by `(at, seq)`. The common case — a push at
            // the current instant while the window drains — lands at the
            // back in one probe.
            let key = (e.at, e.seq);
            let i = self.batch.partition_point(|x| (x.at, x.seq) < key);
            self.batch.insert(i, e);
            return;
        }
        let level = ((63 - xor.leading_zeros()) / BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(e);
            return;
        }
        let slot = ((at >> (GRAIN + BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(e);
        self.occupied[level].set(slot);
    }

    /// Advance the cursor to the earliest pending grain window and fill the
    /// batch with every entry in that window. No-op if the batch is
    /// nonempty; leaves it empty only when nothing is scheduled.
    fn scan(&mut self) {
        loop {
            if !self.batch.is_empty() {
                return;
            }
            // Level 0: the lowest occupied slot is the earliest pending
            // grain window.
            if let Some(j) = self.occupied[0].first() {
                self.cursor =
                    (self.cursor & !((1u64 << (GRAIN + BITS)) - 1)) | ((j as u64) << GRAIN);
                self.occupied[0].clear(j);
                let slot = &mut self.slots[j];
                // Drain in place so the slot keeps its capacity; the batch
                // was empty, so this is the full (unsorted) window.
                self.batch.extend(slot.drain(..));
                debug_assert!(self
                    .batch
                    .iter()
                    .all(|e| e.at.nanos() >> GRAIN == self.cursor >> GRAIN));
                self.batch
                    .make_contiguous()
                    .sort_unstable_by_key(|e| (e.at, e.seq));
                return;
            }
            // Levels 1..: the lowest occupied level's lowest occupied slot
            // is earliest (higher levels hold strictly later windows). The
            // batch and all lower levels are empty, so this slot holds the
            // global earliest pending entry — jump the cursor straight to
            // that entry's grain window rather than the slot's window
            // start. A sparse schedule then re-places each entry once (the
            // earliest lands directly in the batch) instead of cascading it
            // through every intermediate level on every pop.
            let mut cascaded = false;
            for level in 1..LEVELS {
                if let Some(j) = self.occupied[level].first() {
                    self.occupied[level].clear(j);
                    let idx = level * SLOTS + j;
                    let mut entries = std::mem::take(&mut self.slots[idx]);
                    let min_at = entries
                        .iter()
                        .map(|e| e.at.nanos())
                        .min()
                        // lint: allow(panic-hot-path, occupied bitmap bit is set iff the slot holds entries; place/clear keep them paired)
                        .expect("occupied slot is nonempty");
                    // The slot's window start is grain-aligned and strictly
                    // above the cursor, so this advances monotonically.
                    let next = min_at & !((1u64 << GRAIN) - 1);
                    debug_assert!(next > self.cursor);
                    self.cursor = next;
                    for e in entries.drain(..) {
                        self.place(e);
                    }
                    // Hand the emptied allocation back so steady-state
                    // cascades don't reallocate. The cursor kept this
                    // slot's digit at `level`, so `place` sends every entry
                    // strictly below `level` and the slot is still empty.
                    debug_assert!(self.slots[idx].is_empty());
                    self.slots[idx] = entries;
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // Wheel empty: migrate the next 2^40 ns window in from the
            // overflow heap (every overflow entry is later than the whole
            // wheel, so this is only reached when nothing else is pending).
            match self.overflow.pop() {
                Some(first) => {
                    let base = first.at.nanos();
                    debug_assert!(base > self.cursor);
                    self.cursor = base;
                    self.place(first);
                    let window = base >> (GRAIN + BITS * LEVELS as u32);
                    while let Some(e) = self.overflow.peek() {
                        if e.at.nanos() >> (GRAIN + BITS * LEVELS as u32) != window {
                            break;
                        }
                        let Some(e) = self.overflow.pop() else {
                            break;
                        };
                        self.place(e);
                    }
                }
                None => return,
            }
        }
    }
}

impl<E> From<EventQueue<E>> for TimingWheel<E> {
    /// Rebuild a wheel from a drained reference queue (same clock, same
    /// pending events, same FIFO order).
    fn from(mut q: EventQueue<E>) -> Self {
        let mut w = TimingWheel::new();
        w.now = q.now();
        w.cursor = q.now().nanos();
        while let Some((at, ev)) = q.pop() {
            w.push(at, ev);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimingWheel::new();
        q.push(Time(30), "c");
        q.push(Time(10), "a");
        q.push(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = TimingWheel::new();
        for i in 0..100 {
            q.push(Time(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time(42), i)));
        }
    }

    #[test]
    fn same_instant_across_levels_is_fifo() {
        // Entry 0 lands in a level-1 slot (time 0x123400 differs from
        // cursor 0 in the second digit above the grain); entry 1 at the same
        // instant is pushed after the cursor has moved near it and lands in
        // level 0. Both must pop FIFO. Threshold 0 forces wheel mode.
        let mut q = TimingWheel::with_spill_threshold(0);
        q.push(Time(0x123400), 0u32);
        q.push(Time(0x120000), 99);
        assert_eq!(q.pop(), Some((Time(0x120000), 99)));
        q.push(Time(0x123400), 1);
        assert_eq!(q.pop(), Some((Time(0x123400), 0)));
        assert_eq!(q.pop(), Some((Time(0x123400), 1)));
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = TimingWheel::new();
        q.push(Time::ZERO + Dur::micros(5), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::ZERO + Dur::micros(5));
    }

    #[test]
    #[should_panic(expected = "scheduled event")]
    fn scheduling_into_the_past_panics() {
        let mut q = TimingWheel::new();
        q.push(Time(10), ());
        q.pop();
        q.push(Time(5), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = TimingWheel::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(7), 1u8);
        q.push(Time(3), 2u8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn push_below_cursor_after_peek_still_pops_in_order() {
        let mut q = TimingWheel::with_spill_threshold(0);
        q.push(Time(1_000_000), "far");
        // The peek advances the cursor to 1 ms.
        assert_eq!(q.peek_time(), Some(Time(1_000_000)));
        // An external push earlier than the cursor (but after `now`).
        q.push(Time(500), "early-b");
        q.push(Time(100), "early-a");
        q.push(Time(100), "early-a2");
        assert_eq!(q.pop(), Some((Time(100), "early-a")));
        assert_eq!(q.pop(), Some((Time(100), "early-a2")));
        assert_eq!(q.pop(), Some((Time(500), "early-b")));
        assert_eq!(q.pop(), Some((Time(1_000_000), "far")));
    }

    #[test]
    fn overflow_heap_round_trips() {
        let mut q = TimingWheel::with_spill_threshold(0);
        let far = Time(2_000_000_000_000); // ~33 min: beyond the 2^40 ns window
        let farther = Time(4_000_000_000_000);
        q.push(far, "a");
        q.push(farther, "c");
        q.push(Time(5), "now-ish");
        q.push(far, "b");
        assert_eq!(q.pop(), Some((Time(5), "now-ish")));
        assert_eq!(q.pop(), Some((far, "a")));
        assert_eq!(q.pop(), Some((far, "b")));
        assert_eq!(q.pop(), Some((farther, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_stable() {
        let mut q = TimingWheel::with_spill_threshold(0);
        q.push(Time(1), 0);
        q.push(Time(2), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(Time(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn rebuild_from_reference_queue() {
        let mut q = EventQueue::new();
        q.push(Time(10), 1u8);
        q.push(Time(10), 2);
        q.push(Time(5), 3);
        q.pop(); // clock at 5
        let mut w = TimingWheel::from(q);
        assert_eq!(w.now(), Time(5));
        assert_eq!(w.pop(), Some((Time(10), 1)));
        assert_eq!(w.pop(), Some((Time(10), 2)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn differential_vs_heap_exhaustive_small() {
        // Default threshold: crosses in and out of heap mode as the
        // pending count swings.
        run_differential(TimingWheel::new());
    }

    #[test]
    fn differential_vs_heap_wheel_mode_only() {
        // Threshold 0: every entry takes the slot-hierarchy paths.
        run_differential(TimingWheel::with_spill_threshold(0));
    }

    /// Deterministic mixed workload crossing every level boundary.
    fn run_differential(mut wheel: TimingWheel<u64>) {
        let mut heap = EventQueue::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = |q_at: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q_at.wrapping_add(x) // pseudo-random offsets
        };
        let mut pending = 0u32;
        for i in 0..5_000u64 {
            let r = step(i);
            if pending > 0 && r % 3 == 0 {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b);
                pending -= 1;
            } else {
                // Offsets spanning same-window (0), level 0..3 and overflow.
                let off = match r % 7 {
                    0 => 0,
                    1 => r % 200,
                    2 => 0x100 + r % 0x1000,
                    3 => 0x1_0000 + r % 0x10_0000,
                    4 => 0x100_0000 + r % 0x1000_0000,
                    5 => 0x100_0000_0000 + r % 0x1000_0000_0000,
                    _ => r % 16,
                };
                let at = Time(heap.now().nanos() + off);
                heap.push(at, i);
                wheel.push(at, i);
                pending += 1;
            }
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Same invariant as the reference queue's property test, in wheel
        /// mode (threshold 0) so the slot paths are exercised at the small
        /// queue depths proptest generates.
        #[test]
        fn ordering_invariant(ops in proptest::collection::vec((0u64..1000, any::<bool>()), 1..200)) {
            let mut q = TimingWheel::with_spill_threshold(0);
            let mut last: Option<(Time, u64)> = None;
            for (seq, (dt, do_pop)) in ops.into_iter().enumerate() {
                let at = Time(q.now().nanos() + dt);
                q.push(at, seq as u64);
                if do_pop {
                    if let Some((t, s)) = q.pop() {
                        if let Some((lt, ls)) = last {
                            prop_assert!(t > lt || (t == lt && s > ls),
                                "order violated: ({t:?},{s}) after ({lt:?},{ls})");
                        }
                        last = Some((t, s));
                    }
                }
            }
            while let Some((t, s)) = q.pop() {
                if let Some((lt, ls)) = last {
                    prop_assert!(t > lt || (t == lt && s > ls));
                }
                last = Some((t, s));
            }
        }
    }
}
