//! Per-packet causal tracing: span timelines over virtual time.
//!
//! The metrics registry ([`crate::obs`]) aggregates counters; it cannot show
//! *where a particular packet's time went* as it moves host memory → CAB
//! network memory → wire → network memory → host. This module provides the
//! missing flight recorder:
//!
//! * [`FlowId`] — a deterministic identity for a unit of transfer, derived
//!   from the wire-visible 4-tuple (and, where known, the TCP sequence of
//!   the segment), so the sender, the fabric, and the receiver all compute
//!   the *same* id without any wire-format change;
//! * [`Stage`] — the closed taxonomy of lifecycle stages (syscall entry,
//!   kernel output, SDMA, checksum engine, MDMA, wire transit, demux,
//!   socket-buffer dwell, …, plus fault detours);
//! * [`SpanSink`] — a bounded, ring-buffered store of closed [`Span`]s with
//!   open/close/drop conservation counters. Disabled sinks do nothing and
//!   allocate nothing: the hot path stays on the allocation diet.
//! * exporters — [`export_chrome_trace`] renders Chrome trace-event /
//!   Perfetto JSON (one track per engine lane, flow arrows following a
//!   [`FlowId`] across hosts), and [`critical_path`] attributes a flow's
//!   end-to-end latency to stages exactly (the shares sum to the total).
//!
//! Determinism is a hard requirement: spans are stamped with virtual time
//! and a per-sink emission sequence, merged with a stable sort, and all
//! timestamps render as exact decimal nanoseconds — identical seeds produce
//! byte-identical trace files.

use crate::obs::ValueHist;
use crate::time::Time;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Number of distinct [`Stage`]s.
pub const STAGE_COUNT: usize = 16;

/// A lifecycle stage a traced unit of transfer passes through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// `sys_write` entry: user data enters the kernel.
    Syscall,
    /// TCP/UDP output: a segment is materialized from the send queue.
    KernelOutput,
    /// SDMA copy-in: host (user) memory → CAB network memory.
    Sdma,
    /// The outboard checksum engine covering the data (runs with SDMA).
    Checksum,
    /// MDMA transmit: network memory → media.
    MdmaTx,
    /// Wire transit on the fabric (includes fault fates).
    Wire,
    /// MDMA receive: media → network memory (+ auto-DMA prefix to host).
    MdmaRx,
    /// Receive interrupt, IP input and transport demux.
    Demux,
    /// Data dwelling in the receiving socket buffer.
    Sockbuf,
    /// `sys_read` copy-out toward the user (blocking DMA window included).
    SysRecv,
    /// An ACK advancing the sender's window (causality link).
    Ack,
    /// A retransmitted segment (causality link to recovery).
    Retransmit,
    /// A transmission parked in the retry queue (backoff dwell).
    RetryDwell,
    /// The interface running degraded on the traditional path.
    Degraded,
    /// A watchdog board reset.
    WatchdogReset,
    /// A receive copy-out finished by programmed I/O after a DMA error.
    PioFallback,
}

impl Stage {
    /// Every stage, in taxonomy order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Syscall,
        Stage::KernelOutput,
        Stage::Sdma,
        Stage::Checksum,
        Stage::MdmaTx,
        Stage::Wire,
        Stage::MdmaRx,
        Stage::Demux,
        Stage::Sockbuf,
        Stage::SysRecv,
        Stage::Ack,
        Stage::Retransmit,
        Stage::RetryDwell,
        Stage::Degraded,
        Stage::WatchdogReset,
        Stage::PioFallback,
    ];

    /// Stable index into per-stage arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stage's stable name (used in trace files and metric names, so it
    /// is part of the artifact format).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Syscall => "syscall",
            Stage::KernelOutput => "kernel_output",
            Stage::Sdma => "sdma",
            Stage::Checksum => "checksum",
            Stage::MdmaTx => "mdma_tx",
            Stage::Wire => "wire",
            Stage::MdmaRx => "mdma_rx",
            Stage::Demux => "demux",
            Stage::Sockbuf => "sockbuf",
            Stage::SysRecv => "sys_recv",
            Stage::Ack => "ack",
            Stage::Retransmit => "retransmit",
            Stage::RetryDwell => "retry_dwell",
            Stage::Degraded => "degraded",
            Stage::WatchdogReset => "watchdog_reset",
            Stage::PioFallback => "pio_fallback",
        }
    }

    /// The engine/CPU lane (Perfetto track) the stage renders on.
    pub fn lane(self) -> &'static str {
        match self {
            Stage::Syscall => "app.syscall",
            Stage::KernelOutput | Stage::Retransmit => "kern.output",
            Stage::Sdma => "cab.sdma",
            Stage::Checksum => "cab.csum",
            Stage::MdmaTx => "cab.mdma_tx",
            Stage::Wire => "fabric",
            Stage::MdmaRx => "cab.mdma_rx",
            Stage::Demux | Stage::Ack => "kern.input",
            Stage::Sockbuf => "sock.rcv",
            Stage::SysRecv => "app.recv",
            Stage::RetryDwell | Stage::Degraded | Stage::WatchdogReset | Stage::PioFallback => {
                "kern.detour"
            }
        }
    }
}

/// Deterministic identity for a traced unit of transfer.
///
/// The high 32 bits are a hash of the wire-visible 4-tuple *in data
/// direction* (source-of-data → destination-of-data), so every layer on
/// either host computes the same group for one connection. The low 32 bits
/// carry the TCP sequence of the specific segment where the emitting layer
/// knows it, and zero where only the connection is known (socket-buffer
/// dwell, ACK processing, reads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl FlowId {
    /// The "no flow" id used by host-level detour spans.
    pub const NONE: FlowId = FlowId(0);

    /// Hash a data-direction 4-tuple into a flow group.
    ///
    /// FNV-1a over the octets; never returns zero (zero means "no flow").
    pub fn group_of(src_ip: [u8; 4], src_port: u16, dst_ip: [u8; 4], dst_port: u16) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        let mut eat = |b: u8| {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        };
        for b in src_ip {
            eat(b);
        }
        eat((src_port >> 8) as u8);
        eat(src_port as u8);
        for b in dst_ip {
            eat(b);
        }
        eat((dst_port >> 8) as u8);
        eat(dst_port as u8);
        if h == 0 {
            1
        } else {
            h
        }
    }

    /// A flow id for a specific segment of a group.
    #[inline]
    pub fn from_parts(group: u32, seq_lo: u32) -> FlowId {
        FlowId((u64::from(group) << 32) | u64::from(seq_lo))
    }

    /// A group-level flow id (segment unknown).
    #[inline]
    pub fn group_only(group: u32) -> FlowId {
        FlowId::from_parts(group, 0)
    }

    /// The connection-level group this flow belongs to.
    #[inline]
    pub fn group(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The segment sequence (zero when only the group is known).
    #[inline]
    pub fn seq_lo(self) -> u32 {
        self.0 as u32
    }

    /// True for the "no flow" id.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One closed span: a stage a flow occupied over `[start, end]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The traced unit this span belongs to.
    pub flow: FlowId,
    /// Which lifecycle stage.
    pub stage: Stage,
    /// Virtual time the stage began.
    pub start: Time,
    /// Virtual time the stage ended (`>= start`).
    pub end: Time,
    /// Bytes moved/held by the stage (0 where not meaningful).
    pub bytes: u64,
    /// True when the span ended by explicit drop (fault fate, run teardown)
    /// rather than a normal close.
    pub dropped: bool,
    /// Per-sink emission sequence, for stable merge ordering.
    pub seq: u64,
}

#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    key: u64,
    stage: Stage,
    flow: FlowId,
    start: Time,
    bytes: u64,
}

/// A bounded, deterministic store of spans.
///
/// Disabled (the default) every method returns immediately without
/// allocating. Enabled, closed spans land in a ring of fixed capacity
/// (oldest evicted, counted); per-stage duration histograms and the
/// open/close/drop conservation counters are fed on every emission, so the
/// aggregate statistics stay complete even when the ring wraps.
#[derive(Clone, Debug, Default)]
pub struct SpanSink {
    enabled: bool,
    capacity: usize,
    ring: VecDeque<Span>,
    open: VecDeque<OpenSpan>,
    seq: u64,
    evicted: u64,
    opened: u64,
    closed: u64,
    dropped: u64,
    stage_ns: [ValueHist; STAGE_COUNT],
    stage_bytes: [u64; STAGE_COUNT],
}

impl SpanSink {
    /// A disabled sink (records nothing, allocates nothing).
    pub fn disabled() -> SpanSink {
        SpanSink::default()
    }

    /// An enabled sink holding at most `capacity` closed spans.
    pub fn enabled(capacity: usize) -> SpanSink {
        let mut s = SpanSink::default();
        s.enable(capacity);
        s
    }

    /// Enable recording with the given ring capacity.
    pub fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0);
        self.enabled = true;
        self.capacity = capacity;
    }

    /// Whether the sink records anything. Callers doing non-trivial work to
    /// *compute* a span (frame parsing, say) must guard on this.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled
    }

    fn emit(&mut self, flow: FlowId, stage: Stage, start: Time, end: Time, bytes: u64, drop: bool) {
        let i = stage.index();
        self.stage_ns[i].record(end.since(start).as_nanos());
        self.stage_bytes[i] += bytes;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.ring.push_back(Span {
            flow,
            stage,
            start,
            end,
            bytes,
            dropped: drop,
            seq,
        });
    }

    /// Record a complete span in one call (open + close).
    #[inline]
    pub fn span(&mut self, flow: FlowId, stage: Stage, start: Time, end: Time, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.opened += 1;
        self.closed += 1;
        self.emit(flow, stage, start, end, bytes, false);
    }

    /// Open a span to be closed later by `key` + stage (FIFO per key).
    pub fn span_open(&mut self, key: u64, flow: FlowId, stage: Stage, start: Time, bytes: u64) {
        if !self.enabled {
            return;
        }
        if self.open.len() == self.capacity {
            // The open table is bounded like the ring: force-close the
            // oldest entry as dropped rather than growing without limit.
            if let Some(o) = self.open.pop_front() {
                self.dropped += 1;
                self.emit(o.flow, o.stage, o.start, start, o.bytes, true);
            }
        }
        self.opened += 1;
        self.open.push_back(OpenSpan {
            key,
            stage,
            flow,
            start,
            bytes,
        });
    }

    /// Close the oldest open span matching `key` + `stage`. Returns whether
    /// a matching open existed.
    pub fn span_close(&mut self, key: u64, stage: Stage, end: Time) -> bool {
        if !self.enabled {
            return false;
        }
        let Some(pos) = self
            .open
            .iter()
            .position(|o| o.key == key && o.stage == stage)
        else {
            return false;
        };
        let Some(o) = self.open.remove(pos) else {
            return false;
        };
        self.closed += 1;
        self.emit(o.flow, o.stage, o.start, end, o.bytes, false);
        true
    }

    /// Close open spans matching `key` + `stage` FIFO until `bytes` are
    /// consumed; a partially consumed open is split (the consumed part is
    /// emitted, the remainder stays open and counts as a fresh open).
    pub fn span_close_bytes(&mut self, key: u64, stage: Stage, end: Time, mut bytes: u64) {
        if !self.enabled {
            return;
        }
        while bytes > 0 {
            let Some(pos) = self
                .open
                .iter()
                .position(|o| o.key == key && o.stage == stage)
            else {
                return;
            };
            if self.open[pos].bytes > bytes {
                let o = self.open[pos];
                self.open[pos].bytes -= bytes;
                // The remainder is bookkept as a fresh open so the
                // conservation identity opened == closed + dropped holds.
                self.opened += 1;
                self.closed += 1;
                self.emit(o.flow, o.stage, o.start, end, bytes, false);
                return;
            }
            let Some(o) = self.open.remove(pos) else {
                return;
            };
            bytes -= o.bytes;
            self.closed += 1;
            self.emit(o.flow, o.stage, o.start, end, o.bytes, false);
        }
    }

    /// Drop the oldest open span matching `key` + `stage` (fault fate).
    pub fn span_drop(&mut self, key: u64, stage: Stage, end: Time) -> bool {
        if !self.enabled {
            return false;
        }
        let Some(pos) = self
            .open
            .iter()
            .position(|o| o.key == key && o.stage == stage)
        else {
            return false;
        };
        let Some(o) = self.open.remove(pos) else {
            return false;
        };
        self.dropped += 1;
        self.emit(o.flow, o.stage, o.start, end, o.bytes, true);
        true
    }

    /// Drop every still-open span (run teardown), stamping `end`.
    pub fn drop_all_open(&mut self, end: Time) {
        if !self.enabled {
            return;
        }
        while let Some(o) = self.open.pop_front() {
            self.dropped += 1;
            self.emit(o.flow, o.stage, o.start, end.max(o.start), o.bytes, true);
        }
    }

    /// Closed spans currently held, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.ring.iter()
    }

    /// Spans evicted from the ring due to capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Spans opened (conservation: `opened() == closed() + dropped()` once
    /// every open is resolved).
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// Spans closed normally.
    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// Spans ended by explicit drop.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans still open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Per-stage duration histogram (nanoseconds), complete across
    /// evictions.
    pub fn stage_hist(&self, stage: Stage) -> &ValueHist {
        &self.stage_ns[stage.index()]
    }

    /// Per-stage cumulative bytes.
    pub fn stage_bytes(&self, stage: Stage) -> u64 {
        self.stage_bytes[stage.index()]
    }

    /// Fold another sink's per-stage statistics and conservation counters
    /// into this one (used by the world-level aggregation).
    pub fn absorb_stats(&mut self, other: &SpanSink) {
        for (mine, theirs) in self.stage_ns.iter_mut().zip(&other.stage_ns) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.stage_bytes.iter_mut().zip(&other.stage_bytes) {
            *mine += theirs;
        }
        self.opened += other.opened;
        self.closed += other.closed;
        self.dropped += other.dropped;
        self.evicted += other.evicted;
    }
}

/// Render one nanosecond timestamp as the trace-event microsecond field
/// (exact decimal, no floating point: determinism). Shared with the
/// timeline module so counter tracks and span slices agree byte-for-byte
/// on timestamp rendering.
pub(crate) fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_event(out: &mut String, ph: char, pid: u32, tid: u32, ns: u64, name: &str, extra: &str) {
    let _ = write!(
        out,
        "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{name}\"{extra}}}",
        ts_us(ns)
    );
}

/// Export a set of sinks as Chrome trace-event / Perfetto JSON.
///
/// `tracks` pairs each sink with a process id and a process name (one
/// process per host, plus one for the fabric). Within a process, each
/// engine lane gets its own thread track. Flow arrows (`s`/`t`/`f` events)
/// follow each flow group across processes; `flow_limit` bounds how many
/// groups get arrows (`None` = all), selected in order of first appearance.
///
/// The output is byte-deterministic for identical inputs.
pub fn export_chrome_trace(
    tracks: &[(u32, String, &SpanSink)],
    flow_limit: Option<usize>,
) -> String {
    export_chrome_trace_with(tracks, flow_limit, &[])
}

/// [`export_chrome_trace`] plus a set of pre-rendered extra trace events
/// (one JSON object per string, no separators) appended after the span
/// slices and flow arrows — the hook the timeline module uses to merge
/// Perfetto counter tracks (`ph:"C"`) into the same file, sharing the
/// span pid space. Byte-deterministic for identical inputs.
pub fn export_chrome_trace_with(
    tracks: &[(u32, String, &SpanSink)],
    flow_limit: Option<usize>,
    extra_events: &[String],
) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !out.is_empty() {
            if first {
                first = false;
            } else {
                out.push_str(",\n");
            }
        }
    };

    // Lane → tid assignment, deterministic per process: sorted lane names.
    let mut tids: BTreeMap<(u32, &'static str), u32> = BTreeMap::new();
    for (pid, pname, sink) in tracks {
        let mut lanes: Vec<&'static str> = sink.spans().map(|s| s.stage.lane()).collect();
        lanes.sort_unstable();
        lanes.dedup();
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{pname}\"}}}}"
        );
        for (i, lane) in lanes.iter().enumerate() {
            let tid = i as u32;
            tids.insert((*pid, lane), tid);
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{lane}\"}}}}"
            );
        }
    }

    // Merge every span with a stable order: (start, pid, seq).
    let mut all: Vec<(u32, &Span)> = Vec::new();
    for (pid, _, sink) in tracks {
        all.extend(sink.spans().map(|s| (*pid, s)));
    }
    all.sort_by_key(|(pid, s)| (s.start, *pid, s.seq));

    for (pid, s) in &all {
        let tid = tids[&(*pid, s.stage.lane())];
        let dur = s.end.since(s.start).as_nanos();
        sep(&mut out);
        let extra = format!(
            ",\"cat\":\"span\",\"dur\":{},\"args\":{{\"flow\":\"{:08x}\",\"seq_lo\":{},\"bytes\":{},\"fate\":\"{}\"}}",
            ts_us(dur),
            s.flow.group(),
            s.flow.seq_lo(),
            s.bytes,
            if s.dropped { "dropped" } else { "ok" },
        );
        push_event(
            &mut out,
            'X',
            *pid,
            tid,
            s.start.nanos(),
            s.stage.name(),
            &extra,
        );
    }

    // Flow arrows, per group, in order of first appearance.
    let mut groups: Vec<u32> = Vec::new();
    for (_, s) in &all {
        let g = s.flow.group();
        if g != 0 && !groups.contains(&g) {
            groups.push(g);
        }
    }
    if let Some(limit) = flow_limit {
        groups.truncate(limit);
    }
    for g in groups {
        let chain: Vec<&(u32, &Span)> = all.iter().filter(|(_, s)| s.flow.group() == g).collect();
        let n = chain.len();
        if n < 2 {
            continue;
        }
        for (i, (pid, s)) in chain.iter().enumerate() {
            let tid = tids[&(*pid, s.stage.lane())];
            let ph = if i == 0 {
                's'
            } else if i + 1 == n {
                'f'
            } else {
                't'
            };
            sep(&mut out);
            let bp = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
            let extra = format!(",\"cat\":\"flow\",\"id\":\"{g:08x}\"{bp}");
            push_event(&mut out, ph, *pid, tid, s.start.nanos(), "flow", &extra);
        }
    }

    for ev in extra_events {
        sep(&mut out);
        out.push_str(ev);
    }

    out.push_str("\n]}\n");
    out
}

/// One stage's share of a flow's end-to-end latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageShare {
    /// Stage name (`"idle"` for gaps no span covers).
    pub stage: &'static str,
    /// Nanoseconds attributed to the stage.
    pub ns: u64,
}

/// A flow's end-to-end latency attributed to stages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// The flow group analyzed.
    pub group: u32,
    /// First span start.
    pub start: Time,
    /// Last span end.
    pub end: Time,
    /// End-to-end nanoseconds (`end - start`); the shares sum to exactly
    /// this value.
    pub total_ns: u64,
    /// Per-stage attribution, largest first (ties break by name).
    pub shares: Vec<StageShare>,
}

impl CriticalPath {
    /// The stage holding the largest share.
    pub fn dominant(&self) -> &'static str {
        self.shares.first().map(|s| s.stage).unwrap_or("idle")
    }

    /// Human-readable attribution table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path for flow {:08x}: {} ns end-to-end",
            self.group, self.total_ns
        );
        for s in &self.shares {
            let pct = if self.total_ns == 0 {
                0.0
            } else {
                s.ns as f64 * 100.0 / self.total_ns as f64
            };
            let _ = writeln!(out, "  {:<16} {:>12} ns  {:>6.2}%", s.stage, s.ns, pct);
        }
        let _ = writeln!(out, "  dominant stage: {}", self.dominant());
        out
    }
}

/// Attribute a flow group's end-to-end latency to stages.
///
/// Boundary sweep: each instant between the group's first span start and
/// last span end is attributed to the *most recently started* span active
/// at that instant (latest start wins; ties break toward the span emitted
/// last), or to `"idle"` when none covers it. Shares therefore sum to the
/// end-to-end total exactly. Returns `None` when the group has no spans.
pub fn critical_path<'a>(
    spans: impl Iterator<Item = &'a Span>,
    group: u32,
) -> Option<CriticalPath> {
    let mut flow: Vec<&Span> = spans.filter(|s| s.flow.group() == group).collect();
    if flow.is_empty() {
        return None;
    }
    flow.sort_by_key(|s| (s.start, s.seq));
    let start = flow.iter().map(|s| s.start).min().unwrap();
    let end = flow.iter().map(|s| s.end).max().unwrap();
    let mut bounds: Vec<u64> = flow
        .iter()
        .flat_map(|s| [s.start.nanos(), s.end.nanos()])
        .collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut shares: BTreeMap<&'static str, u64> = BTreeMap::new();
    for w in bounds.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        // Active spans cover [start, end) of the segment; the most recently
        // started one owns it.
        let owner = flow
            .iter()
            .filter(|s| s.start.nanos() <= t0 && s.end.nanos() >= t1 && s.start != s.end)
            .max_by_key(|s| (s.start, s.seq))
            .map(|s| s.stage.name())
            .unwrap_or("idle");
        *shares.entry(owner).or_insert(0) += t1 - t0;
    }
    let mut shares: Vec<StageShare> = shares
        .into_iter()
        .map(|(stage, ns)| StageShare { stage, ns })
        .collect();
    shares.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.stage.cmp(b.stage)));
    Some(CriticalPath {
        group,
        start,
        end,
        total_ns: end.since(start).as_nanos(),
        shares,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time(us * 1_000)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = SpanSink::disabled();
        s.span(FlowId::NONE, Stage::Sdma, t(0), t(1), 10);
        s.span_open(1, FlowId::NONE, Stage::Sockbuf, t(0), 10);
        assert!(!s.on());
        assert_eq!(s.spans().count(), 0);
        assert_eq!((s.opened(), s.closed(), s.dropped()), (0, 0, 0));
    }

    #[test]
    fn open_close_conservation() {
        let mut s = SpanSink::enabled(16);
        let f = FlowId::from_parts(7, 100);
        s.span(f, Stage::Sdma, t(0), t(2), 64);
        s.span_open(1, f, Stage::Sockbuf, t(2), 64);
        assert!(s.span_close(1, Stage::Sockbuf, t(5)));
        assert!(!s.span_close(1, Stage::Sockbuf, t(6)), "no double close");
        s.span_open(2, f, Stage::SysRecv, t(5), 64);
        assert!(s.span_drop(2, Stage::SysRecv, t(9)));
        assert_eq!(s.opened(), s.closed() + s.dropped());
        assert_eq!(s.open_count(), 0);
        assert_eq!(s.spans().count(), 3);
    }

    #[test]
    fn close_bytes_splits_fifo() {
        let mut s = SpanSink::enabled(16);
        let f = FlowId::group_only(9);
        s.span_open(1, f, Stage::Sockbuf, t(0), 100);
        s.span_open(1, f, Stage::Sockbuf, t(1), 50);
        // Consume 120: the first open closes whole, the second splits.
        s.span_close_bytes(1, Stage::Sockbuf, t(4), 120);
        assert_eq!(s.open_count(), 1);
        assert_eq!(s.opened(), s.closed() + s.dropped() + 1);
        s.drop_all_open(t(5));
        assert_eq!(s.opened(), s.closed() + s.dropped());
        let bytes: Vec<u64> = s.spans().map(|x| x.bytes).collect();
        assert_eq!(bytes, vec![100, 20, 30]);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let mut s = SpanSink::enabled(4);
        for i in 0..10u64 {
            s.span(FlowId::NONE, Stage::Wire, t(i), t(i + 1), 1);
        }
        assert_eq!(s.spans().count(), 4);
        assert_eq!(s.evicted(), 6);
        // Stats stay complete across evictions.
        assert_eq!(s.stage_hist(Stage::Wire).count, 10);
        assert_eq!(s.stage_bytes(Stage::Wire), 10);
    }

    #[test]
    fn export_is_deterministic_and_schema_shaped() {
        let build = || {
            let mut a = SpanSink::enabled(16);
            let f = FlowId::from_parts(0xAB, 1);
            a.span(f, Stage::Syscall, t(0), t(1), 64);
            a.span(f, Stage::Sdma, t(1), t(3), 64);
            let mut b = SpanSink::enabled(16);
            b.span(f, Stage::Demux, t(4), t(5), 64);
            export_chrome_trace(&[(1, "host0".into(), &a), (2, "host1".into(), &b)], None)
        };
        let x = build();
        assert_eq!(x, build());
        assert!(x.starts_with("{\"displayTimeUnit\":\"ns\""));
        assert!(x.contains("\"ph\":\"X\""));
        assert!(x.contains("\"ph\":\"M\""));
        assert!(x.contains("\"ph\":\"s\"") && x.contains("\"ph\":\"f\""));
        assert!(x.contains("\"name\":\"sdma\""));
        assert!(x.contains("\"ts\":1.000"), "exact microsecond rendering");
    }

    #[test]
    fn critical_path_sums_exactly() {
        let mut s = SpanSink::enabled(16);
        let f = FlowId::from_parts(5, 0);
        s.span(f, Stage::Syscall, t(0), t(2), 0);
        s.span(f, Stage::Sdma, t(2), t(6), 0);
        // Overlap: checksum runs inside the SDMA window but starts later,
        // so it owns its interval.
        s.span(f, Stage::Checksum, t(3), t(5), 0);
        // Gap 6..8, then the wire.
        s.span(f, Stage::Wire, t(8), t(10), 0);
        let cp = critical_path(s.spans(), 5).unwrap();
        assert_eq!(cp.total_ns, 10_000);
        let sum: u64 = cp.shares.iter().map(|x| x.ns).sum();
        assert_eq!(sum, cp.total_ns);
        let get = |n: &str| cp.shares.iter().find(|x| x.stage == n).map(|x| x.ns);
        assert_eq!(get("syscall"), Some(2_000));
        assert_eq!(get("sdma"), Some(2_000));
        assert_eq!(get("checksum"), Some(2_000));
        assert_eq!(get("idle"), Some(2_000));
        assert_eq!(get("wire"), Some(2_000));
        assert_eq!(cp.dominant(), "checksum", "ties break by name");
    }

    #[test]
    fn flow_ids_are_stable_and_orientation_sensitive() {
        let a = FlowId::group_of([10, 0, 0, 1], 5000, [10, 0, 0, 2], 7000);
        let b = FlowId::group_of([10, 0, 0, 1], 5000, [10, 0, 0, 2], 7000);
        let c = FlowId::group_of([10, 0, 0, 2], 7000, [10, 0, 0, 1], 5000);
        assert_eq!(a, b);
        assert_ne!(a, c, "direction is part of the identity");
        let f = FlowId::from_parts(a, 42);
        assert_eq!(f.group(), a);
        assert_eq!(f.seq_lo(), 42);
        assert!(!f.is_none());
        assert!(FlowId::NONE.is_none());
    }
}
