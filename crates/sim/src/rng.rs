//! Deterministic PRNG.
//!
//! PCG32 (Melissa O'Neill's `pcg32_random_r`) with a SplitMix64 seeder. The
//! stream is fixed by this file, so experiment results never shift under us
//! when an external RNG crate revs its algorithm.

/// A probability knob was configured outside `[0, 1]` (or was not a finite
/// number). [`Pcg32::chance`] only `debug_assert!`s its argument, so release
/// builds would silently misdraw; fault-injection constructors validate with
/// [`check_probability`] and surface this typed error instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfigError {
    /// Name of the offending knob (e.g. `"drop_p"`).
    pub knob: &'static str,
    /// The rejected value.
    pub value: f64,
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault probability {} = {} is outside [0, 1]",
            self.knob, self.value
        )
    }
}

impl std::error::Error for FaultConfigError {}

/// Check that one probability knob is a finite value in `[0, 1]`.
pub fn check_probability(knob: &'static str, value: f64) -> Result<(), FaultConfigError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(FaultConfigError { knob, value })
    }
}

/// A PCG-XSH-RR 64/32 generator.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Pcg32 {
    /// Create a generator from a 64-bit seed. Distinct seeds give distinct,
    /// well-mixed streams (the stream selector is derived from the seed too).
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let init_state = splitmix64(&mut s);
        let init_inc = splitmix64(&mut s) | 1; // must be odd
        let mut rng = Pcg32 {
            state: 0,
            inc: init_inc,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(init_state);
        rng.next_u32();
        rng
    }

    /// Derive an independent child generator (for giving each component its
    /// own stream without coupling their consumption patterns).
    pub fn fork(&mut self) -> Pcg32 {
        let seed = ((self.next_u32() as u64) << 32) | self.next_u32() as u64;
        Pcg32::new(seed)
    }

    /// The next 32 random bits (PCG-XSH-RR output function).
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 random bits (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform in `[0, bound)` using Lemire-style rejection to avoid modulo
    /// bias.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "below(0) is meaningless");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = (r as u64) * (bound as u64);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.unit_f64() < p
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(4);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg32::new(12345);
        let mut b = Pcg32::new(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let sa: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Pcg32::new(7);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.below(10);
            assert!(v < 10);
            buckets[v as usize] += 1;
        }
        for &b in &buckets {
            // Expect 10_000 per bucket; allow generous slack.
            assert!((8_500..11_500).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = Pcg32::new(99);
        for _ in 0..10_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::new(4);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Pcg32::new(5);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        // Practically impossible for 7 random bytes to all be zero.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::new(11);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn fork_decouples_streams() {
        let mut a = Pcg32::new(123);
        let mut child = a.fork();
        let parent_next = a.next_u32();
        let child_next = child.next_u32();
        assert_ne!(parent_next, child_next);
    }
}
