//! Pluggable event-scheduler engine.
//!
//! The simulator core can run on either the reference binary-heap
//! [`EventQueue`] or the O(1) [`TimingWheel`]. Both implement identical
//! `(Time, seq)` FIFO semantics — the wheel is the default because it is
//! faster on the timer-heavy schedules TCP generates, and the heap stays
//! available for differential testing and A/B byte-identity checks.

use crate::queue::EventQueue;
use crate::time::Time;
use crate::wheel::TimingWheel;

/// Which scheduler implementation a simulation runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Reference `BinaryHeap` scheduler (O(log n) push/pop).
    Heap,
    /// Hierarchical timing wheel (amortized O(1) push/pop), the default.
    #[default]
    Wheel,
}

impl EngineKind {
    /// Parse `"heap"` / `"wheel"` (CLI `--engine` flags).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "heap" => Some(EngineKind::Heap),
            "wheel" => Some(EngineKind::Wheel),
            _ => None,
        }
    }

    /// The CLI name of this engine.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Heap => "heap",
            EngineKind::Wheel => "wheel",
        }
    }

    /// Resolve the engine from `OUTBOARD_ENGINE` (`"heap"` / `"wheel"`),
    /// defaulting to the wheel. Lets the CI byte-identity steps re-run any
    /// bin on the reference heap without per-bin flags. Aborts on a
    /// malformed value rather than silently falling back.
    pub fn from_env() -> EngineKind {
        match std::env::var("OUTBOARD_ENGINE") {
            Ok(v) => match EngineKind::parse(&v) {
                Some(k) => k,
                None => {
                    eprintln!("OUTBOARD_ENGINE must be \"heap\" or \"wheel\", got {v:?}");
                    std::process::exit(2);
                }
            },
            Err(_) => EngineKind::default(),
        }
    }
}

/// A scheduler that is either the reference heap or the timing wheel,
/// behind the [`EventQueue`] API. `peek_time` takes `&mut self` because the
/// wheel's peek may advance its internal cursor (never past the earliest
/// pending event).
// One engine lives per world and is never moved on the hot path, so the
// size gap between the inline wheel and the heap doesn't matter; boxing
// the wheel would put a pointer chase on every push/pop instead.
#[allow(clippy::large_enum_variant)]
pub enum EventEngine<E> {
    /// Reference heap scheduler.
    Heap(EventQueue<E>),
    /// Timing-wheel scheduler.
    Wheel(TimingWheel<E>),
}

impl<E> Default for EventEngine<E> {
    fn default() -> Self {
        Self::new(EngineKind::default())
    }
}

impl<E> EventEngine<E> {
    /// An empty engine of the given kind with the clock at time zero.
    pub fn new(kind: EngineKind) -> Self {
        match kind {
            EngineKind::Heap => EventEngine::Heap(EventQueue::new()),
            EngineKind::Wheel => EventEngine::Wheel(TimingWheel::new()),
        }
    }

    /// Which implementation this engine runs on.
    pub fn kind(&self) -> EngineKind {
        match self {
            EventEngine::Heap(_) => EngineKind::Heap,
            EventEngine::Wheel(_) => EngineKind::Wheel,
        }
    }

    /// The instant of the most recently popped event.
    #[inline]
    pub fn now(&self) -> Time {
        match self {
            EventEngine::Heap(q) => q.now(),
            EventEngine::Wheel(w) => w.now(),
        }
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the
    /// past (see [`EventQueue::push`]).
    #[inline]
    pub fn push(&mut self, at: Time, event: E) {
        match self {
            EventEngine::Heap(q) => q.push(at, event),
            EventEngine::Wheel(w) => w.push(at, event),
        }
    }

    /// Pop the earliest event and advance the clock to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        match self {
            EventEngine::Heap(q) => q.pop(),
            EventEngine::Wheel(w) => w.pop(),
        }
    }

    /// The timestamp of the next event without popping it.
    #[inline]
    pub fn peek_time(&mut self) -> Option<Time> {
        match self {
            EventEngine::Heap(q) => q.peek_time(),
            EventEngine::Wheel(w) => w.peek_time(),
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        match self {
            EventEngine::Heap(q) => q.len(),
            EventEngine::Wheel(w) => w.len(),
        }
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        match self {
            EventEngine::Heap(q) => q.is_empty(),
            EventEngine::Wheel(w) => w.is_empty(),
        }
    }

    /// Drop every queued event (keeps the clock).
    pub fn clear(&mut self) {
        match self {
            EventEngine::Heap(q) => q.clear(),
            EventEngine::Wheel(w) => w.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips() {
        assert_eq!(EngineKind::parse("heap"), Some(EngineKind::Heap));
        assert_eq!(EngineKind::parse("wheel"), Some(EngineKind::Wheel));
        assert_eq!(EngineKind::parse("splay"), None);
        assert_eq!(EngineKind::Heap.name(), "heap");
        assert_eq!(EngineKind::Wheel.name(), "wheel");
        assert_eq!(EngineKind::default(), EngineKind::Wheel);
    }

    #[test]
    fn both_engines_pop_identically() {
        let mut h = EventEngine::<u32>::new(EngineKind::Heap);
        let mut w = EventEngine::<u32>::new(EngineKind::Wheel);
        for (at, ev) in [(5u64, 0u32), (1, 1), (5, 2), (3, 3)] {
            h.push(Time(at), ev);
            w.push(Time(at), ev);
        }
        assert_eq!(h.len(), w.len());
        assert_eq!(h.peek_time(), w.peek_time());
        loop {
            let a = h.pop();
            let b = w.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
