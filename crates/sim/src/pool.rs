//! Slab/freelist buffer pools for the simulator's per-frame hot paths.
//!
//! Every frame that crosses the simulated fabric used to allocate a fresh
//! `Vec<u8>` (netsim wire frames, CAB packet buffers, mbuf clusters). A
//! [`BufPool`] recycles that storage: `acquire` hands out a zero-filled
//! buffer from a power-of-two size-class freelist (or the allocator on a
//! miss), and the buffer comes back either explicitly via `release` or
//! automatically when the last [`Bytes`] view of a `freeze`d buffer drops
//! (through the vendored `bytes` crate's [`StorageHook`]).
//!
//! Every acquisition is tagged with a generation-tagged [`Ticket`]
//! (`slot << 32 | generation`): releasing a stale or already-released
//! ticket is counted in `ticket_errors` instead of corrupting the freelist,
//! so recycled-handle aliasing (the bug class dma-check exists for) is
//! detected rather than silent.
//!
//! Determinism: the pool affects only *where* buffer storage comes from,
//! never its contents (buffers are zeroed on acquire, exactly like the
//! `vec![0; len]` call sites it replaces) and never simulation order. Stats
//! are plain counters, identical across heap/wheel engines and across
//! serial/parallel sweeps of the same run.

use bytes::{Bytes, StorageHook};
use std::sync::{Arc, Mutex};

/// Smallest pooled size class, bytes (log2).
const MIN_CLASS: u32 = 10; // 1 KiB
/// Largest pooled size class, bytes (log2). Larger requests fall through to
/// the allocator and are dropped on release.
const MAX_CLASS: u32 = 20; // 1 MiB
/// Retained buffers per size class; beyond this, released storage is freed
/// (`discards`) so a burst can't pin memory forever.
const CLASS_DEPTH: usize = 64;

/// Proof-of-acquisition for one pooled buffer: `slot << 32 | generation`.
///
/// The slot is reused after release, but with a bumped generation, so a
/// double release or a release of a stale handle never matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket(pub u64);

impl Ticket {
    #[inline]
    fn slot(self) -> usize {
        (self.0 >> 32) as usize
    }
    #[inline]
    fn gen(self) -> u32 {
        self.0 as u32
    }
}

/// Counters for one pool, all monotone except `high_water`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out.
    pub acquires: u64,
    /// Buffers returned (explicitly or via the `Bytes` drop hook).
    pub releases: u64,
    /// Acquisitions served from a freelist (no allocation).
    pub hits: u64,
    /// Acquisitions that had to allocate.
    pub misses: u64,
    /// Returned buffers freed because their class freelist was full (or the
    /// buffer was larger than the largest pooled class).
    pub discards: u64,
    /// Maximum simultaneously-outstanding buffers.
    pub high_water: u64,
    /// Releases with a stale, reused, or foreign ticket (should be zero).
    pub ticket_errors: u64,
}

struct Slot {
    gen: u32,
    live: bool,
}

struct PoolInner {
    /// One freelist per power-of-two class in `MIN_CLASS..=MAX_CLASS`.
    classes: Vec<Vec<Vec<u8>>>,
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    outstanding: u64,
    stats: PoolStats,
}

/// A generation-tagged slab/freelist pool for frame and packet storage.
/// Shared as `Arc<BufPool>`; the mutex is uncontended in a single world and
/// only exists so frozen frames may outlive their world.
pub struct BufPool {
    inner: Mutex<PoolInner>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new()
    }
}

fn class_of(len: usize) -> Option<usize> {
    let want = len.max(1).next_power_of_two().max(1 << MIN_CLASS);
    let log = want.trailing_zeros();
    if log > MAX_CLASS {
        None
    } else {
        Some((log - MIN_CLASS) as usize)
    }
}

impl BufPool {
    /// Pool state guard. A panicking holder poisons the mutex, but every
    /// pool operation leaves the state consistent (counters and free lists
    /// are updated together), so recover the guard instead of propagating.
    fn state(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// An empty pool.
    pub fn new() -> BufPool {
        BufPool {
            inner: Mutex::new(PoolInner {
                classes: (0..=(MAX_CLASS - MIN_CLASS) as usize)
                    .map(|_| Vec::new())
                    .collect(),
                slots: Vec::new(),
                free_slots: Vec::new(),
                outstanding: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Hand out a zero-filled buffer of exactly `len` bytes plus the ticket
    /// that must accompany its return.
    pub fn acquire(&self, len: usize) -> (Vec<u8>, Ticket) {
        let mut g = self.state();
        let buf = match class_of(len).and_then(|c| g.classes[c].pop()) {
            Some(mut b) => {
                g.stats.hits += 1;
                // Same contents contract as the `vec![0; len]` sites this
                // replaces: all zero, exact length.
                b.clear();
                b.resize(len, 0);
                b
            }
            None => {
                g.stats.misses += 1;
                // Allocate the whole class so the capacity recycles; the
                // length is still exactly `len`.
                let cap = class_of(len)
                    .map(|c| 1usize << (c as u32 + MIN_CLASS))
                    .unwrap_or(len);
                let mut b = Vec::with_capacity(cap);
                b.resize(len, 0);
                b
            }
        };
        let slot = match g.free_slots.pop() {
            Some(s) => {
                g.slots[s as usize].live = true;
                s
            }
            None => {
                g.slots.push(Slot { gen: 0, live: true });
                (g.slots.len() - 1) as u32
            }
        };
        let gen = g.slots[slot as usize].gen;
        g.stats.acquires += 1;
        g.outstanding += 1;
        g.stats.high_water = g.stats.high_water.max(g.outstanding);
        (buf, Ticket(((slot as u64) << 32) | gen as u64))
    }

    /// Return a buffer. Invalid tickets (double release, stale generation)
    /// are counted in `ticket_errors` and the storage is freed, not pooled.
    pub fn release(&self, buf: Vec<u8>, ticket: Ticket) {
        let mut g = self.state();
        let slot = ticket.slot();
        let valid = g
            .slots
            .get(slot)
            .map(|s| s.live && s.gen == ticket.gen())
            .unwrap_or(false);
        if !valid {
            g.stats.ticket_errors += 1;
            return;
        }
        g.slots[slot].live = false;
        g.slots[slot].gen = g.slots[slot].gen.wrapping_add(1);
        g.free_slots.push(slot as u32);
        g.stats.releases += 1;
        g.outstanding -= 1;
        match class_of(buf.capacity()) {
            Some(c) if g.classes[c].len() < CLASS_DEPTH && buf.capacity().is_power_of_two() => {
                g.classes[c].push(buf)
            }
            _ => g.stats.discards += 1,
        }
    }

    /// Freeze an acquired buffer into [`Bytes`] that returns its storage to
    /// this pool automatically when the last view drops.
    pub fn freeze(self: &Arc<Self>, buf: Vec<u8>, ticket: Ticket) -> Bytes {
        Bytes::with_hook(buf, Arc::clone(self) as Arc<dyn StorageHook>, ticket.0)
    }

    /// Acquire, fill with `src`, and freeze in one step — the pooled
    /// equivalent of `Bytes::copy_from_slice`.
    pub fn copy_from_slice(self: &Arc<Self>, src: &[u8]) -> Bytes {
        let (mut buf, ticket) = self.acquire(src.len());
        buf.copy_from_slice(src);
        self.freeze(buf, ticket)
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> PoolStats {
        self.state().stats
    }

    /// `acquires == releases` (nothing outstanding) and no ticket errors —
    /// the teardown conservation check.
    pub fn balanced(&self) -> bool {
        let g = self.state();
        g.outstanding == 0 && g.stats.ticket_errors == 0
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("stats", &self.stats())
            .finish()
    }
}

impl StorageHook for BufPool {
    fn reclaim(&self, buf: Vec<u8>, ticket: u64) {
        self.release(buf, Ticket(ticket));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_zeroed_and_exact_len() {
        let p = BufPool::new();
        let (buf, t) = p.acquire(100);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&b| b == 0));
        p.release(buf, t);
        // Recycled buffer must come back zeroed even after being dirtied.
        let (mut buf, t) = p.acquire(50);
        buf.iter_mut().for_each(|b| *b = 0xff);
        p.release(buf, t);
        let (buf, _t) = p.acquire(200);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn steady_state_hits_after_warmup() {
        let p = BufPool::new();
        for _ in 0..100 {
            let (buf, t) = p.acquire(2048);
            p.release(buf, t);
        }
        let s = p.stats();
        assert_eq!(s.acquires, 100);
        assert_eq!(s.releases, 100);
        assert_eq!(s.misses, 1, "only the first acquire allocates");
        assert_eq!(s.hits, 99);
        assert_eq!(s.high_water, 1);
        assert!(p.balanced());
    }

    #[test]
    fn double_release_is_counted_not_corrupting() {
        let p = BufPool::new();
        let (buf, t) = p.acquire(64);
        p.release(buf, t);
        p.release(vec![0; 64], t); // stale ticket
        let s = p.stats();
        assert_eq!(s.releases, 1);
        assert_eq!(s.ticket_errors, 1);
        assert!(!p.balanced());
    }

    #[test]
    fn generation_prevents_slot_aliasing() {
        let p = BufPool::new();
        let (b1, t1) = p.acquire(64);
        p.release(b1, t1);
        // Slot is reused with a new generation.
        let (b2, t2) = p.acquire(64);
        assert_eq!(t1.slot(), t2.slot());
        assert_ne!(t1.gen(), t2.gen());
        p.release(vec![0; 64], t1); // the OLD ticket must not free the NEW buffer
        assert_eq!(p.stats().ticket_errors, 1);
        p.release(b2, t2);
        assert_eq!(p.stats().releases, 2);
    }

    #[test]
    fn freeze_returns_storage_when_views_drop() {
        let p = Arc::new(BufPool::new());
        let (mut buf, t) = p.acquire(1024);
        buf[0] = 42;
        let b = p.freeze(buf, t);
        let view = b.slice(..10);
        drop(b);
        assert_eq!(p.stats().releases, 0, "a view is still alive");
        assert_eq!(view[0], 42);
        drop(view);
        assert_eq!(p.stats().releases, 1);
        assert!(p.balanced());
        // And the storage actually recycles.
        let (_buf, _t) = p.acquire(1024);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn oversized_requests_fall_through() {
        let p = BufPool::new();
        let (buf, t) = p.acquire(2 * 1024 * 1024);
        assert_eq!(buf.len(), 2 * 1024 * 1024);
        p.release(buf, t);
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.discards, 1, "oversized storage is freed, not pooled");
        assert!(p.balanced());
    }

    #[test]
    fn class_depth_bounds_retention() {
        let p = BufPool::new();
        let handles: Vec<_> = (0..CLASS_DEPTH + 10).map(|_| p.acquire(4096)).collect();
        assert_eq!(p.stats().high_water, (CLASS_DEPTH + 10) as u64);
        for (b, t) in handles {
            p.release(b, t);
        }
        let s = p.stats();
        assert_eq!(s.discards, 10);
        assert!(p.balanced());
    }

    #[test]
    fn copy_from_slice_matches_contents() {
        let p = Arc::new(BufPool::new());
        let b = p.copy_from_slice(b"frame payload");
        assert_eq!(&b[..], b"frame payload");
        drop(b);
        assert!(p.balanced());
    }
}
