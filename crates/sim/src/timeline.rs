//! Windowed time-series telemetry: the time dimension of observability.
//!
//! [`MetricsRegistry`](crate::obs::MetricsRegistry) snapshots counters at
//! end-of-run; spans ([`crate::span`]) explain single packets. Neither can
//! answer "what did netmem occupancy and the retransmit rate look like
//! *during* the 130 ms squeeze?". A [`Timeline`] does: a declared set of
//! counters and gauges is sampled on a fixed virtual-time window (1 ms by
//! default), and each window stores the counter *delta* (equivalently the
//! per-window rate) or the gauge *level* in a bounded ring.
//!
//! Determinism and exactness are design requirements, matching the rest of
//! the crate:
//!
//! * Sampling is driven by virtual time only — the caller samples when the
//!   event clock crosses a window boundary, so two runs with the same seed
//!   (on either event engine) produce byte-identical timelines.
//! * Conservation is exact: for every counter series,
//!   `base + sum(window deltas) == final value`. Ring eviction folds the
//!   evicted window's delta into `base`, so the identity survives bounded
//!   memory. [`Timeline::conserves`] checks it.
//! * All arithmetic is integral; JSON/CSV renderings use exact decimal
//!   formatting (no floats), so exports are byte-stable.
//!
//! Exports: [`Timeline::to_json`] / [`Timeline::to_csv`] for artifacts,
//! [`Timeline::chrome_counter_events`] for Perfetto counter tracks merged
//! into the span trace (`ph:"C"` events sharing the span pid space),
//! [`Timeline::sparklines`] for a terminal summary, and
//! [`Timeline::tail_json`] for the flight recorder's last-N-windows dump.

use crate::span::ts_us;
use crate::time::Dur;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// What a declared series measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// A monotone (or at least cumulative) counter: each window stores the
    /// delta over the window, and `base + sum(deltas) == final` exactly.
    Counter,
    /// An instantaneous level: each window stores the level observed at
    /// the window's closing boundary.
    Gauge,
}

impl SeriesKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// Handle returned by [`Timeline::declare`]; values passed to
/// [`Timeline::record`] follow declaration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesId(pub usize);

struct Series {
    name: String,
    kind: SeriesKind,
    unit: &'static str,
    pid: u32,
    /// Value folded out of evicted windows (counters); the declared-time
    /// starting value otherwise. Conservation: `base + sum == last`.
    base: i64,
    /// Last absolute value sampled.
    last: i64,
    /// High-water mark of window samples: the peak per-window delta
    /// (counters, i.e. the peak rate) or peak level (gauges).
    hwm: i64,
    /// Per-window deltas (counters) or closing levels (gauges), one entry
    /// per retained window, oldest first.
    samples: VecDeque<i64>,
}

/// Read-only view of one series, for exports and tests.
pub struct SeriesView<'a> {
    /// Dotted taxonomy name (`host0.tx_bytes`, `world.pool_in_use`).
    pub name: &'a str,
    /// Counter or gauge.
    pub kind: SeriesKind,
    /// Human unit label (`"bytes"`, `"pages"`, …) used as the Perfetto
    /// counter-track argument key.
    pub unit: &'static str,
    /// Trace process the series belongs to (host index, or host-count for
    /// world-wide series) — shares the span exporter's pid space.
    pub pid: u32,
    /// Value folded out of evicted windows.
    pub base: i64,
    /// Last absolute value sampled.
    pub final_value: i64,
    /// High-water mark of window samples: the peak per-window delta
    /// (counters, i.e. the peak rate) or peak level (gauges).
    pub hwm: i64,
    /// Retained per-window samples, oldest first.
    pub samples: &'a VecDeque<i64>,
}

/// A bounded, windowed, deterministic time-series recorder.
///
/// Usage: [`declare`](Timeline::declare) every series up front, then call
/// [`record`](Timeline::record) once per closed window with the absolute
/// values of every series in declaration order (the caller owns the clock
/// and the boundary-crossing logic). A final partial window goes through
/// [`record_partial`](Timeline::record_partial).
pub struct Timeline {
    window: Dur,
    capacity: usize,
    series: Vec<Series>,
    /// Total windows recorded, including evicted ones.
    windows: u64,
    /// Windows evicted from the front of the rings.
    evicted: u64,
    /// Virtual end of the last recorded window (ns). Equals
    /// `windows * window` except after a partial final window.
    end_ns: u64,
}

impl Timeline {
    /// A new timeline sampling on `window` (must be non-zero), retaining at
    /// most `capacity` windows (clamped to at least 1).
    pub fn new(window: Dur, capacity: usize) -> Timeline {
        assert!(!window.is_zero(), "timeline window must be non-zero");
        Timeline {
            window,
            capacity: capacity.max(1),
            series: Vec::new(),
            windows: 0,
            evicted: 0,
            end_ns: 0,
        }
    }

    /// The sampling window.
    pub fn window(&self) -> Dur {
        self.window
    }

    /// Retention capacity in windows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total windows recorded, including evicted ones.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Windows evicted from the rings (0 until `capacity` is exceeded).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Index of the oldest retained window.
    pub fn first_retained(&self) -> u64 {
        self.evicted
    }

    /// Virtual end of the last recorded window, in nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.end_ns
    }

    /// Number of declared series.
    pub fn series_len(&self) -> usize {
        self.series.len()
    }

    /// Declare a series. `initial` is the series' absolute value at
    /// declaration time (normally 0); deltas for the first window are
    /// relative to it. Declare everything before the first
    /// [`record`](Timeline::record).
    pub fn declare(
        &mut self,
        name: &str,
        kind: SeriesKind,
        unit: &'static str,
        pid: u32,
        initial: i64,
    ) -> SeriesId {
        assert_eq!(self.windows, 0, "declare all series before recording");
        self.series.push(Series {
            name: name.to_string(),
            kind,
            unit,
            pid,
            base: initial,
            last: initial,
            // The hwm covers window samples: a counter's peak rate starts
            // at zero, a gauge's peak level at the declared level.
            hwm: match kind {
                SeriesKind::Counter => 0,
                SeriesKind::Gauge => initial,
            },
            samples: VecDeque::new(),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Read-only view of series `idx` (declaration order).
    pub fn series_view(&self, idx: usize) -> SeriesView<'_> {
        let s = &self.series[idx];
        SeriesView {
            name: &s.name,
            kind: s.kind,
            unit: s.unit,
            pid: s.pid,
            base: s.base,
            final_value: s.last,
            hwm: s.hwm,
            samples: &s.samples,
        }
    }

    /// Close one full window with the absolute values of every series, in
    /// declaration order. The window covers
    /// `[windows * window, (windows + 1) * window)`.
    pub fn record(&mut self, values: &[i64]) {
        let end = (self.windows + 1) * self.window.as_nanos();
        self.record_at(end, values);
    }

    /// Close a final, possibly partial window ending at `end_ns` (run
    /// teardown). `end_ns` must not precede the last closed boundary.
    pub fn record_partial(&mut self, end_ns: u64, values: &[i64]) {
        debug_assert!(end_ns >= self.windows * self.window.as_nanos());
        self.record_at(end_ns, values);
    }

    fn record_at(&mut self, end_ns: u64, values: &[i64]) {
        assert_eq!(
            values.len(),
            self.series.len(),
            "record() values must match declared series"
        );
        for (s, &v) in self.series.iter_mut().zip(values) {
            let sample = match s.kind {
                SeriesKind::Counter => v - s.last,
                SeriesKind::Gauge => v,
            };
            s.samples.push_back(sample);
            s.last = v;
            if sample > s.hwm {
                s.hwm = sample;
            }
        }
        self.windows += 1;
        self.end_ns = end_ns;
        if self.series.first().map(|s| s.samples.len()).unwrap_or(0) > self.capacity {
            for s in &mut self.series {
                if let Some(old) = s.samples.pop_front() {
                    // Fold the evicted delta into the base so conservation
                    // (`base + sum == last`) survives bounded memory. For
                    // gauges the base tracks the level entering the ring.
                    match s.kind {
                        SeriesKind::Counter => s.base += old,
                        SeriesKind::Gauge => s.base = old,
                    }
                }
            }
            self.evicted += 1;
        }
    }

    /// Exact conservation check: every counter series satisfies
    /// `base + sum(retained deltas) == final value`.
    pub fn conserves(&self) -> bool {
        self.series.iter().all(|s| match s.kind {
            SeriesKind::Counter => s.base + s.samples.iter().sum::<i64>() == s.last,
            SeriesKind::Gauge => true,
        })
    }

    /// Start of retained window `k` (ns).
    fn window_start_ns(&self, k: u64) -> u64 {
        k * self.window.as_nanos()
    }

    /// End of retained window `k` (ns): the next boundary, except the last
    /// window which may be partial.
    fn window_end_ns(&self, k: u64) -> u64 {
        if k + 1 == self.windows {
            self.end_ns
        } else {
            (k + 1) * self.window.as_nanos()
        }
    }

    /// Render the timeline as `outboard-timeline-v1` JSON. Integral and
    /// byte-deterministic; conservation is visible in the artifact
    /// (`base + sum == final` per counter series).
    pub fn to_json(&self) -> String {
        self.render_json(0)
    }

    /// Like [`to_json`](Timeline::to_json), but only the last `last_n`
    /// retained windows — the flight-recorder fragment. Per-series `base`
    /// is re-folded so conservation holds within the fragment.
    pub fn tail_json(&self, last_n: usize) -> String {
        let retained = self.series.first().map(|s| s.samples.len()).unwrap_or(0);
        self.render_json(retained.saturating_sub(last_n))
    }

    fn render_json(&self, skip: usize) -> String {
        let mut out = String::from("{\n  \"schema\": \"outboard-timeline-v1\",\n");
        let _ = writeln!(out, "  \"window_ns\": {},", self.window.as_nanos());
        let _ = writeln!(out, "  \"windows\": {},", self.windows);
        let _ = writeln!(out, "  \"evicted\": {},", self.evicted);
        let _ = writeln!(out, "  \"first_retained\": {},", self.evicted + skip as u64);
        let _ = writeln!(out, "  \"end_ns\": {},", self.end_ns);
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            let skipped: i64 = s.samples.iter().take(skip).sum();
            let base = match s.kind {
                SeriesKind::Counter => s.base + skipped,
                SeriesKind::Gauge => s
                    .samples
                    .get(skip.wrapping_sub(1))
                    .copied()
                    .unwrap_or(s.base),
            };
            let sum: i64 = s.samples.iter().skip(skip).sum();
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"kind\": \"{}\", \"unit\": \"{}\", \
                 \"pid\": {}, \"base\": {}, \"final\": {}, \"sum\": {}, \
                 \"hwm\": {}, \"samples\": [",
                s.name,
                s.kind.name(),
                s.unit,
                s.pid,
                base,
                s.last,
                sum,
                s.hwm,
            );
            for (j, v) in s.samples.iter().skip(skip).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("]}");
            if i + 1 < self.series.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render the retained windows as CSV: one row per window, one column
    /// per series (counter columns are per-window deltas, gauge columns
    /// closing levels).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("window,start_ns,end_ns");
        for s in &self.series {
            let _ = write!(out, ",{}", s.name);
        }
        out.push('\n');
        let retained = self.series.first().map(|s| s.samples.len()).unwrap_or(0);
        for i in 0..retained {
            let k = self.evicted + i as u64;
            let _ = write!(
                out,
                "{},{},{}",
                k,
                self.window_start_ns(k),
                self.window_end_ns(k)
            );
            for s in &self.series {
                let _ = write!(out, ",{}", s.samples[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Pre-rendered Chrome trace-event counter events (`ph:"C"`), one per
    /// series per retained window, in ascending-timestamp order. Each
    /// event's `pid` is the series' declared pid, so the tracks merge into
    /// the span exporter's process space; the `args` key is the unit label.
    pub fn chrome_counter_events(&self) -> Vec<String> {
        let retained = self.series.first().map(|s| s.samples.len()).unwrap_or(0);
        let mut out = Vec::with_capacity(retained * self.series.len());
        for i in 0..retained {
            let k = self.evicted + i as u64;
            let ts = ts_us(self.window_start_ns(k));
            for s in &self.series {
                out.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{},\"name\":\"{}\",\
                     \"cat\":\"timeline\",\"args\":{{\"{}\":{}}}}}",
                    s.pid, ts, s.name, s.unit, s.samples[i]
                ));
            }
        }
        out
    }

    /// ASCII sparkline summary of every series (last windows, downsampled
    /// to at most 64 columns by per-chunk maximum).
    pub fn sparklines(&self) -> String {
        const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        const COLS: usize = 64;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline: {} windows x {} ({} evicted)",
            self.windows, self.window, self.evicted
        );
        for s in &self.series {
            let n = s.samples.len();
            let chunk = n.div_ceil(COLS).max(1);
            let mut cells: Vec<i64> = Vec::new();
            let mut i = 0;
            while i < n {
                let end = (i + chunk).min(n);
                cells.push((i..end).map(|j| s.samples[j].max(0)).max().unwrap_or(0));
                i = end;
            }
            let peak = cells.iter().copied().max().unwrap_or(0).max(1);
            let mut spark = String::new();
            for c in &cells {
                let idx = ((*c * (BLOCKS.len() as i64 - 1)) + peak - 1) / peak;
                spark.push(BLOCKS[(idx.clamp(0, BLOCKS.len() as i64 - 1)) as usize]);
            }
            let _ = writeln!(
                out,
                "  {:<26} {:<cols$} final={} hwm={}",
                s.name,
                spark,
                s.last,
                s.hwm,
                cols = COLS.min(cells.len().max(1)),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Dur {
        Dur::millis(n)
    }

    #[test]
    fn counter_deltas_and_conservation() {
        let mut tl = Timeline::new(ms(1), 1024);
        let c = tl.declare("world.bytes", SeriesKind::Counter, "bytes", 0, 0);
        tl.record(&[100]);
        tl.record(&[100]);
        tl.record(&[350]);
        let v = tl.series_view(c.0);
        assert_eq!(v.samples.iter().copied().collect::<Vec<_>>(), [100, 0, 250]);
        assert_eq!(v.final_value, 350);
        assert_eq!(v.hwm, 250, "counter hwm is the peak per-window delta");
        assert!(tl.conserves());
        assert_eq!(tl.windows(), 3);
        assert_eq!(tl.end_ns(), 3_000_000);
    }

    #[test]
    fn gauge_records_levels_and_hwm() {
        let mut tl = Timeline::new(ms(1), 1024);
        let g = tl.declare("world.pool_in_use", SeriesKind::Gauge, "bufs", 0, 0);
        tl.record(&[5]);
        tl.record(&[12]);
        tl.record(&[3]);
        let v = tl.series_view(g.0);
        assert_eq!(v.samples.iter().copied().collect::<Vec<_>>(), [5, 12, 3]);
        assert_eq!(v.hwm, 12);
        assert!(tl.conserves());
    }

    #[test]
    fn eviction_folds_into_base_and_preserves_conservation() {
        let mut tl = Timeline::new(ms(1), 4);
        tl.declare("c", SeriesKind::Counter, "n", 0, 0);
        for i in 1..=10i64 {
            tl.record(&[i * 10]);
        }
        assert_eq!(tl.windows(), 10);
        assert_eq!(tl.evicted(), 6);
        assert_eq!(tl.first_retained(), 6);
        let v = tl.series_view(0);
        assert_eq!(v.samples.len(), 4);
        assert_eq!(v.base, 60); // six evicted windows of +10 each
        assert_eq!(v.final_value, 100);
        assert!(tl.conserves());
    }

    #[test]
    fn partial_final_window_keeps_conservation() {
        let mut tl = Timeline::new(ms(1), 1024);
        tl.declare("c", SeriesKind::Counter, "n", 0, 0);
        tl.record(&[7]);
        tl.record_partial(1_400_000, &[9]);
        assert_eq!(tl.end_ns(), 1_400_000);
        assert!(tl.conserves());
        let csv = tl.to_csv();
        let last = csv.lines().last().unwrap();
        assert_eq!(last, "1,1000000,1400000,2");
    }

    #[test]
    fn json_exposes_schema_and_conservation() {
        let mut tl = Timeline::new(ms(1), 1024);
        tl.declare("host0.tx_bytes", SeriesKind::Counter, "bytes", 0, 0);
        tl.record(&[64]);
        tl.record(&[128]);
        let j = tl.to_json();
        assert!(j.contains("\"schema\": \"outboard-timeline-v1\""));
        assert!(j.contains("\"window_ns\": 1000000"));
        assert!(j.contains("\"base\": 0, \"final\": 128, \"sum\": 128"));
        assert!(j.contains("\"samples\": [64,64]"));
    }

    #[test]
    fn tail_json_refolds_base() {
        let mut tl = Timeline::new(ms(1), 1024);
        tl.declare("c", SeriesKind::Counter, "n", 0, 0);
        tl.declare("g", SeriesKind::Gauge, "n", 0, 0);
        for i in 1..=8i64 {
            tl.record(&[i * 5, i]);
        }
        let t = tl.tail_json(2);
        // Counter: base folds the six skipped windows (6 * 5 = 30).
        assert!(
            t.contains("\"base\": 30, \"final\": 40, \"sum\": 10"),
            "{t}"
        );
        // Gauge: base carries the level entering the tail.
        assert!(t.contains("\"base\": 6, \"final\": 8"), "{t}");
        assert!(t.contains("\"first_retained\": 6"));
    }

    #[test]
    fn chrome_counter_events_are_c_phase_in_pid_space() {
        let mut tl = Timeline::new(ms(1), 1024);
        tl.declare("host0.tx_bytes", SeriesKind::Counter, "bytes", 0, 0);
        tl.declare("world.faults", SeriesKind::Counter, "events", 2, 0);
        tl.record(&[10, 1]);
        tl.record(&[30, 1]);
        let evs = tl.chrome_counter_events();
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs[0],
            "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"name\":\"host0.tx_bytes\",\
             \"cat\":\"timeline\",\"args\":{\"bytes\":10}}"
        );
        assert!(evs[1].contains("\"pid\":2"));
        // Second window starts at 1 ms.
        assert!(evs[2].contains("\"ts\":1000.000"));
    }

    #[test]
    fn sparklines_render_one_row_per_series() {
        let mut tl = Timeline::new(ms(1), 1024);
        tl.declare("a", SeriesKind::Counter, "n", 0, 0);
        tl.declare("b", SeriesKind::Gauge, "n", 0, 0);
        for i in 0..100i64 {
            tl.record(&[i, i % 7]);
        }
        let s = tl.sparklines();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("100 windows"));
        assert!(s.contains('█'));
    }

    #[test]
    fn declaration_initial_value_seeds_base() {
        let mut tl = Timeline::new(ms(1), 8);
        tl.declare("c", SeriesKind::Counter, "n", 0, 40);
        tl.record(&[42]);
        let v = tl.series_view(0);
        assert_eq!(v.samples[0], 2);
        assert_eq!(v.base, 40);
        assert!(tl.conserves());
    }
}
