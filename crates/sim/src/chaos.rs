//! Deterministic chaos schedules: scripted fault timelines for the testbed.
//!
//! A [`ChaosSchedule`] is a time-ordered list of typed fault events — link
//! outages, full partitions, delay spikes, CAB engine wedges, board crashes,
//! netmem squeezes, host pauses — generated from a seed or loaded from a JSON
//! repro file. The schedule itself knows nothing about the testbed; the
//! testbed injects the events via its own sim-time event queue so that a run
//! with a given seed is byte-identical every time.
//!
//! When an oracle violation is found, [`shrink`] delta-debugs the schedule
//! (dropping events, then narrowing the durations of the survivors) against a
//! caller-supplied deterministic "still fails?" predicate until the schedule
//! is locally minimal. The result serializes back to JSON as a replayable
//! `repro_<seed>.json` artifact.

use crate::rng::Pcg32;
use crate::time::Dur;
use std::fmt;

/// One typed fault action. Durable actions carry the window length and are
/// healed by the injector when the window closes; instantaneous actions
/// (wedge, crash, stealth corrupt) fire once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Take host `host`'s forward link down for `dur` (frames offered while
    /// down are dropped on the floor, without fault-injector bookkeeping).
    LinkDown {
        /// Host whose outbound link goes down.
        host: usize,
        /// Outage window length.
        dur: Dur,
    },
    /// Take every link in the world down for `dur` — a full partition.
    Partition {
        /// Partition window length.
        dur: Dur,
    },
    /// Add `extra` propagation latency to host `host`'s outbound link for
    /// `dur` (a delay/jitter spike; frames still arrive, just late).
    DelaySpike {
        /// Host whose outbound link is delayed.
        host: usize,
        /// Additional one-way latency while the spike is active.
        extra: Dur,
        /// Spike window length.
        dur: Dur,
    },
    /// Wedge the next DMA transfer on host `host`'s CAB: the engine hangs
    /// mid-transfer until the watchdog resets the board.
    CabWedge {
        /// Host whose CAB engine wedges.
        host: usize,
        /// Wedge the MDMA engine instead of the SDMA engine.
        mdma: bool,
    },
    /// Crash host `host`'s CAB outright: rescue what PIO can reach, reset the
    /// board, degrade, and rebuild transmit — without waiting for a watchdog.
    BoardCrash {
        /// Host whose CAB crashes.
        host: usize,
    },
    /// Reserve `permille`/1000 of host `host`'s CAB netmem pages for `dur`,
    /// starving outboard allocation and forcing degraded-mode entries.
    NetmemSqueeze {
        /// Host whose CAB netmem is squeezed.
        host: usize,
        /// Fraction of netmem pages reserved, in parts per thousand.
        permille: u32,
        /// Squeeze window length.
        dur: Dur,
    },
    /// Pause host `host` for `dur`: its CPU-side events (app steps, kernel
    /// wakeups, timers, interrupts) are deferred until the pause ends, while
    /// the fabric keeps delivering frames.
    HostPause {
        /// Host that pauses.
        host: usize,
        /// Pause window length.
        dur: Dur,
    },
    /// Test-only planted bug: corrupt the next frame on host `host`'s
    /// outbound link in a way that *preserves* the Internet checksum, so the
    /// corruption leaks past the checksum layer and only the end-to-end
    /// oracle can catch it. Never emitted by [`ChaosSchedule::generate`].
    StealthCorrupt {
        /// Host whose next outbound frame is stealth-corrupted.
        host: usize,
    },
}

impl ChaosAction {
    /// The window length for durable actions, `None` for one-shot actions.
    pub fn duration(&self) -> Option<Dur> {
        match *self {
            ChaosAction::LinkDown { dur, .. }
            | ChaosAction::Partition { dur }
            | ChaosAction::DelaySpike { dur, .. }
            | ChaosAction::NetmemSqueeze { dur, .. }
            | ChaosAction::HostPause { dur, .. } => Some(dur),
            ChaosAction::CabWedge { .. }
            | ChaosAction::BoardCrash { .. }
            | ChaosAction::StealthCorrupt { .. } => None,
        }
    }

    /// Replace the window length of a durable action (used by the shrinker to
    /// narrow windows). One-shot actions are returned unchanged.
    pub fn with_duration(self, new: Dur) -> ChaosAction {
        match self {
            ChaosAction::LinkDown { host, .. } => ChaosAction::LinkDown { host, dur: new },
            ChaosAction::Partition { .. } => ChaosAction::Partition { dur: new },
            ChaosAction::DelaySpike { host, extra, .. } => ChaosAction::DelaySpike {
                host,
                extra,
                dur: new,
            },
            ChaosAction::NetmemSqueeze { host, permille, .. } => ChaosAction::NetmemSqueeze {
                host,
                permille,
                dur: new,
            },
            ChaosAction::HostPause { host, .. } => ChaosAction::HostPause { host, dur: new },
            other => other,
        }
    }

    /// Stable identifier used in JSON repro files and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            ChaosAction::LinkDown { .. } => "link_down",
            ChaosAction::Partition { .. } => "partition",
            ChaosAction::DelaySpike { .. } => "delay_spike",
            ChaosAction::CabWedge { .. } => "cab_wedge",
            ChaosAction::BoardCrash { .. } => "board_crash",
            ChaosAction::NetmemSqueeze { .. } => "netmem_squeeze",
            ChaosAction::HostPause { .. } => "host_pause",
            ChaosAction::StealthCorrupt { .. } => "stealth_corrupt",
        }
    }
}

impl fmt::Display for ChaosAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChaosAction::LinkDown { host, dur } => {
                write!(f, "link_down(host{host}, {}us)", dur.as_nanos() / 1_000)
            }
            ChaosAction::Partition { dur } => {
                write!(f, "partition({}us)", dur.as_nanos() / 1_000)
            }
            ChaosAction::DelaySpike { host, extra, dur } => write!(
                f,
                "delay_spike(host{host}, +{}us for {}us)",
                extra.as_nanos() / 1_000,
                dur.as_nanos() / 1_000
            ),
            ChaosAction::CabWedge { host, mdma } => {
                write!(
                    f,
                    "cab_wedge(host{host}, {})",
                    if mdma { "mdma" } else { "sdma" }
                )
            }
            ChaosAction::BoardCrash { host } => write!(f, "board_crash(host{host})"),
            ChaosAction::NetmemSqueeze {
                host,
                permille,
                dur,
            } => write!(
                f,
                "netmem_squeeze(host{host}, {permille}/1000 for {}us)",
                dur.as_nanos() / 1_000
            ),
            ChaosAction::HostPause { host, dur } => {
                write!(f, "host_pause(host{host}, {}us)", dur.as_nanos() / 1_000)
            }
            ChaosAction::StealthCorrupt { host } => write!(f, "stealth_corrupt(host{host})"),
        }
    }
}

/// One scheduled fault: fire `action` at sim-time offset `at` from the start
/// of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Offset from the start of the run at which the action fires.
    pub at: Dur,
    /// The fault to inject.
    pub action: ChaosAction,
}

/// A deterministic, replayable fault timeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosSchedule {
    /// Seed this schedule was generated from (0 for hand-written schedules).
    pub seed: u64,
    /// Events sorted by `at` (ties keep generation/insertion order).
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Generate a random schedule of `n_events` faults across `hosts` hosts
    /// from `seed`. The palette deliberately excludes [`ChaosAction::StealthCorrupt`]
    /// (the planted-bug action): every generated schedule describes faults the
    /// stack is *supposed* to survive, so a clean implementation passes the
    /// oracle on every seed.
    ///
    /// Event times land in `[5ms, 400ms)`; durable windows are capped well
    /// below the TCP retransmit backoff ceiling so the liveness watchdog has
    /// an honest budget.
    pub fn generate(seed: u64, n_events: usize, hosts: usize) -> ChaosSchedule {
        assert!(hosts > 0, "chaos schedule needs at least one host");
        let mut rng = Pcg32::new(seed ^ 0xc4a0_5c4a_05c4_a05c);
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let at = Dur::micros(5_000 + rng.below(395_000) as u64);
            let host = rng.below(hosts as u32) as usize;
            let action = match rng.below(7) {
                0 => ChaosAction::LinkDown {
                    host,
                    dur: Dur::micros(20_000 + rng.below(180_000) as u64),
                },
                1 => ChaosAction::Partition {
                    dur: Dur::micros(20_000 + rng.below(130_000) as u64),
                },
                2 => ChaosAction::DelaySpike {
                    host,
                    extra: Dur::micros(100 + rng.below(900) as u64),
                    dur: Dur::micros(5_000 + rng.below(45_000) as u64),
                },
                3 => ChaosAction::CabWedge {
                    host,
                    mdma: rng.chance(0.5),
                },
                4 => ChaosAction::BoardCrash { host },
                5 => ChaosAction::NetmemSqueeze {
                    host,
                    permille: 1000,
                    dur: Dur::micros(20_000 + rng.below(280_000) as u64),
                },
                _ => ChaosAction::HostPause {
                    host,
                    dur: Dur::micros(5_000 + rng.below(45_000) as u64),
                },
            };
            events.push(ChaosEvent { at, action });
        }
        events.sort_by_key(|e| e.at);
        ChaosSchedule { seed, events }
    }

    /// The instant (as an offset) by which every durable window has closed;
    /// after this the world should be fault-free and healing.
    pub fn quiesce_at(&self) -> Dur {
        let mut q = Dur::ZERO;
        for e in &self.events {
            let end = match e.action.duration() {
                Some(d) => e.at + d,
                None => e.at,
            };
            q = q.max(end);
        }
        q
    }

    /// Serialize to the `repro_<seed>.json` format. Times are integral
    /// nanoseconds so the round-trip is exact (determinism requirement).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.events.len() * 96);
        s.push_str("{\n  \"format\": \"outboard-chaos-v1\",\n");
        s.push_str(&format!("  \"seed\": {},\n  \"events\": [\n", self.seed));
        for (i, e) in self.events.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"at_ns\": {}, \"kind\": \"{}\"",
                e.at.as_nanos(),
                e.action.kind()
            ));
            match e.action {
                ChaosAction::LinkDown { host, dur } => {
                    s.push_str(&format!(
                        ", \"host\": {host}, \"dur_ns\": {}",
                        dur.as_nanos()
                    ));
                }
                ChaosAction::Partition { dur } => {
                    s.push_str(&format!(", \"dur_ns\": {}", dur.as_nanos()));
                }
                ChaosAction::DelaySpike { host, extra, dur } => {
                    s.push_str(&format!(
                        ", \"host\": {host}, \"extra_ns\": {}, \"dur_ns\": {}",
                        extra.as_nanos(),
                        dur.as_nanos()
                    ));
                }
                ChaosAction::CabWedge { host, mdma } => {
                    s.push_str(&format!(", \"host\": {host}, \"mdma\": {mdma}"));
                }
                ChaosAction::BoardCrash { host } | ChaosAction::StealthCorrupt { host } => {
                    s.push_str(&format!(", \"host\": {host}"));
                }
                ChaosAction::NetmemSqueeze {
                    host,
                    permille,
                    dur,
                } => {
                    s.push_str(&format!(
                        ", \"host\": {host}, \"permille\": {permille}, \"dur_ns\": {}",
                        dur.as_nanos()
                    ));
                }
                ChaosAction::HostPause { host, dur } => {
                    s.push_str(&format!(
                        ", \"host\": {host}, \"dur_ns\": {}",
                        dur.as_nanos()
                    ));
                }
            }
            s.push('}');
            if i + 1 < self.events.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse a schedule previously written by [`ChaosSchedule::to_json`].
    pub fn from_json(text: &str) -> Result<ChaosSchedule, ChaosParseError> {
        let v = json::parse(text)?;
        let obj = v
            .as_object()
            .ok_or_else(|| err("top level is not an object"))?;
        if let Some(fmt_v) = json::get(obj, "format") {
            let f = fmt_v
                .as_str()
                .ok_or_else(|| err("\"format\" is not a string"))?;
            if f != "outboard-chaos-v1" {
                return Err(err(&format!("unsupported format \"{f}\"")));
            }
        }
        let seed = match json::get(obj, "seed") {
            Some(v) => v
                .as_u64()
                .ok_or_else(|| err("\"seed\" is not an integer"))?,
            None => 0,
        };
        let events_v = json::get(obj, "events").ok_or_else(|| err("missing \"events\""))?;
        let arr = events_v
            .as_array()
            .ok_or_else(|| err("\"events\" is not an array"))?;
        let mut events = Vec::with_capacity(arr.len());
        for (i, ev) in arr.iter().enumerate() {
            events.push(parse_event(ev).map_err(|e| err(&format!("event {i}: {e}")))?);
        }
        Ok(ChaosSchedule { seed, events })
    }

    /// Human-readable one-line-per-event rendering for reports.
    pub fn render(&self) -> String {
        let mut s = format!(
            "chaos schedule (seed {}, {} events)\n",
            self.seed,
            self.events.len()
        );
        for e in &self.events {
            s.push_str(&format!(
                "  t+{:>9}us  {}\n",
                e.at.as_nanos() / 1_000,
                e.action
            ));
        }
        s
    }
}

/// Error from [`ChaosSchedule::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosParseError(String);

impl fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chaos repro parse error: {}", self.0)
    }
}

impl std::error::Error for ChaosParseError {}

fn err(msg: &str) -> ChaosParseError {
    ChaosParseError(msg.to_string())
}

fn parse_event(v: &json::Value) -> Result<ChaosEvent, ChaosParseError> {
    let obj = v.as_object().ok_or_else(|| err("not an object"))?;
    let at = Dur::nanos(req_u64(obj, "at_ns")?);
    let kind = json::get(obj, "kind")
        .and_then(|v| v.as_str())
        .ok_or_else(|| err("missing \"kind\""))?;
    let action = match kind {
        "link_down" => ChaosAction::LinkDown {
            host: req_u64(obj, "host")? as usize,
            dur: Dur::nanos(req_u64(obj, "dur_ns")?),
        },
        "partition" => ChaosAction::Partition {
            dur: Dur::nanos(req_u64(obj, "dur_ns")?),
        },
        "delay_spike" => ChaosAction::DelaySpike {
            host: req_u64(obj, "host")? as usize,
            extra: Dur::nanos(req_u64(obj, "extra_ns")?),
            dur: Dur::nanos(req_u64(obj, "dur_ns")?),
        },
        "cab_wedge" => ChaosAction::CabWedge {
            host: req_u64(obj, "host")? as usize,
            mdma: json::get(obj, "mdma")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
        },
        "board_crash" => ChaosAction::BoardCrash {
            host: req_u64(obj, "host")? as usize,
        },
        "netmem_squeeze" => ChaosAction::NetmemSqueeze {
            host: req_u64(obj, "host")? as usize,
            permille: req_u64(obj, "permille")? as u32,
            dur: Dur::nanos(req_u64(obj, "dur_ns")?),
        },
        "host_pause" => ChaosAction::HostPause {
            host: req_u64(obj, "host")? as usize,
            dur: Dur::nanos(req_u64(obj, "dur_ns")?),
        },
        "stealth_corrupt" => ChaosAction::StealthCorrupt {
            host: req_u64(obj, "host")? as usize,
        },
        other => return Err(err(&format!("unknown kind \"{other}\""))),
    };
    Ok(ChaosEvent { at, action })
}

fn req_u64(obj: &[(String, json::Value)], key: &str) -> Result<u64, ChaosParseError> {
    json::get(obj, key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| err(&format!("missing or non-integer \"{key}\"")))
}

/// Outcome of a [`shrink`] run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The locally-minimal failing schedule.
    pub schedule: ChaosSchedule,
    /// Number of candidate schedules the predicate was run against.
    pub runs: usize,
}

/// Delta-debug `failing` against `still_fails` until locally minimal.
///
/// `still_fails` must be a *deterministic* predicate (re-running the same
/// candidate schedule must give the same answer — in the testbed this holds
/// because the whole world is seeded). Shrinking proceeds in two phases:
///
/// 1. **Event removal** — ddmin-style chunk removal (halving chunk sizes)
///    followed by single-event removal until no single event can be dropped.
/// 2. **Window narrowing** — for each surviving durable event, repeatedly
///    halve its duration while the schedule still fails.
///
/// The input schedule must itself fail the predicate.
pub fn shrink(
    failing: &ChaosSchedule,
    mut still_fails: impl FnMut(&ChaosSchedule) -> bool,
) -> ShrinkResult {
    let mut runs = 0usize;
    let mut cur = failing.clone();
    debug_assert!(!cur.events.is_empty(), "cannot shrink an empty schedule");

    // Phase 1a: chunk removal, halving granularity (classic ddmin shape).
    let mut chunk = cur.events.len().div_ceil(2);
    while chunk >= 1 {
        let mut i = 0;
        while i < cur.events.len() && cur.events.len() > 1 {
            let hi = (i + chunk).min(cur.events.len());
            let mut candidate = cur.clone();
            candidate.events.drain(i..hi);
            if candidate.events.is_empty() {
                i = hi;
                continue;
            }
            runs += 1;
            if still_fails(&candidate) {
                cur = candidate; // keep the smaller schedule; retry same index
            } else {
                i = hi;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2);
    }

    // Phase 1b: single-event removal to 1-minimality (a pass may unlock
    // earlier removals, so loop until a full pass removes nothing).
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cur.events.len() && cur.events.len() > 1 {
            let mut candidate = cur.clone();
            candidate.events.remove(i);
            runs += 1;
            if still_fails(&candidate) {
                cur = candidate;
                removed = true;
            } else {
                i += 1;
            }
        }
        if !removed {
            break;
        }
    }

    // Phase 2: narrow durable windows by halving. Stop narrowing an event
    // when halving makes the failure disappear or the window drops below 1ms.
    for i in 0..cur.events.len() {
        while let Some(d) = cur.events[i].action.duration() {
            let half = Dur::nanos(d.as_nanos() / 2);
            if half < Dur::millis(1) {
                break;
            }
            let mut candidate = cur.clone();
            candidate.events[i].action = candidate.events[i].action.with_duration(half);
            runs += 1;
            if still_fails(&candidate) {
                cur = candidate;
            } else {
                break;
            }
        }
    }

    ShrinkResult {
        schedule: cur,
        runs,
    }
}

/// Minimal recursive-descent JSON reader for repro files and other
/// hand-rolled artifacts (stats, timeline, flight dumps). The workspace is
/// offline (no serde), and the formats are small enough that a ~150-line
/// reader keeps the artifacts human-editable without a dependency.
pub mod json {
    /// A parsed JSON value. Numbers are kept as `f64` plus an exact `u64`
    /// when the literal was integral.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number; `(f64, Some(u64))` when the literal was a non-negative
        /// integer that fits in `u64`.
        Num(f64, Option<u64>),
        /// A string (escapes resolved).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object as an insertion-ordered key/value list.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The object key/value list, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(kv) => Some(kv),
                _ => None,
            }
        }
        /// The element slice, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// The exact integer, if this is a non-negative integral number.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(_, exact) => *exact,
                _ => None,
            }
        }
        /// The boolean, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
        /// The number as `f64`, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(f, _) => Some(*f),
                _ => None,
            }
        }
    }

    /// First value for `key` in an object k/v list.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parse a complete JSON document (trailing data is an error).
    pub fn parse(text: &str) -> Result<Value, super::ChaosParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(super::err(&format!("trailing data at byte {pos}")));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), super::ChaosParseError> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == ch {
            *pos += 1;
            Ok(())
        } else {
            Err(super::err(&format!(
                "expected '{}' at byte {}",
                ch as char, *pos
            )))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, super::ChaosParseError> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            _ => Err(super::err(&format!("unexpected input at byte {}", *pos))),
        }
    }

    fn lit(
        b: &[u8],
        pos: &mut usize,
        word: &str,
        val: Value,
    ) -> Result<Value, super::ChaosParseError> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(val)
        } else {
            Err(super::err(&format!("bad literal at byte {}", *pos)))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, super::ChaosParseError> {
        expect(b, pos, b'{')?;
        let mut kv = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(kv));
        }
        loop {
            skip_ws(b, pos);
            let k = string(b, pos)?;
            expect(b, pos, b':')?;
            let v = value(b, pos)?;
            kv.push((k, v));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(kv));
                }
                _ => {
                    return Err(super::err(&format!(
                        "expected ',' or '}}' at byte {}",
                        *pos
                    )))
                }
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, super::ChaosParseError> {
        expect(b, pos, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(super::err(&format!("expected ',' or ']' at byte {}", *pos))),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, super::ChaosParseError> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        _ => return Err(super::err("unsupported string escape")),
                    }
                    *pos += 1;
                }
                c if c < 0x20 => return Err(super::err("control char in string")),
                _ => {
                    // Copy one UTF-8 scalar (input is a valid &str).
                    let start = *pos;
                    let mut end = start + 1;
                    while end < b.len() && (b[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&b[start..end])
                            .map_err(|_| super::err("invalid utf-8 in string"))?,
                    );
                    *pos = end;
                }
            }
        }
        Err(super::err("unterminated string"))
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, super::ChaosParseError> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len()
            && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).unwrap_or("");
        let f: f64 = text
            .parse()
            .map_err(|_| super::err(&format!("bad number \"{text}\"")))?;
        let exact = text.parse::<u64>().ok();
        Ok(Value::Num(f, exact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChaosSchedule {
        ChaosSchedule {
            seed: 42,
            events: vec![
                ChaosEvent {
                    at: Dur::millis(10),
                    action: ChaosAction::LinkDown {
                        host: 0,
                        dur: Dur::millis(50),
                    },
                },
                ChaosEvent {
                    at: Dur::millis(20),
                    action: ChaosAction::DelaySpike {
                        host: 1,
                        extra: Dur::micros(250),
                        dur: Dur::millis(5),
                    },
                },
                ChaosEvent {
                    at: Dur::millis(30),
                    action: ChaosAction::CabWedge {
                        host: 0,
                        mdma: true,
                    },
                },
                ChaosEvent {
                    at: Dur::millis(40),
                    action: ChaosAction::BoardCrash { host: 1 },
                },
                ChaosEvent {
                    at: Dur::millis(50),
                    action: ChaosAction::NetmemSqueeze {
                        host: 0,
                        permille: 1000,
                        dur: Dur::millis(80),
                    },
                },
                ChaosEvent {
                    at: Dur::millis(60),
                    action: ChaosAction::HostPause {
                        host: 1,
                        dur: Dur::millis(8),
                    },
                },
                ChaosEvent {
                    at: Dur::millis(70),
                    action: ChaosAction::Partition {
                        dur: Dur::millis(30),
                    },
                },
                ChaosEvent {
                    at: Dur::millis(80),
                    action: ChaosAction::StealthCorrupt { host: 0 },
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = sample();
        let text = s.to_json();
        let back = ChaosSchedule::from_json(&text).expect("parse");
        assert_eq!(s, back);
        // Round-tripping the serialized form is also byte-stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let a = ChaosSchedule::generate(7, 12, 2);
        let b = ChaosSchedule::generate(7, 12, 2);
        assert_eq!(a, b);
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        let c = ChaosSchedule::generate(8, 12, 2);
        assert_ne!(a, c, "different seeds should give different schedules");
    }

    #[test]
    fn generate_never_emits_stealth_corrupt() {
        for seed in 0..64 {
            let s = ChaosSchedule::generate(seed, 20, 2);
            assert!(
                s.events
                    .iter()
                    .all(|e| !matches!(e.action, ChaosAction::StealthCorrupt { .. })),
                "seed {seed} emitted the planted-bug action"
            );
        }
    }

    #[test]
    fn quiesce_covers_durable_windows() {
        let s = sample();
        // Squeeze at 50ms for 80ms ends at 130ms — the latest window end.
        assert_eq!(s.quiesce_at(), Dur::millis(130));
    }

    #[test]
    fn shrink_minimizes_to_culprit_events() {
        // Synthetic predicate: fails iff the schedule still contains both the
        // board crash AND the partition (a two-event interaction bug).
        let full = sample();
        let fails = |s: &ChaosSchedule| {
            s.events
                .iter()
                .any(|e| matches!(e.action, ChaosAction::BoardCrash { .. }))
                && s.events
                    .iter()
                    .any(|e| matches!(e.action, ChaosAction::Partition { .. }))
        };
        assert!(fails(&full));
        let out = shrink(&full, fails);
        assert_eq!(out.schedule.events.len(), 2);
        assert!(fails(&out.schedule));
        // Window narrowing halves the partition down to the 1ms floor.
        let part = out
            .schedule
            .events
            .iter()
            .find_map(|e| match e.action {
                ChaosAction::Partition { dur } => Some(dur),
                _ => None,
            })
            .expect("partition survives");
        assert!(
            part < Dur::millis(2),
            "window should have been narrowed, got {part:?}"
        );
    }

    #[test]
    fn shrink_keeps_single_event_failures() {
        let full = sample();
        let fails = |s: &ChaosSchedule| {
            s.events
                .iter()
                .any(|e| matches!(e.action, ChaosAction::StealthCorrupt { .. }))
        };
        let out = shrink(&full, fails);
        assert_eq!(out.schedule.events.len(), 1);
        assert!(matches!(
            out.schedule.events[0].action,
            ChaosAction::StealthCorrupt { .. }
        ));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ChaosSchedule::from_json("not json").is_err());
        assert!(ChaosSchedule::from_json("{}").is_err()); // missing events
        assert!(ChaosSchedule::from_json(
            "{\"events\": [{\"at_ns\": 5, \"kind\": \"warp_core_breach\"}]}"
        )
        .is_err());
    }
}
