//! Stable event queue.
//!
//! A binary heap keyed on `(Time, sequence)` where the sequence number is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same instant therefore pop in the order they were pushed, which keeps the
//! simulation deterministic regardless of heap implementation details.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within one
        // instant, the first-inserted) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The instant of the most recently popped event (the current virtual
    /// time of a simulation driven by this queue).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — scheduling into the past is always a
    /// logic error in a discrete-event simulation.
    pub fn push(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at:?} but the clock is already at {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pop the earliest event and advance the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every queued event (used when an experiment ends early).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), "c");
        q.push(Time(10), "a");
        q.push(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time(42), i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO + Dur::micros(5), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::ZERO + Dur::micros(5));
    }

    #[test]
    #[should_panic(expected = "scheduled event")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(Time(10), ());
        q.pop();
        q.push(Time(5), ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(7), 1u8);
        q.push(Time(3), 2u8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_stable() {
        let mut q = EventQueue::new();
        q.push(Time(1), 0);
        q.push(Time(2), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        // Push at the current instant: must come after nothing (time 2 event
        // is later than "now"=1, new event also at 2 but pushed later).
        q.push(Time(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in (time, insertion-order) order, no matter
        /// how pushes and pops interleave.
        #[test]
        fn ordering_invariant(ops in proptest::collection::vec((0u64..1000, any::<bool>()), 1..200)) {
            let mut q = EventQueue::new();
            let mut last: Option<(Time, u64)> = None;
            for (seq, (dt, do_pop)) in ops.into_iter().enumerate() {
                let at = Time(q.now().nanos() + dt);
                q.push(at, seq as u64);
                if do_pop {
                    if let Some((t, s)) = q.pop() {
                        if let Some((lt, ls)) = last {
                            prop_assert!(t > lt || (t == lt && s > ls),
                                "order violated: ({t:?},{s}) after ({lt:?},{ls})");
                        }
                        last = Some((t, s));
                    }
                }
            }
            // Drain the rest.
            while let Some((t, s)) = q.pop() {
                if let Some((lt, ls)) = last {
                    prop_assert!(t > lt || (t == lt && s > ls));
                }
                last = Some((t, s));
            }
        }
    }
}
