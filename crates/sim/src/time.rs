//! Virtual time.
//!
//! The simulation clock counts nanoseconds from the start of an experiment.
//! A `u64` of nanoseconds covers ~584 years of virtual time, far beyond any
//! experiment here (the longest paper run moves 512 KB × a few thousand
//! iterations, i.e. minutes of virtual time).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Virtual seconds since simulation start, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time since `earlier`; saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> Dur {
        Dur(n)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Dur {
        assert!(s >= 0.0 && s.is_finite(), "duration must be non-negative");
        Dur((s * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Dur {
        Dur::from_secs_f64(us / 1e6)
    }

    /// The time it takes to move `bytes` at `bits_per_sec`.
    ///
    /// This is the workhorse of every bandwidth cost model in the workspace
    /// (memory copies, DMA transfers, link serialization).
    #[inline]
    pub fn for_bytes_at_bps(bytes: u64, bits_per_sec: f64) -> Dur {
        assert!(bits_per_sec > 0.0, "bandwidth must be positive");
        Dur::from_secs_f64(bytes as f64 * 8.0 / bits_per_sec)
    }

    /// Length in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in (fractional) microseconds.
    /// Length in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True for the zero-length duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 = self.0.checked_sub(rhs.0).expect("negative duration");
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::iter::Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::ZERO + Dur::micros(250);
        assert_eq!(t.nanos(), 250_000);
        assert_eq!(t - Time::ZERO, Dur::micros(250));
        assert_eq!(t.since(Time(300_000)), Dur::ZERO);
    }

    #[test]
    fn dur_constructors_agree() {
        assert_eq!(Dur::secs(1), Dur::millis(1000));
        assert_eq!(Dur::millis(1), Dur::micros(1000));
        assert_eq!(Dur::micros(1), Dur::nanos(1000));
        assert_eq!(Dur::from_secs_f64(0.5), Dur::millis(500));
    }

    #[test]
    fn bandwidth_cost_model() {
        // 100 Mbit/s moving 12_500 bytes = 1 ms.
        let d = Dur::for_bytes_at_bps(12_500, 100e6);
        assert_eq!(d, Dur::millis(1));
        // HIPPI line rate: 100 MByte/s = 800 Mbit/s; 32 KB takes 327.68 us.
        let d = Dur::for_bytes_at_bps(32 * 1024, 800e6);
        assert_eq!(d.as_nanos(), 327_680);
    }

    #[test]
    fn dur_scaling() {
        assert_eq!(Dur::micros(10) * 3, Dur::micros(30));
        assert_eq!(Dur::micros(30) / 3, Dur::micros(10));
        let total: Dur = [Dur::micros(1), Dur::micros(2)].into_iter().sum();
        assert_eq!(total, Dur::micros(3));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_interval_panics() {
        let _ = Time::ZERO - Time(1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::nanos(5)), "5ns");
        assert_eq!(format!("{}", Dur::micros(5)), "5.000us");
        assert_eq!(format!("{}", Dur::millis(5)), "5.000ms");
        assert_eq!(format!("{}", Dur::secs(5)), "5.000s");
    }
}
