//! Machine configurations.
//!
//! Every constant here is traceable to §7 of the paper:
//!
//! * "Copies of a 1 MByte (no locality) run at 350 Mbit/second, while a read
//!   of a 512 KByte region (window size) runs at 630 Mbit/seconds."
//! * "The per-packet overhead was measured at about 300 microsecond per
//!   packet."
//! * Table 2: pin 35 + 29·n µs, unpin 48 + 3.9·n µs, map 6 + 4.5·n µs.
//! * "Consistently, about 7-8% of the time is unaccounted for" (background
//!   processes); we use 7.5 %.
//! * The Alpha 3000/300LX "is only about half as powerful as the Alpha
//!   3000/400" with "a half speed Turbochannel".
//!
//! The per-packet 300 µs is split across the stack layers so the simulation
//! charges costs where the real kernel spends them; the *split* is our
//! engineering judgement, the *sum* is the paper's.

/// Cost and capacity model for one simulated workstation.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Human-readable machine name.
    pub name: &'static str,
    /// VM page size (Alpha: 8 KB).
    pub page_size: usize,

    // ---- memory system (per-byte costs) ----
    /// memcpy bandwidth with no cache locality (large regions), Mbit/s.
    pub copy_bw_min_mbps: f64,
    /// memcpy bandwidth when the working set fits in cache, Mbit/s.
    pub copy_bw_max_mbps: f64,
    /// Region size at/above which copies see no locality, bytes.
    pub copy_nolocality_at: usize,
    /// Checksum-read bandwidth with no locality, Mbit/s.
    pub read_bw_min_mbps: f64,
    /// Checksum-read bandwidth with full locality, Mbit/s.
    pub read_bw_max_mbps: f64,
    /// Region size at/above which reads see no locality, bytes.
    pub read_nolocality_at: usize,
    /// Working sets at/below this size are fully cached, bytes.
    pub cache_resident_at: usize,

    // ---- VM operation costs (Table 2), microseconds ----
    /// Pin: fixed cost per call.
    pub pin_base_us: f64,
    /// Pin: additional cost per page.
    pub pin_per_page_us: f64,
    /// Unpin: fixed cost per call.
    pub unpin_base_us: f64,
    /// Unpin: additional cost per page.
    pub unpin_per_page_us: f64,
    /// Map: fixed cost per call.
    pub map_base_us: f64,
    /// Map: additional cost per page.
    pub map_per_page_us: f64,
    /// Cache-hit cost when lazy unpinning finds pages already pinned+mapped.
    pub pin_cache_hit_us: f64,
    /// Maximum pages one application may keep (lazily) pinned (§4.4.1:
    /// "buffers can be unpinned lazily, thus limiting the number of pages
    /// that an application can have pinned at one time").
    pub pinned_page_limit: usize,

    // ---- per-packet protocol costs, microseconds ----
    /// write/read syscall entry/exit + socket-layer bookkeeping, per call.
    pub cost_syscall_us: f64,
    /// Socket-layer work per packet's worth of data (sosend/soreceive loop).
    pub cost_socket_pkt_us: f64,
    /// tcp_output per segment (header build, state update).
    pub cost_tcp_output_us: f64,
    /// tcp_input per segment.
    pub cost_tcp_input_us: f64,
    /// udp_output / udp_input per datagram.
    pub cost_udp_us: f64,
    /// ip_output or ip_input per datagram.
    pub cost_ip_us: f64,
    /// Driver work to build and issue one SDMA request (or to hand a packet
    /// to a conventional device).
    pub cost_driver_pkt_us: f64,
    /// Taking one interrupt (dispatch + return).
    pub cost_interrupt_us: f64,
    /// Waking a blocked process (sbwakeup + scheduler).
    pub cost_wakeup_us: f64,

    // ---- measurement methodology (§7.1) ----
    /// Fraction of wall time consumed by background processes, unaccounted
    /// to either ttcp or util ("about 7-8%").
    pub background_share: f64,

    // ---- IO bus ----
    /// Scale factor applied to the CAB's Turbochannel DMA bandwidth
    /// (1.0 = full-speed TC on the 3000/400; 0.5 on the 3000/300LX).
    pub tc_speed_scale: f64,
}

impl MachineConfig {
    /// The paper's primary machine: DEC Alpha 3000/400, 64 MB, full-speed
    /// Turbochannel.
    pub fn alpha_3000_400() -> MachineConfig {
        MachineConfig {
            name: "Alpha 3000/400",
            page_size: 8 * 1024,

            copy_bw_min_mbps: 350.0,
            copy_bw_max_mbps: 450.0,
            copy_nolocality_at: 1024 * 1024,
            read_bw_min_mbps: 630.0,
            read_bw_max_mbps: 850.0,
            read_nolocality_at: 512 * 1024,
            cache_resident_at: 64 * 1024,

            pin_base_us: 35.0,
            pin_per_page_us: 29.0,
            unpin_base_us: 48.0,
            unpin_per_page_us: 3.9,
            map_base_us: 6.0,
            map_per_page_us: 4.5,
            pin_cache_hit_us: 3.0,
            pinned_page_limit: 256, // 2 MB of 8 KB pages

            // Sender-path split of the measured ~300 us per 32 KB packet:
            // 40 (syscall, amortized per packet at MTU-sized writes)
            // + 40 (socket) + 60 (tcp_output) + 15 (ip) + 45 (driver)
            // + 30 (SDMA interrupt) + [ACK path: 25 interrupt+15 ip
            // + 30 tcp_input, ~0.5 ACK per segment with delayed ACKs ≈ 35]
            // + 35 (wakeup amortization) = ~300.
            cost_syscall_us: 40.0,
            cost_socket_pkt_us: 40.0,
            cost_tcp_output_us: 60.0,
            cost_tcp_input_us: 30.0,
            cost_udp_us: 30.0,
            cost_ip_us: 15.0,
            cost_driver_pkt_us: 45.0,
            cost_interrupt_us: 25.0,
            cost_wakeup_us: 35.0,

            background_share: 0.075,
            tc_speed_scale: 1.0,
        }
    }

    /// The paper's second machine: Alpha 3000/300LX, 125 MHz, half-speed
    /// Turbochannel — "only about half as powerful".
    pub fn alpha_3000_300lx() -> MachineConfig {
        let base = MachineConfig::alpha_3000_400();
        MachineConfig {
            name: "Alpha 3000/300LX",
            page_size: base.page_size,

            copy_bw_min_mbps: base.copy_bw_min_mbps / 2.0,
            copy_bw_max_mbps: base.copy_bw_max_mbps / 2.0,
            copy_nolocality_at: base.copy_nolocality_at,
            read_bw_min_mbps: base.read_bw_min_mbps / 2.0,
            read_bw_max_mbps: base.read_bw_max_mbps / 2.0,
            read_nolocality_at: base.read_nolocality_at,
            cache_resident_at: base.cache_resident_at,

            pin_base_us: base.pin_base_us * 2.0,
            pin_per_page_us: base.pin_per_page_us * 2.0,
            unpin_base_us: base.unpin_base_us * 2.0,
            unpin_per_page_us: base.unpin_per_page_us * 2.0,
            map_base_us: base.map_base_us * 2.0,
            map_per_page_us: base.map_per_page_us * 2.0,
            pin_cache_hit_us: base.pin_cache_hit_us * 2.0,
            pinned_page_limit: base.pinned_page_limit,

            cost_syscall_us: base.cost_syscall_us * 2.0,
            cost_socket_pkt_us: base.cost_socket_pkt_us * 2.0,
            cost_tcp_output_us: base.cost_tcp_output_us * 2.0,
            cost_tcp_input_us: base.cost_tcp_input_us * 2.0,
            cost_udp_us: base.cost_udp_us * 2.0,
            cost_ip_us: base.cost_ip_us * 2.0,
            cost_driver_pkt_us: base.cost_driver_pkt_us * 2.0,
            cost_interrupt_us: base.cost_interrupt_us * 2.0,
            cost_wakeup_us: base.cost_wakeup_us * 2.0,

            background_share: base.background_share,
            // Figure 6's raw-HIPPI series is well above half of Figure 5's:
            // the SDMA bottleneck was microcode per-transfer overhead, not
            // raw Turbochannel clock, so the half-speed TC costs ~30 %.
            tc_speed_scale: 0.75,
        }
    }

    /// Pages spanned by the byte range `[vaddr, vaddr + len)`.
    pub fn pages_spanned(&self, vaddr: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let ps = self.page_size as u64;
        let first = vaddr / ps;
        let last = (vaddr + len as u64 - 1) / ps;
        (last - first + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_carry_paper_constants() {
        let m = MachineConfig::alpha_3000_400();
        assert_eq!(m.page_size, 8192);
        assert_eq!(m.copy_bw_min_mbps, 350.0);
        assert_eq!(m.read_bw_min_mbps, 630.0);
        assert_eq!(m.pin_base_us, 35.0);
        assert_eq!(m.pin_per_page_us, 29.0);
        assert_eq!(m.unpin_per_page_us, 3.9);
        assert_eq!(m.map_base_us, 6.0);
    }

    #[test]
    fn lx_is_half_speed() {
        let a = MachineConfig::alpha_3000_400();
        let b = MachineConfig::alpha_3000_300lx();
        assert_eq!(b.copy_bw_min_mbps, a.copy_bw_min_mbps / 2.0);
        assert_eq!(b.pin_base_us, a.pin_base_us * 2.0);
        assert_eq!(b.tc_speed_scale, 0.75);
    }

    #[test]
    fn per_packet_split_sums_to_paper_value() {
        // Sender path for one MTU packet with ~0.5 delayed ACKs:
        // syscall + socket + tcp_out + ip + driver + sdma-intr
        // + 0.5*(intr + ip + tcp_in) + wakeup ≈ 300 us.
        let m = MachineConfig::alpha_3000_400();
        let total = m.cost_syscall_us
            + m.cost_socket_pkt_us
            + m.cost_tcp_output_us
            + m.cost_ip_us
            + m.cost_driver_pkt_us
            + m.cost_interrupt_us
            + 0.5 * (m.cost_interrupt_us + m.cost_ip_us + m.cost_tcp_input_us)
            + m.cost_wakeup_us;
        assert!(
            (total - 300.0).abs() < 10.0,
            "per-packet split drifted from the paper's 300us: {total}"
        );
    }

    #[test]
    fn pages_spanned_math() {
        let m = MachineConfig::alpha_3000_400();
        assert_eq!(m.pages_spanned(0, 0), 0);
        assert_eq!(m.pages_spanned(0, 1), 1);
        assert_eq!(m.pages_spanned(0, 8192), 1);
        assert_eq!(m.pages_spanned(0, 8193), 2);
        assert_eq!(m.pages_spanned(8191, 2), 2);
        assert_eq!(m.pages_spanned(4096, 32 * 1024), 5, "unaligned 32K spans 5");
        assert_eq!(m.pages_spanned(8192, 32 * 1024), 4, "aligned 32K spans 4");
    }
}
